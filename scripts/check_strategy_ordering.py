"""CI smoke check: the paper's strategy ordering must hold on a real model.

Runs one cold start per strategy (Medusa from a freshly materialized
artifact) and asserts the loading-phase ordering the paper establishes
(§7.3): Medusa < vLLM+ASYNC < vanilla vLLM.  Exits non-zero on any
regression, so benchmark-level scheduling changes that silently invert the
comparison fail the build instead of producing a wrong Figure 8.

Usage: PYTHONPATH=src python scripts/check_strategy_ordering.py [model]
"""

from __future__ import annotations

import sys

from repro.core.offline import run_offline
from repro.core.online import cold_start_for
from repro.engine import Strategy

DEFAULT_MODEL = "Qwen1.5-0.5B"


def main(argv) -> int:
    model = argv[1] if len(argv) > 1 else DEFAULT_MODEL
    artifact, _ = run_offline(model, seed=4242)
    loading = {}
    for strategy in (Strategy.VLLM, Strategy.VLLM_ASYNC, Strategy.MEDUSA):
        needs = artifact if strategy is Strategy.MEDUSA else None
        _engine, report = cold_start_for(model, strategy, artifact=needs,
                                         seed=4242)
        loading[strategy] = report.loading_time
        print(f"{strategy.label:>16}: {report.loading_time:.3f} s "
              f"(plan: {report.timeline.plan})")

    failures = []
    if not loading[Strategy.MEDUSA] < loading[Strategy.VLLM_ASYNC]:
        failures.append("Medusa is not faster than vLLM+ASYNC")
    if not loading[Strategy.VLLM_ASYNC] < loading[Strategy.VLLM]:
        failures.append("vLLM+ASYNC is not faster than vanilla vLLM")
    for failure in failures:
        print(f"ORDERING REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"ordering OK on {model}: "
              f"Medusa < vLLM+ASYNC < vLLM")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
