#!/usr/bin/env python
"""Regenerate the committed scenario golden snapshots.

The scenario harness (``tests/integration/test_scenarios.py``) pins
every summary scalar of every named scenario bit-exactly against
``tests/integration/golden_scenarios.json``.  When a change
*intentionally* shifts a scenario's metrics, re-record the snapshot:

    PYTHONPATH=src python scripts/refresh_goldens.py --scenario NAME
    PYTHONPATH=src python scripts/refresh_goldens.py --all

The tool refuses to run on a dirty working tree: a refresh must be the
*only* uncommitted change in its commit, so the diff reviewers see is
exactly "these metrics moved because of the change before this one" —
never a golden rewrite smuggled in with the code that caused it.
``--allow-dirty`` overrides the check for local experimentation; CI and
reviewed refreshes must not use it.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from tests.integration.scenarios import (  # noqa: E402
    GOLDEN_PATH,
    SCENARIOS,
    run_scenario,
)


def working_tree_dirty() -> bool:
    """Whether the git working tree has any uncommitted change."""
    result = subprocess.run(
        ["git", "status", "--porcelain"], cwd=REPO_ROOT,
        capture_output=True, text=True, check=True)
    return bool(result.stdout.strip())


def main(argv=None) -> int:
    """Entry point: refresh one scenario's golden snapshot, or all."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--scenario", choices=sorted(SCENARIOS),
                       help="refresh one named scenario's snapshot")
    group.add_argument("--all", action="store_true",
                       help="refresh every scenario snapshot")
    parser.add_argument("--allow-dirty", action="store_true",
                        help="skip the clean-working-tree check (local "
                             "experimentation only; never for a "
                             "committed refresh)")
    args = parser.parse_args(argv)

    if not args.allow_dirty and working_tree_dirty():
        print("refusing to refresh goldens: the working tree is dirty.\n"
              "Commit (or stash) your changes first so the golden diff "
              "stands alone, or pass --allow-dirty for a local "
              "experiment.", file=sys.stderr)
        return 1

    goldens = {}
    if GOLDEN_PATH.exists():
        with open(GOLDEN_PATH) as handle:
            goldens = json.load(handle)

    names = sorted(SCENARIOS) if args.all else [args.scenario]
    for name in names:
        print(f"running scenario {name} ...")
        goldens[name] = run_scenario(name)

    with open(GOLDEN_PATH, "w") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH} ({len(names)} scenario(s) refreshed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
