#!/usr/bin/env python
"""Reproduce the full evaluation in one command.

Equivalent to the original artifact's per-figure scripts (Appendix A):
runs the test suite, then every benchmark, and prints where each table and
figure landed.  Expect roughly 10-15 minutes of wall-clock time.

Usage::

    python scripts/reproduce_all.py            # tests + all benchmarks
    python scripts/reproduce_all.py --quick    # skip tests, headline benches only
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

HEADLINE_BENCHES = [
    "benchmarks/bench_table1.py",
    "benchmarks/bench_fig1_timeline.py",
    "benchmarks/bench_fig7_overall.py",
    "benchmarks/bench_fig8_strategies.py",
    "benchmarks/bench_fig10_ttft.py",
]


def run(args: list) -> int:
    print(f"\n$ {' '.join(args)}", flush=True)
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return subprocess.call(args, cwd=REPO, env=env)


def lint_materialized_artifact() -> int:
    """Materialize one model and statically verify the artifact.

    The same gate CI applies: `repro lint` exits 1 on any diagnostic and
    2 on an unreadable artifact, so a non-zero return fails the run.
    """
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        artifact = str(pathlib.Path(tmp) / "qwen05b.medusa.json")
        code = run([sys.executable, "-m", "repro", "offline",
                    "--model", "Qwen1.5-0.5B", "--output", artifact])
        if code:
            return code
        return run([sys.executable, "-m", "repro", "lint", artifact])


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="skip the test suite; headline benches only")
    options = parser.parse_args()

    if not options.quick:
        code = run([sys.executable, "-m", "pytest", "tests/"])
        if code:
            print("test suite failed; aborting", file=sys.stderr)
            return code

    code = lint_materialized_artifact()
    if code:
        print("artifact static verification failed; aborting",
              file=sys.stderr)
        return code

    targets = HEADLINE_BENCHES if options.quick else ["benchmarks/"]
    code = run([sys.executable, "-m", "pytest", *targets,
                "--benchmark-only", "-q"])
    if code:
        return code

    results = REPO / "results"
    print("\nRegenerated outputs:")
    for path in sorted(results.glob("*.txt")):
        print(f"  results/{path.name}")
    print("\nSee EXPERIMENTS.md for the paper-vs-measured record.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
