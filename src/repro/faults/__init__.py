"""Deterministic fault injection + the restoration degradation ladder.

See :mod:`repro.faults.plan` (what to inject), :mod:`repro.faults.injector`
(where it fires), and :mod:`repro.faults.ladder` (how the cold start
recovers).
"""

from repro.faults.injector import FaultInjector, corrupt_graph_payload
from repro.faults.ladder import (
    DEGRADE_EAGER,
    DEGRADE_KV_PROFILE,
    DEGRADE_PARTIAL,
    DEGRADE_RECAPTURE,
    FAULT_STATIC_COVERAGE,
    RESTORE_VERIFY,
    RUNTIME_ONLY,
    DegradationPolicy,
    DegradationReport,
    LadderStep,
    Rung,
)
from repro.faults.plan import (
    PHASE_KV,
    PHASE_WARMUP,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "DEGRADE_EAGER",
    "DEGRADE_KV_PROFILE",
    "DEGRADE_PARTIAL",
    "DEGRADE_RECAPTURE",
    "FAULT_STATIC_COVERAGE",
    "RESTORE_VERIFY",
    "RUNTIME_ONLY",
    "DegradationPolicy",
    "DegradationReport",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "LadderStep",
    "PHASE_KV",
    "PHASE_WARMUP",
    "Rung",
    "corrupt_graph_payload",
]
