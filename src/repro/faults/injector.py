"""The runtime side of fault injection: site hooks + deterministic targets.

A :class:`FaultInjector` wraps one :class:`~repro.faults.plan.FaultPlan` and
is threaded through the layers a restore actually crosses — the artifact
store (load-time corruption), the simulated driver (symbol resolution), and
the online restorer (allocation replay, permanent dumps, trigger launches).
``prepare(artifact)`` resolves every underspecified fault target against the
concrete artifact using the plan's seeded RNG, so the same (plan, artifact)
pair always faults at the same site.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.artifact import MaterializedModel, ReplayEvent
from repro.core.pointer_analysis import POINTER
from repro.errors import InvalidValueError, OutOfMemoryError
from repro.faults.plan import (
    PHASE_KV,
    PHASE_WARMUP,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

#: Offset pushed into a corrupted pointer restore — far outside any
#: simulated allocation, so the restore check (§4.2) must trip.
_CORRUPT_OFFSET = 1 << 40
#: Perturbation applied to a diverged replay event's allocation index.
_DIVERGENCE_SHIFT = 7919


def _pointer_sites(param_restores) -> List[int]:
    """Indices of POINTER-kind restores in one node's restore list."""
    return [i for i, restore in enumerate(param_restores)
            if getattr(restore, "kind", None) == POINTER
            or (isinstance(restore, dict) and restore.get("kind") == POINTER)]


def _pick_corruption_site(nodes, first_layer_nodes: int,
                          restores_of) -> Tuple[int, int]:
    """(node index, param index) to corrupt in one graph.

    Prefers a node *after* the first-layer prefix so the poison stays local
    to the graph's restore tail instead of breaking the shared warm-up.
    """
    candidates = []
    for node_index in range(len(nodes) - 1, -1, -1):
        sites = _pointer_sites(restores_of(nodes[node_index]))
        if sites:
            candidates.append((node_index, sites[-1]))
            if node_index >= first_layer_nodes:
                return node_index, sites[-1]
    if candidates:
        return candidates[0]
    raise InvalidValueError(
        "graph has no pointer-restore parameters to corrupt")


def corrupt_graph_payload(payload: Dict, batch_size: Optional[int] = None) -> Dict:
    """Apply the canonical ARTIFACT_CORRUPTION mutation to a raw artifact
    JSON payload (the same mutation the injector applies to a loaded
    artifact) — used by the lint-sync tests to show MED011 catches it."""
    graphs = payload["graphs"]
    key = str(batch_size) if batch_size is not None else sorted(graphs)[0]
    nodes = graphs[key]["nodes"]
    node_index, param_index = _pick_corruption_site(
        nodes, payload.get("first_layer_nodes", 0),
        lambda node: node["param_restores"])
    nodes[node_index]["param_restores"][param_index]["offset"] = _CORRUPT_OFFSET
    return payload


@dataclass
class _ResolvedFault:
    """A FaultSpec with every target pinned against one artifact."""

    spec: FaultSpec
    batch_size: Optional[int] = None
    event_index: Optional[int] = None
    kernel_name: str = ""
    alloc_index: Optional[int] = None

    @property
    def kind(self) -> FaultKind:
        return self.spec.kind


class FaultInjector:
    """Injects one FaultPlan's faults at their restoration sites."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._resolved: List[_ResolvedFault] = []
        self._prepared = False
        #: (site, description) log of every fault that actually fired.
        self.fired: List[Tuple[str, str]] = []

    @property
    def active(self) -> bool:
        return not self.plan.is_empty

    def record(self, site: str, description: str) -> None:
        self.fired.append((site, description))

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------

    def prepare(self, artifact: MaterializedModel) -> None:
        """Pin every fault's target against ``artifact`` (idempotent)."""
        if self._prepared or not self.active:
            self._prepared = True
            return
        self._resolved = [self._resolve(index, spec, artifact)
                          for index, spec in enumerate(self.plan.faults)]
        self._prepared = True

    def _resolve(self, index: int, spec: FaultSpec,
                 artifact: MaterializedModel) -> _ResolvedFault:
        rng = self.plan.rng("fault", index, spec.kind.value)
        resolved = _ResolvedFault(spec=spec)
        if spec.kind is FaultKind.ARTIFACT_CORRUPTION:
            batches = sorted(artifact.graphs)
            resolved.batch_size = spec.batch_size if spec.batch_size in \
                artifact.graphs else batches[int(rng.integers(len(batches)))]
        elif spec.kind in (FaultKind.REPLAY_DIVERGENCE, FaultKind.REPLAY_OOM):
            resolved.event_index = self._resolve_replay_target(
                spec, artifact, rng)
        elif spec.kind is FaultKind.HIDDEN_KERNEL_UNRESOLVED:
            # Only kernels outside the captured first-layer prefix ever go
            # through dlsym/enumeration — prefix kernels get their address
            # from the captured warm-up graph and would never miss.
            max_graph = artifact.graph(max(artifact.graphs))
            prefix = {node.kernel_name
                      for node in
                      max_graph.nodes[:artifact.first_layer_nodes]}
            names = sorted({node.kernel_name
                            for graph in artifact.graphs.values()
                            for node in graph.nodes} - prefix) \
                or sorted(artifact.kernel_libraries)
            resolved.kernel_name = spec.kernel_name or \
                names[int(rng.integers(len(names)))]
        elif spec.kind is FaultKind.PERMANENT_DUMP_BITFLIP:
            dumps = sorted(artifact.permanent_contents)
            if spec.alloc_index in artifact.permanent_contents:
                resolved.alloc_index = spec.alloc_index
            elif dumps:
                resolved.alloc_index = dumps[int(rng.integers(len(dumps)))]
        elif spec.kind is FaultKind.TRIGGER_TIMEOUT:
            if spec.kernel_name:
                resolved.kernel_name = spec.kernel_name
            else:
                graph = artifact.graph(max(artifact.graphs))
                prefix = graph.nodes[:artifact.first_layer_nodes] or graph.nodes
                names = sorted({node.kernel_name for node in prefix})
                resolved.kernel_name = names[int(rng.integers(len(names)))]
        return resolved

    @staticmethod
    def _resolve_replay_target(spec: FaultSpec,
                               artifact: MaterializedModel,
                               rng) -> Optional[int]:
        events = artifact.replay_events
        if spec.event_index is not None:
            return spec.event_index if 0 <= spec.event_index < len(events) \
                else None
        kv_pos = next((i for i, e in enumerate(events)
                       if e.kind == "alloc"
                       and e.alloc_index == artifact.kv_alloc_index),
                      len(events) - 1)
        phase = spec.phase or PHASE_WARMUP
        if phase == PHASE_KV:
            span = range(0, kv_pos + 1)
        else:
            span = range(kv_pos + 1, len(events))
        # Both replay faults model cudaMalloc misbehavior (an unexpected
        # return or a failure), so only alloc events are meaningful targets.
        candidates = [i for i in span if events[i].kind == "alloc"]
        if not candidates:
            return kv_pos if phase == PHASE_KV else None
        return candidates[int(rng.integers(len(candidates)))]

    def _faults(self, *kinds: FaultKind) -> List[_ResolvedFault]:
        return [f for f in self._resolved if f.kind in kinds]

    # ------------------------------------------------------------------
    # Site hooks
    # ------------------------------------------------------------------

    def corrupted_artifact(self, artifact: MaterializedModel
                           ) -> MaterializedModel:
        """Apply ARTIFACT_CORRUPTION faults; returns a mutated deep copy
        (or ``artifact`` itself when no corruption fault targets it)."""
        self.prepare(artifact)
        faults = self._faults(FaultKind.ARTIFACT_CORRUPTION)
        if not faults:
            return artifact
        corrupted = copy.deepcopy(artifact)
        for fault in faults:
            graph = corrupted.graph(fault.batch_size)
            node_index, param_index = _pick_corruption_site(
                graph.nodes, corrupted.first_layer_nodes,
                lambda node: node.param_restores)
            restore = graph.nodes[node_index].param_restores[param_index]
            graph.nodes[node_index].param_restores[param_index] = \
                replace(restore, offset=_CORRUPT_OFFSET)
            self.record("store.load",
                        f"corrupted batch-{fault.batch_size} graph node "
                        f"{node_index} param {param_index} (offset pushed "
                        f"out of bounds)")
        return corrupted

    def on_replay_event(self, position: int,
                        event: ReplayEvent) -> ReplayEvent:
        """Called per replayed event; may perturb it or raise OOM."""
        for fault in self._faults(FaultKind.REPLAY_OOM):
            if fault.event_index == position:
                self.record("replay.event",
                            f"cudaMalloc OOM at replay event {position}")
                raise OutOfMemoryError(
                    f"cudaMalloc failed during allocation replay (event "
                    f"{position}, fault injection): device memory exhausted")
        for fault in self._faults(FaultKind.REPLAY_DIVERGENCE):
            if fault.event_index == position:
                self.record("replay.event",
                            f"diverged replay event {position} "
                            f"({event.kind} {event.alloc_index})")
                return replace(
                    event,
                    alloc_index=event.alloc_index + _DIVERGENCE_SHIFT)
        return event

    def symbol_blocked(self, kernel_name: str) -> bool:
        """HIDDEN_KERNEL_UNRESOLVED: neither dlsym nor enumeration may see
        the targeted kernel (its module looks never-loaded)."""
        for fault in self._faults(FaultKind.HIDDEN_KERNEL_UNRESOLVED):
            if fault.kernel_name == kernel_name:
                self.record("driver.resolve",
                            f"blocked symbol resolution of {kernel_name}")
                return True
        return False

    def permanent_payload(self, alloc_index: int,
                          payload: np.ndarray) -> np.ndarray:
        """PERMANENT_DUMP_BITFLIP: flip one element of a restored dump."""
        for fault in self._faults(FaultKind.PERMANENT_DUMP_BITFLIP):
            if fault.alloc_index != alloc_index:
                continue
            flipped = np.array(payload, copy=True)
            rng = self.plan.rng("bitflip", alloc_index)
            flat = flipped.reshape(-1)
            position = int(rng.integers(flat.size))
            flat[position] = -(flat[position] + 1.0)   # guaranteed different
            self.record("restore.permanent",
                        f"flipped element {position} of permanent dump "
                        f"{alloc_index}")
            return flipped
        return payload

    def trigger_times_out(self, kernel_name: str) -> bool:
        """TRIGGER_TIMEOUT: does this trigger launch wedge?  Fires once."""
        for fault in self._faults(FaultKind.TRIGGER_TIMEOUT):
            if fault.kernel_name == kernel_name:
                self.record("warmup.trigger",
                            f"trigger launch of {kernel_name} timed out")
                self._resolved.remove(fault)
                return True
        return False
