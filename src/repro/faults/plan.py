"""Typed, seedable fault plans for restoration chaos testing.

Medusa's safety argument (§4–§5) is that restoration either reproduces the
offline process's state exactly or fails loudly.  A :class:`FaultPlan` is
the instrument that *provokes* those failures deterministically: a seed plus
a list of typed :class:`FaultSpec` entries, each naming one realistic way a
restore can go wrong.  The same (seed, faults) pair always injects the same
faults at the same sites, so every chaos-test failure replays exactly.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import InvalidValueError
from repro.utils.rng import SeedSequence


class FaultKind(enum.Enum):
    """The fault taxonomy, one entry per realistic restoration hazard."""

    #: A poisoned artifact: a pointer-restore rule in one batch-size graph
    #: points outside its replayed allocation (the on-SSD copy went stale).
    ARTIFACT_CORRUPTION = "artifact_corruption"
    #: The online allocator returns a different allocation than the recorded
    #: event stream expects — the deterministic-control-flow assumption broke.
    REPLAY_DIVERGENCE = "replay_divergence"
    #: A kernel resolves through neither dlsym nor module enumeration (its
    #: triggering kernel no longer covers it, §5).
    HIDDEN_KERNEL_UNRESOLVED = "hidden_kernel_unresolved"
    #: cudaMalloc fails mid-replay (fragmentation / a co-tenant grabbed VRAM).
    REPLAY_OOM = "replay_oom"
    #: A permanent-buffer dump (§4.3) comes back with flipped bits.
    PERMANENT_DUMP_BITFLIP = "permanent_dump_bitflip"
    #: A triggering-kernel launch wedges past its watchdog budget (§5.1).
    TRIGGER_TIMEOUT = "trigger_timeout"


#: Replay-fault phases: before the KV allocation lands (kills the KV
#: restore) or in the warm-up remainder (KV survives, graphs do not).
PHASE_KV = "kv"
PHASE_WARMUP = "warmup"
_PHASES = ("", PHASE_KV, PHASE_WARMUP)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.  Unset targets are resolved deterministically
    from the plan seed against the artifact (see ``FaultInjector.prepare``).
    """

    kind: FaultKind
    batch_size: Optional[int] = None    # ARTIFACT_CORRUPTION: target graph
    event_index: Optional[int] = None   # replay faults: replay_events index
    kernel_name: str = ""               # symbol / trigger faults
    alloc_index: Optional[int] = None   # PERMANENT_DUMP_BITFLIP: target dump
    phase: str = ""                     # replay faults: "kv" | "warmup"
    note: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise InvalidValueError(
                f"FaultSpec.kind must be a FaultKind, got {self.kind!r}")
        if self.phase not in _PHASES:
            raise InvalidValueError(
                f"FaultSpec.phase must be one of {_PHASES}, "
                f"got {self.phase!r}")

    def to_dict(self) -> Dict:
        payload: Dict = {"kind": self.kind.value}
        for key in ("batch_size", "event_index", "alloc_index"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        for key in ("kernel_name", "phase", "note"):
            value = getattr(self, key)
            if value:
                payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        try:
            kind = FaultKind(payload["kind"])
        except (KeyError, ValueError) as exc:
            raise InvalidValueError(
                f"fault spec payload has no valid kind: {payload!r}") from exc
        return cls(kind=kind,
                   batch_size=payload.get("batch_size"),
                   event_index=payload.get("event_index"),
                   kernel_name=payload.get("kernel_name", ""),
                   alloc_index=payload.get("alloc_index"),
                   phase=payload.get("phase", ""),
                   note=payload.get("note", ""))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one cold start."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def rng(self, *names: object):
        """A numpy Generator derived from (plan seed, names) — stable."""
        return SeedSequence(self.seed).generator("faultplan", *names)

    # -- (de)serialization: chaos runs are shareable as JSON ----------------

    def to_json(self) -> str:
        return json.dumps({"seed": self.seed,
                           "faults": [f.to_dict() for f in self.faults]})

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidValueError(
                f"fault plan is not valid JSON: {exc}") from exc
        return cls(seed=int(payload.get("seed", 0)),
                   faults=tuple(FaultSpec.from_dict(f)
                                for f in payload.get("faults", ())))
