"""The graceful-degradation ladder for Medusa restoration.

Real serverless stacks keep serving when the fast path breaks (ServerlessLLM
falls through its loading tiers; template systems fall back to a plain
start).  The restoration equivalent is a ladder of rungs, each trading more
cold-start latency for less trust in the artifact:

=========== ================================================================
rung        meaning
=========== ================================================================
FULL        every graph restored from the artifact (the normal fast path)
PARTIAL     poisoned batch-size graphs dropped; served via batch padding
RECAPTURE   poisoned graphs re-captured live (restored KV kept)
EAGER       restoration abandoned; vanilla profile + capture cold start
=========== ================================================================

Every step down is recorded as a :class:`LadderStep` and surfaces as a
distinct LoadPlan stage, so the Timeline, the CLI breakdown table, and the
Chrome trace all show *what* degraded and what it cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultKind

#: Timeline stage names for degradation work (appended after the restore
#: tail; see ``repro.engine.loadplan.append_stages``).
DEGRADE_KV_PROFILE = "degrade_kv_profile"
RESTORE_VERIFY = "restore_verify"
DEGRADE_PARTIAL = "degrade_partial"
DEGRADE_RECAPTURE = "degrade_recapture"
DEGRADE_EAGER = "degrade_eager_capture"

#: Every ladder stage name a cold start may append, worst-case order —
#: the degraded-variant universe ``repro lint-plan`` verifies per plan.
DEGRADED_LADDER_STAGES = (DEGRADE_KV_PROFILE, RESTORE_VERIFY,
                          DEGRADE_PARTIAL, DEGRADE_RECAPTURE,
                          DEGRADE_EAGER)


class Rung(enum.IntEnum):
    """Ladder rungs, ordered from best (FULL) to worst (EAGER)."""

    FULL = 0
    PARTIAL = 1
    RECAPTURE = 2
    EAGER = 3

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class DegradationPolicy:
    """How far down the ladder a cold start may recover.

    ``verify_dumps`` / ``verify_outputs``: None means *auto* — verify only
    when a fault injector is active, so a policy attached to a clean restore
    leaves its timeline byte-identical to the policy-less path.
    ``verify_outputs`` additionally requires COMPUTE mode (the oracle is a
    real eager forwarding).
    """

    allow_partial: bool = True
    allow_recapture: bool = True
    verify_dumps: Optional[bool] = None
    verify_outputs: Optional[bool] = None


@dataclass
class LadderStep:
    """One recorded descent (or recovery action) on the ladder."""

    rung: Rung
    stage: str                      # the timeline stage charging its cost
    reason: str
    batches: Tuple[int, ...] = ()
    duration: float = 0.0

    def describe(self) -> str:
        suffix = f" (batches {list(self.batches)})" if self.batches else ""
        return f"{self.rung.label}: {self.reason}{suffix}"


@dataclass
class DegradationReport:
    """What one cold start's ladder actually did."""

    steps: List[LadderStep] = field(default_factory=list)
    #: Human-readable descriptions of the faults that were caught.
    failures: List[str] = field(default_factory=list)

    @property
    def rung(self) -> Rung:
        return max((step.rung for step in self.steps), default=Rung.FULL)

    @property
    def rung_name(self) -> str:
        return self.rung.label

    @property
    def degraded(self) -> bool:
        return self.rung is not Rung.FULL

    def record(self, step: LadderStep) -> None:
        self.steps.append(step)

    def note_failure(self, site: str, exc: BaseException) -> None:
        self.failures.append(f"{site}: {type(exc).__name__}: {exc}")

    def extra_stages(self) -> List[Tuple[str, float]]:
        """(stage name, duration) pairs to append to the LoadPlan."""
        return [(step.stage, step.duration) for step in self.steps
                if step.stage]

    def describe(self) -> str:
        if not self.degraded:
            return "full restore (no degradation)"
        lines = [f"degraded cold start — rung {self.rung_name}"]
        lines += [f"  - {step.describe()}" for step in self.steps]
        lines += [f"  ! {failure}" for failure in self.failures]
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "rung": self.rung_name,
            "degraded": self.degraded,
            "steps": [{"rung": s.rung.label, "stage": s.stage,
                       "reason": s.reason, "batches": list(s.batches),
                       "duration": s.duration} for s in self.steps],
            "failures": list(self.failures),
        }


#: Marker for fault kinds no static MED0xx diagnostic can catch — they only
#: exist at restore time (live allocator state, live driver state).
RUNTIME_ONLY = "runtime-only"

#: Static-lint coverage per fault kind, kept in sync by
#: ``tests/core/test_lint_mutations.py``: either the MED0xx code that flags
#: the canonical corruption in a *stored* artifact, or ``RUNTIME_ONLY``.
FAULT_STATIC_COVERAGE: Dict[FaultKind, str] = {
    # The canonical corruption (pointer offset outside its allocation) is
    # exactly what the pointer linter checks.
    FaultKind.ARTIFACT_CORRUPTION: "MED011",
    # The remaining kinds corrupt the *process*, not the artifact bytes:
    FaultKind.REPLAY_DIVERGENCE: RUNTIME_ONLY,
    FaultKind.HIDDEN_KERNEL_UNRESOLVED: RUNTIME_ONLY,
    FaultKind.REPLAY_OOM: RUNTIME_ONLY,
    FaultKind.PERMANENT_DUMP_BITFLIP: RUNTIME_ONLY,
    FaultKind.TRIGGER_TIMEOUT: RUNTIME_ONLY,
}
