"""ASCII bar rendering for the figure benches.

The paper's figures are bar/line charts; the benchmarks print tables for
exactness and these horizontal bars for shape-at-a-glance (stacked bars for
the loading-phase breakdowns, grouped bars for strategy comparisons).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: One glyph per stage for stacked bars, cycled in order.
_STACK_GLYPHS = "█▓▒░▚▞▗"


def horizontal_bars(title: str, entries: Sequence[Tuple[str, float]],
                    width: int = 50, unit: str = "s") -> str:
    """Simple labelled horizontal bars, scaled to the longest entry."""
    if not entries:
        return f"{title}\n(empty)"
    peak = max(value for _label, value in entries) or 1.0
    label_width = max(len(label) for label, _value in entries)
    lines = [title, "=" * len(title)]
    for label, value in entries:
        bar = "█" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def stacked_bars(title: str, labels: Sequence[str],
                 segments: Dict[str, Sequence[float]],
                 width: int = 60, unit: str = "s") -> str:
    """Stacked horizontal bars: one row per label, one glyph per segment.

    ``segments`` maps segment name -> per-label values (all equal length).
    """
    names = list(segments)
    totals = [sum(segments[name][i] for name in names)
              for i in range(len(labels))]
    peak = max(totals) if totals else 1.0
    label_width = max(len(label) for label in labels) if labels else 0
    lines = [title, "=" * len(title)]
    legend = "  ".join(
        f"{_STACK_GLYPHS[i % len(_STACK_GLYPHS)]}={name}"
        for i, name in enumerate(names))
    lines.append(f"legend: {legend}")
    for row, label in enumerate(labels):
        bar = ""
        for index, name in enumerate(names):
            glyph = _STACK_GLYPHS[index % len(_STACK_GLYPHS)]
            cells = round(width * segments[name][row] / peak) if peak else 0
            bar += glyph * cells
        lines.append(f"{label.ljust(label_width)}  {bar} "
                     f"{totals[row]:.3g}{unit}")
    return "\n".join(lines)
