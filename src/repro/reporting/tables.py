"""Plain-text table/series rendering for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, in a stable plain-text format that diffs cleanly across
runs (EXPERIMENTS.md records these outputs).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Cell]]) -> str:
    """An aligned plain-text table with a title rule."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_diagnostics(title: str, diagnostics: Sequence) -> str:
    """Render static-analysis / validation diagnostics as one table.

    Accepts any objects with ``code``, ``severity``, ``location``, and
    ``message`` attributes (:class:`repro.analysis.Diagnostic`), so runtime
    validation reports and lint reports share one rendering path.
    """
    if not diagnostics:
        return f"{title}\n{'=' * len(title)}\n(no diagnostics)"
    rows = [[d.code, d.severity, d.location or "-", d.message]
            for d in diagnostics]
    return format_table(title, ["code", "severity", "location", "message"],
                        rows)


def format_stage_breakdown(title: str, timeline) -> str:
    """Render a cold-start timeline's per-stage schedule as one table.

    One row per scheduled stage: name, resource lane, start/end/duration
    (simulated seconds), and flags — ``*`` for critical-path stages, ``bg``
    for background stages that finish behind the serving-ready instant
    (the pipelined ``restore_graph`` tail) — the LoadPlan trace surfaced in
    the ``repro coldstart``/``restore``/``validate`` tables.  When the two
    instants differ, ready/total footer lines make the shortened critical
    path visible in text output.
    """
    def flags(stage) -> str:
        if getattr(stage, "background", False):
            return "bg"
        return "*" if stage.critical else ""

    rows = [[stage.name, stage.lane or "-", stage.start, stage.end,
             stage.duration, flags(stage)]
            for stage in timeline.stages]
    table = format_table(
        title,
        ["stage", "lane", "start (s)", "end (s)", "duration (s)", "flags"],
        rows)
    ready = getattr(timeline, "ready", timeline.total)
    if abs(ready - timeline.total) > 1e-12:
        table += (f"\nready (serving) at {ready:.4f} s; background restore "
                  f"finishes at {timeline.total:.4f} s")
    return table


def format_series(title: str, series: Dict[str, Sequence[Cell]],
                  x_label: str, x_values: Sequence[Cell]) -> str:
    """A figure rendered as one column per line (x plus one column/series)."""
    headers = [x_label] + list(series)
    rows: List[List[Cell]] = []
    for index, x in enumerate(x_values):
        row: List[Cell] = [x]
        for name in series:
            row.append(series[name][index])
        rows.append(row)
    return format_table(title, headers, rows)
