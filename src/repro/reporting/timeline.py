"""Chrome-trace export of cold-start schedules and whole cluster runs.

The paper inspects stage overlap with NVIDIA Nsight Systems (§7.3); the
closest open equivalent for this reproduction is the Chrome trace-event
format (``chrome://tracing`` / Perfetto).  Each strategy's scheduled
LoadPlan timeline becomes one track of complete events per resource lane,
so the async overlap, the bubble, and Medusa's warm-up/restore split are
visually inspectable.

Since the cluster simulators run on the :mod:`repro.sim` event kernel,
their :class:`repro.sim.TraceRecorder` log renders the same way: one
unified trace of a whole simulated run — arrivals, per-stage cold starts,
serving steps, ladder-rung events, cancellations, retirements — with one
thread row per instance (:func:`simulation_trace_events`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.engine.engine import ColdStartReport
from repro.engine.lanes import Lane
from repro.sim import TraceRecorder

#: Track rows: stages on the same resource lane share a thread id.
_LANE_TRACKS = {
    Lane.CPU.value: 1,
    Lane.PCIE.value: 2,
    Lane.DISK.value: 2,     # IO (SSD -> host -> device) shares the PCIe row
    Lane.GPU_COMPUTE.value: 3,
}

#: Fallback for legacy timelines whose stages carry no lane annotation.
_RESOURCE_TRACKS = {
    "structure_init": 1,   # CPU
    "load_tokenizer": 1,   # CPU
    "load_weights": 2,     # IO (SSD -> host -> device)
    "kv_init": 3,          # GPU
    "capture": 3,          # GPU
    "medusa_warmup": 3,    # GPU
    "medusa_restore": 3,   # GPU
}

_MICRO = 1_000_000

#: Placement-layer marks describe node cache traffic, not one instance's
#: lifecycle: render them process-scoped (the vertical line spans every
#: thread row) and color-coded so hits, misses, and evictions are
#: tellable apart at a glance in Perfetto.
_PLACEMENT_CNAMES = {
    "artifact_promoted": "good",
    "artifact_evicted": "terrible",
}


def _placement_style(label: str, args: Dict) -> Dict:
    """Scope/color overrides for artifact placement instant events."""
    if label == "artifact_fetch":
        return {"s": "p", "cname": "good" if args.get("hit") else "bad"}
    if label in _PLACEMENT_CNAMES:
        return {"s": "p", "cname": _PLACEMENT_CNAMES[label]}
    return {}


def _track(stage) -> int:
    lane = getattr(stage, "lane", "")
    if lane in _LANE_TRACKS:
        return _LANE_TRACKS[lane]
    return _RESOURCE_TRACKS.get(stage.name, 9)


def to_trace_events(report: ColdStartReport,
                    pid: int = 0) -> List[Dict]:
    """The report's timeline as Chrome 'X' (complete) events.

    Each event's ``args`` carries the stage's resource lane and whether
    the scheduler placed it on the cold start's critical path, so the
    Perfetto view answers "what would shrinking this stage buy?" directly.
    """
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": f"{report.model} / {report.strategy.label}"},
    }]
    for stage in report.timeline.stages:
        if stage.duration <= 0:
            continue
        events.append({
            "name": stage.name,
            "ph": "X",
            "pid": pid,
            "tid": _track(stage),
            "ts": stage.start * _MICRO,
            "dur": stage.duration * _MICRO,
            "args": {"seconds": round(stage.duration, 6),
                     "lane": getattr(stage, "lane", "") or "unknown",
                     "critical": bool(getattr(stage, "critical", False))},
        })
    return events


def export_chrome_trace(reports: Sequence[ColdStartReport]) -> str:
    """A complete Chrome trace JSON for one or more cold starts."""
    events: List[Dict] = []
    for pid, report in enumerate(reports):
        events.extend(to_trace_events(report, pid=pid))
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"})


def save_chrome_trace(reports: Sequence[ColdStartReport], path) -> int:
    """Write the Chrome trace to ``path``; returns its byte size."""
    text = export_chrome_trace(reports)
    with open(path, "w") as handle:
        handle.write(text)
    return len(text)


def simulation_trace_events(trace: TraceRecorder, pid: int = 0,
                            name: str = "cluster") -> List[Dict]:
    """One simulated cluster run's event-kernel trace as Chrome events.

    Every span (cold-start stage, serving step) becomes a complete 'X'
    event and every mark (arrival, readiness, ladder rung, cancellation,
    retirement) an instant 'i' event; tracks (one per instance, plus the
    router) map to thread rows in first-appearance order, named via
    metadata events so Perfetto labels them.
    """
    tids: Dict[str, int] = {}
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": name},
    }]

    def _tid(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tids[track], "args": {"name": track or "events"},
            })
        return tids[track]

    for span, track, args in zip(trace.spans, trace.tracks, trace.args):
        if span.duration <= 0:
            continue
        events.append({
            "name": span.label,
            "ph": "X",
            "pid": pid,
            "tid": _tid(track),
            "ts": span.start * _MICRO,
            "dur": span.duration * _MICRO,
            "args": dict(args, seconds=round(span.duration, 6)),
        })
    for label, time, track, args in trace.marks:
        event = {
            "name": label,
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": _tid(track),
            "ts": time * _MICRO,
            "args": dict(args),
        }
        event.update(_placement_style(label, event["args"]))
        events.append(event)
    return events


def export_simulation_trace(trace: TraceRecorder,
                            name: str = "cluster") -> str:
    """A complete Chrome trace JSON for one simulated cluster run."""
    return json.dumps({"traceEvents": simulation_trace_events(trace,
                                                              name=name),
                       "displayTimeUnit": "ms"})


def save_simulation_trace(trace: TraceRecorder, path,
                          name: str = "cluster") -> int:
    """Write a cluster run's unified trace to ``path``; returns its size."""
    text = export_simulation_trace(trace, name=name)
    with open(path, "w") as handle:
        handle.write(text)
    return len(text)
