"""Benchmark output formatting: the paper's tables and figure series."""

from repro.reporting.figures import horizontal_bars, stacked_bars
from repro.reporting.tables import (
    format_diagnostics,
    format_series,
    format_stage_breakdown,
    format_table,
)

__all__ = ["format_diagnostics", "format_series", "format_stage_breakdown",
           "format_table", "horizontal_bars", "stacked_bars"]
