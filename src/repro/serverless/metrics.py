"""Metrics collected by the cluster simulator (Figures 10/11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.utils.stats import mean, percentile, summarize


@dataclass
class SimulationMetrics:
    """TTFT tail, throughput, and cold-start accounting for one run."""

    horizon: float = 0.0
    ttfts: List[float] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    completed: int = 0
    arrived: int = 0
    cold_starts: int = 0
    # Cold starts that finished on a lower degradation-ladder rung (the
    # instance still serves, but its loading phase lost the full restore).
    degraded_cold_starts: int = 0
    degraded_rungs: Dict[str, int] = field(default_factory=dict)
    # Artifact-store LRU outcomes for the cold starts that fetched through
    # a store (SimulationConfig.artifact_store): a hit skips deserialization
    # and static lint entirely (see repro.core.store.ArtifactStore).
    store_cache_hits: int = 0
    store_cache_misses: int = 0
    # Stage-granular cold-start accounting (profile-driven launches only):
    # summed seconds and completion counts per LoadPlan stage name, as
    # observed from the cluster's stage-done events.
    cold_stage_seconds: Dict[str, float] = field(default_factory=dict)
    cold_stage_counts: Dict[str, int] = field(default_factory=dict)
    # Cold starts the scale-down policy aborted mid-flight, keyed by the
    # stage boundary the cancellation took effect at.
    cancelled_cold_starts: int = 0
    cancelled_at_stage: Dict[str, int] = field(default_factory=dict)
    # Serving steps that overlapped a pipelined restore's background tail
    # (and the extra seconds that contention cost them).
    background_contended_steps: int = 0
    background_contention_seconds: float = 0.0
    # Locality placement layer (repro.serverless.placement): artifact
    # fetches resolved against a node's tier hierarchy.  Hits are keyed
    # by the tier served from; misses fetched from the remote store.
    tier_hits: Dict[str, int] = field(default_factory=dict)
    tier_misses: int = 0
    # Artifacts pushed out of a node's cache hierarchy entirely, keyed by
    # the tier the spill was recorded against, and promotions one tier
    # warmer on cache hits, keyed by the tier landed in.
    tier_evictions: Dict[str, int] = field(default_factory=dict)
    tier_promotions: Dict[str, int] = field(default_factory=dict)
    # Seconds of fetch_artifact time the tier-resolved fetches saved
    # against the plans' remote baselines.
    fetch_seconds_saved: float = 0.0
    # Chunk-streamed fetches (content-addressed artifact chunks resolved
    # against per-node chunk residency): chunks already resident (shared
    # with a prior — possibly sibling-model — cold start), bytes those
    # hits avoided re-fetching, and bytes actually fetched before the
    # instance's ready instant.  All stay zero for blob-granular runs.
    chunk_hits: int = 0
    bytes_deduped: float = 0.0
    fetch_bytes_foreground: float = 0.0
    provisioned_gpu_seconds: float = 0.0   # ready time across instances
    busy_gpu_seconds: float = 0.0          # time instances spent serving
    # SLO accounting (repro.serverless.autoscale): the per-request TTFT
    # budget this run is held to (0.0 = no SLO configured), requests
    # whose TTFT exceeded it, TTFT seconds attributable to waiting on
    # cold starts, and provisioned-but-idle warm seconds — the two
    # quantities the scale-down policies trade against each other.
    slo_ttft: float = 0.0
    slo_violations: int = 0
    cold_start_tax_seconds: float = 0.0
    wasted_warm_seconds: float = 0.0
    # Autoscale-policy decision counters ("retire", "scale_up",
    # "idle_tick_armed", ...), folded in from the policy at end of run.
    autoscale_decisions: Dict[str, int] = field(default_factory=dict)

    def record_ttft(self, ttft: float, cold_tax: float = 0.0) -> None:
        """Record one request's TTFT (and its cold-start share)."""
        self.ttfts.append(ttft)
        self.cold_start_tax_seconds += cold_tax
        if self.slo_ttft > 0 and ttft > self.slo_ttft:
            self.slo_violations += 1

    def record_autoscale_decisions(self, decisions: Dict[str, int]) -> None:
        """Fold one policy's decision counters into this run's metrics."""
        for kind, count in decisions.items():
            self.autoscale_decisions[kind] = \
                self.autoscale_decisions.get(kind, 0) + count

    def record_instance_lifetime(self, provisioned: float,
                                 busy: float) -> None:
        """Account one instance's provisioned/busy GPU seconds.

        The provisioned-minus-busy remainder is the instance's wasted
        warm time — what a scale-down policy pays for keeping it alive.
        """
        self.provisioned_gpu_seconds += provisioned
        self.busy_gpu_seconds += busy
        self.wasted_warm_seconds += max(0.0, provisioned - busy)

    def record_degraded_cold_start(self, rung: str) -> None:
        self.degraded_cold_starts += 1
        self.degraded_rungs[rung] = self.degraded_rungs.get(rung, 0) + 1

    def record_store_cache(self, hit: bool) -> None:
        """Count one artifact-store fetch as an LRU hit or miss."""
        if hit:
            self.store_cache_hits += 1
        else:
            self.store_cache_misses += 1

    def record_cold_stage(self, name: str, duration: float) -> None:
        """Account one completed cold-start stage event."""
        self.cold_stage_seconds[name] = \
            self.cold_stage_seconds.get(name, 0.0) + duration
        self.cold_stage_counts[name] = \
            self.cold_stage_counts.get(name, 0) + 1

    def record_cancelled_cold_start(self, stage: str) -> None:
        """Account one cold start aborted at stage boundary ``stage``."""
        self.cancelled_cold_starts += 1
        self.cancelled_at_stage[stage] = \
            self.cancelled_at_stage.get(stage, 0) + 1

    def record_tier_fetch(self, tier: str, hit: bool,
                          seconds_saved: float = 0.0) -> None:
        """Account one tier-resolved artifact fetch (placement layer)."""
        if hit:
            self.tier_hits[tier] = self.tier_hits.get(tier, 0) + 1
        else:
            self.tier_misses += 1
        self.fetch_seconds_saved += seconds_saved

    def record_tier_eviction(self, tier: str) -> None:
        """Account one artifact spilled out of a node's cache hierarchy."""
        self.tier_evictions[tier] = self.tier_evictions.get(tier, 0) + 1

    def record_tier_promotion(self, tier: str) -> None:
        """Account one artifact promoted into a warmer tier on a hit."""
        self.tier_promotions[tier] = self.tier_promotions.get(tier, 0) + 1

    def record_chunk_fetch(self, hits: int, bytes_deduped: float,
                           foreground_bytes: float) -> None:
        """Account one chunk-streamed artifact fetch's aggregate outcome."""
        self.chunk_hits += hits
        self.bytes_deduped += bytes_deduped
        self.fetch_bytes_foreground += foreground_bytes

    def record_background_contention(self, seconds: float) -> None:
        """Account one serving step slowed by the background restore tail."""
        self.background_contended_steps += 1
        self.background_contention_seconds += seconds

    def record_completion(self, latency: float,
                          in_horizon: bool = True) -> None:
        self.latencies.append(latency)
        if in_horizon:
            self.completed += 1

    @property
    def slo_attainment(self) -> float:
        """Fraction of recorded TTFTs within the SLO (1.0 without one)."""
        if self.slo_ttft <= 0 or not self.ttfts:
            return 1.0
        return 1.0 - self.slo_violations / len(self.ttfts)

    @property
    def p99_ttft(self) -> float:
        return percentile(self.ttfts, 99.0)

    @property
    def p90_ttft(self) -> float:
        """The 90th-percentile TTFT (the tail Figures 10/11 track)."""
        return percentile(self.ttfts, 90.0)

    @property
    def p50_ttft(self) -> float:
        return percentile(self.ttfts, 50.0)

    @property
    def mean_ttft(self) -> float:
        return mean(self.ttfts)

    @property
    def gpu_utilization(self) -> float:
        """Busy fraction of provisioned GPU time (hot spares drag it down)."""
        if self.provisioned_gpu_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_gpu_seconds / self.provisioned_gpu_seconds)

    @property
    def wasted_gpu_seconds(self) -> float:
        return max(0.0, self.provisioned_gpu_seconds - self.busy_gpu_seconds)

    @property
    def throughput(self) -> float:
        """Achieved serving throughput: completions per simulated second."""
        if self.horizon <= 0:
            return 0.0
        return self.completed / self.horizon

    def merge(self, other: "SimulationMetrics") -> None:
        """Fold ``other``'s counters into this aggregate view."""
        self.ttfts.extend(other.ttfts)
        self.latencies.extend(other.latencies)
        self.completed += other.completed
        self.arrived += other.arrived
        self.cold_starts += other.cold_starts
        self.degraded_cold_starts += other.degraded_cold_starts
        for rung, count in other.degraded_rungs.items():
            self.degraded_rungs[rung] = \
                self.degraded_rungs.get(rung, 0) + count
        self.store_cache_hits += other.store_cache_hits
        self.store_cache_misses += other.store_cache_misses
        for name, seconds in other.cold_stage_seconds.items():
            self.cold_stage_seconds[name] = \
                self.cold_stage_seconds.get(name, 0.0) + seconds
        for name, count in other.cold_stage_counts.items():
            self.cold_stage_counts[name] = \
                self.cold_stage_counts.get(name, 0) + count
        self.cancelled_cold_starts += other.cancelled_cold_starts
        for stage, count in other.cancelled_at_stage.items():
            self.cancelled_at_stage[stage] = \
                self.cancelled_at_stage.get(stage, 0) + count
        self.background_contended_steps += other.background_contended_steps
        self.background_contention_seconds += \
            other.background_contention_seconds
        for tier, count in other.tier_hits.items():
            self.tier_hits[tier] = self.tier_hits.get(tier, 0) + count
        self.tier_misses += other.tier_misses
        for tier, count in other.tier_evictions.items():
            self.tier_evictions[tier] = \
                self.tier_evictions.get(tier, 0) + count
        for tier, count in other.tier_promotions.items():
            self.tier_promotions[tier] = \
                self.tier_promotions.get(tier, 0) + count
        self.fetch_seconds_saved += other.fetch_seconds_saved
        self.chunk_hits += other.chunk_hits
        self.bytes_deduped += other.bytes_deduped
        self.fetch_bytes_foreground += other.fetch_bytes_foreground
        self.provisioned_gpu_seconds += other.provisioned_gpu_seconds
        self.busy_gpu_seconds += other.busy_gpu_seconds
        if other.slo_ttft > 0:
            self.slo_ttft = other.slo_ttft
        self.slo_violations += other.slo_violations
        self.cold_start_tax_seconds += other.cold_start_tax_seconds
        self.wasted_warm_seconds += other.wasted_warm_seconds
        for kind, count in other.autoscale_decisions.items():
            self.autoscale_decisions[kind] = \
                self.autoscale_decisions.get(kind, 0) + count

    def summary(self) -> Dict[str, float]:
        report = {f"ttft_{k}": v for k, v in summarize(self.ttfts).items()}
        report.update({
            "p90_ttft": self.p90_ttft,
            "arrived": float(self.arrived),
            "completed": float(self.completed),
            "throughput": self.throughput,
            "cold_starts": float(self.cold_starts),
            "degraded_cold_starts": float(self.degraded_cold_starts),
            "store_cache_hits": float(self.store_cache_hits),
            "store_cache_misses": float(self.store_cache_misses),
            "cancelled_cold_starts": float(self.cancelled_cold_starts),
            "background_contended_steps":
                float(self.background_contended_steps),
            "background_contention_seconds":
                self.background_contention_seconds,
        })
        report["tier_misses"] = float(self.tier_misses)
        report["fetch_seconds_saved"] = self.fetch_seconds_saved
        report["cold_start_tax_seconds"] = self.cold_start_tax_seconds
        report["wasted_warm_seconds"] = self.wasted_warm_seconds
        # SLO keys appear only when a TTFT budget was configured, and
        # autoscale decision counters only when the policy acted, so
        # default keep-alive runs keep their summaries change-free.
        if self.slo_ttft > 0:
            report["slo_ttft"] = self.slo_ttft
            report["slo_violations"] = float(self.slo_violations)
            report["slo_attainment"] = self.slo_attainment
        for kind in sorted(self.autoscale_decisions):
            report[f"autoscale[{kind}]"] = \
                float(self.autoscale_decisions[kind])
        # Chunk-fetch counters appear only when a chunk stream ran, so
        # blob-granular runs keep their golden summaries byte-identical.
        if self.chunk_hits or self.bytes_deduped \
                or self.fetch_bytes_foreground:
            report["chunk_hits"] = float(self.chunk_hits)
            report["bytes_deduped"] = self.bytes_deduped
            report["fetch_bytes_foreground"] = self.fetch_bytes_foreground
        for tier in sorted(self.tier_hits):
            report[f"tier_hits[{tier}]"] = float(self.tier_hits[tier])
        for tier in sorted(self.tier_evictions):
            report[f"tier_evictions[{tier}]"] = \
                float(self.tier_evictions[tier])
        for tier in sorted(self.tier_promotions):
            report[f"tier_promotions[{tier}]"] = \
                float(self.tier_promotions[tier])
        for name in sorted(self.cold_stage_seconds):
            report[f"cold_stage[{name}]"] = self.cold_stage_seconds[name]
        return report
