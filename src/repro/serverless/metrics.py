"""Metrics collected by the cluster simulator (Figures 10/11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.utils.stats import mean, percentile, summarize


@dataclass
class SimulationMetrics:
    """TTFT tail, throughput, and cold-start accounting for one run."""

    horizon: float = 0.0
    ttfts: List[float] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    completed: int = 0
    arrived: int = 0
    cold_starts: int = 0
    # Cold starts that finished on a lower degradation-ladder rung (the
    # instance still serves, but its loading phase lost the full restore).
    degraded_cold_starts: int = 0
    degraded_rungs: Dict[str, int] = field(default_factory=dict)
    # Artifact-store LRU outcomes for the cold starts that fetched through
    # a store (SimulationConfig.artifact_store): a hit skips deserialization
    # and static lint entirely (see repro.core.store.ArtifactStore).
    store_cache_hits: int = 0
    store_cache_misses: int = 0
    provisioned_gpu_seconds: float = 0.0   # ready time across instances
    busy_gpu_seconds: float = 0.0          # time instances spent serving

    def record_ttft(self, ttft: float) -> None:
        self.ttfts.append(ttft)

    def record_degraded_cold_start(self, rung: str) -> None:
        self.degraded_cold_starts += 1
        self.degraded_rungs[rung] = self.degraded_rungs.get(rung, 0) + 1

    def record_store_cache(self, hit: bool) -> None:
        """Count one artifact-store fetch as an LRU hit or miss."""
        if hit:
            self.store_cache_hits += 1
        else:
            self.store_cache_misses += 1

    def record_completion(self, latency: float,
                          in_horizon: bool = True) -> None:
        self.latencies.append(latency)
        if in_horizon:
            self.completed += 1

    @property
    def p99_ttft(self) -> float:
        return percentile(self.ttfts, 99.0)

    @property
    def p50_ttft(self) -> float:
        return percentile(self.ttfts, 50.0)

    @property
    def mean_ttft(self) -> float:
        return mean(self.ttfts)

    @property
    def gpu_utilization(self) -> float:
        """Busy fraction of provisioned GPU time (hot spares drag it down)."""
        if self.provisioned_gpu_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_gpu_seconds / self.provisioned_gpu_seconds)

    @property
    def wasted_gpu_seconds(self) -> float:
        return max(0.0, self.provisioned_gpu_seconds - self.busy_gpu_seconds)

    @property
    def throughput(self) -> float:
        """Achieved serving throughput: completions per simulated second."""
        if self.horizon <= 0:
            return 0.0
        return self.completed / self.horizon

    def summary(self) -> Dict[str, float]:
        report = {f"ttft_{k}": v for k, v in summarize(self.ttfts).items()}
        report.update({
            "arrived": float(self.arrived),
            "completed": float(self.completed),
            "throughput": self.throughput,
            "cold_starts": float(self.cold_starts),
            "degraded_cold_starts": float(self.degraded_cold_starts),
            "store_cache_hits": float(self.store_cache_hits),
            "store_cache_misses": float(self.store_cache_misses),
        })
        return report
