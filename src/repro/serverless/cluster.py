"""Multi-model serverless clusters (the §2.4 model-diversity argument).

A serverless platform hosts *many* model types behind one GPU pool; an
instance serves exactly one model, so every model needs its own warm
capacity.  That is precisely why the paper calls hot spares unaffordable:
"the diversity of model types makes it unaffordable to over-provision for
every type of model" (§2.4).  This module simulates such a shared pool —
requests tagged with a model, per-model instance sets, one global GPU
bound — and per-model plus aggregate metrics.

The event loop is the :mod:`repro.sim` kernel via
:class:`repro.serverless.pool.PoolSimulatorBase` (shared with the
single-model :class:`repro.serverless.simulator.ClusterSimulator`).  A
deployment may carry a :class:`ColdStartProfile`: its cold starts then
execute the scheduled LoadPlan stage by stage, and — the preemption the
shared pool unlocks — when the pool is exhausted and a model has *zero*
capacity, another model's in-flight cold start whose queue its siblings
can absorb is cancelled at the next stage boundary to free the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidValueError, SchedulingError
from repro.serverless.autoscale import AutoscalePolicy, make_autoscaler
from repro.serverless.costs import ServingCostModel
from repro.serverless.instance import (
    ColdStartProfile,
    Instance,
    InstanceConfig,
)
from repro.serverless.metrics import SimulationMetrics
from repro.serverless.placement import TierSpec, make_policy
from repro.serverless.pool import ARRIVAL, PoolSimulatorBase
from repro.serverless.workload import Request, ShareGPTWorkload


@dataclass(frozen=True)
class ModelDeployment:
    """One hosted model's serving profile on the shared cluster."""

    name: str
    costs: ServingCostModel
    cold_start_latency: float
    use_cuda_graphs: bool = True
    deferred_capture: bool = False
    hot_spares: int = 0
    max_running: int = 14
    gpus_per_instance: int = 1   # tensor-parallel deployments span GPUs
    #: Scheduled-LoadPlan cold-start profile; when present, cold starts
    #: are stage-granular (ready at ``Timeline.ready``, cancellable at
    #: stage boundaries) and ``cold_start_latency`` is superseded by
    #: ``profile.serving_ready_time``.
    profile: Optional[ColdStartProfile] = None
    #: Fractional serving slowdown under a pipelined restore's background
    #: tail (stage-granular cold starts only).
    background_tail_penalty: float = 0.15
    #: This model's artifact footprint in tier-capacity units — what its
    #: residency costs in a node's cache hierarchy.
    artifact_size: float = 1.0


@dataclass(frozen=True)
class TaggedRequest:
    """A request bound for one deployment."""

    model: str
    request: Request


def tag_workloads(workloads: Dict[str, ShareGPTWorkload]
                  ) -> List[TaggedRequest]:
    """Merge per-model workloads into one time-ordered arrival stream."""
    tagged: List[TaggedRequest] = []
    for model, workload in workloads.items():
        tagged.extend(TaggedRequest(model, request)
                      for request in workload.generate())
    tagged.sort(key=lambda t: t.request.arrival_time)
    return tagged


class MultiModelCluster(PoolSimulatorBase):
    """One GPU pool shared by several model deployments."""

    def __init__(self, deployments: List[ModelDeployment], num_gpus: int,
                 keep_alive: float = 20.0, placement: object = "locality",
                 tiers: Optional[Tuple[TierSpec, ...]] = None,
                 autoscale: object = "keep-alive", slo_ttft: float = 0.0):
        if num_gpus <= 0:
            raise InvalidValueError("num_gpus must be positive")
        names = [d.name for d in deployments]
        if len(set(names)) != len(names):
            raise InvalidValueError(f"duplicate deployment names in {names}")
        total_spares = sum(d.hot_spares * d.gpus_per_instance
                           for d in deployments)
        if total_spares > num_gpus:
            raise InvalidValueError(
                f"hot spares across deployments ({total_spares} GPUs) exceed "
                f"the GPU pool ({num_gpus}) — the §2.4 affordability wall")
        if any(d.gpus_per_instance > num_gpus for d in deployments):
            raise InvalidValueError(
                "a deployment's gpus_per_instance exceeds the pool size")
        self.deployments = {d.name: d for d in deployments}
        self.num_gpus = num_gpus
        self.keep_alive = keep_alive
        self._placement_spec = placement
        self._tiers = tiers
        self._autoscale_spec = autoscale
        self.slo_ttft = slo_ttft
        self.placement_policy = make_policy(placement, num_gpus, tiers)
        # One policy per deployment: idle-window prediction (histograms,
        # cold-cost windows) is a per-model signal on a shared pool.
        self.autoscalers: Dict[str, AutoscalePolicy] = \
            self._build_autoscalers()
        self.instances: Dict[str, List[Instance]] = {name: []
                                                     for name in names}
        self.metrics: Dict[str, SimulationMetrics] = {}
        self._begin_run(horizon=0.0)

    def _build_autoscalers(self) -> Dict[str, AutoscalePolicy]:
        """Fresh per-deployment autoscale policies for one run."""
        return {name: make_autoscaler(self._autoscale_spec,
                                      keep_alive=self.keep_alive,
                                      slo_ttft=self.slo_ttft)
                for name in self.deployments}

    # -- capacity ------------------------------------------------------------

    def _live_instances(self, model: Optional[str] = None) -> List[Instance]:
        """Non-retired instances, pool-wide or for one ``model``."""
        pools = [self.instances[model]] if model else self.instances.values()
        return [inst for pool in pools for inst in pool if not inst.retired]

    @property
    def gpus_in_use(self) -> int:
        """GPUs occupied by live instances (TP deployments span several)."""
        return sum(self.deployments[inst.model_name].gpus_per_instance
                   for inst in self._live_instances())

    # -- pool hooks ----------------------------------------------------------

    def _metrics_for(self, instance: Instance) -> SimulationMetrics:
        """Each instance reports into its deployment's metrics."""
        return self.metrics[instance.model_name]

    def _pool_size(self) -> int:
        return self.num_gpus

    def _autoscaler_for(self, model: Optional[str]) -> \
            Optional[AutoscalePolicy]:
        """The deployment-scoped policy governing ``model``."""
        if model is None:
            return None
        return self.autoscalers.get(model)

    def _model_of(self, instance: Instance) -> Optional[str]:
        """Instances scope to their deployment's policy."""
        return instance.model_name

    def _payload_model(self, payload: TaggedRequest) -> Optional[str]:
        """Arrivals are tagged with their deployment."""
        return payload.model

    def _scope_live(self, model: Optional[str]) -> List[Instance]:
        """Policies see only their own deployment's live instances."""
        return self._live_instances(model)

    def _can_launch(self, model: Optional[str]) -> bool:
        """Whether the shared pool can host one more of ``model``."""
        if model is None:
            return False
        deployment = self.deployments[model]
        return (self.gpus_in_use + deployment.gpus_per_instance
                <= self.num_gpus)

    def _launch_cold_for(self, model: Optional[str],
                         now: float) -> Optional[Instance]:
        """Proactive scale-up launch for one deployment."""
        if model is None:
            return None
        return self._launch(model, now)

    # -- lifecycle ---------------------------------------------------------------

    def _launch(self, model: str, now: float, cold: bool = True,
                hot_spare: bool = False) -> Instance:
        """Provision one instance of ``model``'s deployment.

        Cold launches go through the placement layer: the policy picks
        the node(s) the instance occupies (TP deployments span several;
        the artifact lives on the first), and the resolved tier rewrites
        the profile's ``fetch_artifact`` stage before the kernel
        schedules the cold start.
        """
        deployment = self.deployments[model]
        profile = deployment.profile if cold else None
        resolution = None
        if cold:
            base_fetch = profile.fetch_duration \
                if profile is not None else 0.0
            node_ids, resolution = self._resolve_placement(
                ("model", model), deployment.artifact_size, base_fetch,
                needed=deployment.gpus_per_instance)
            profile = self._tier_resolved_profile(profile, resolution)
        else:
            node_ids, _ = self._resolve_placement(
                None, 0.0, 0.0, needed=deployment.gpus_per_instance,
                cold=False)
        if not cold:
            latency = 0.0
        elif profile is not None:
            latency = profile.serving_ready_time
        else:
            latency = deployment.cold_start_latency
        instance = Instance(
            costs=deployment.costs,
            config=InstanceConfig(
                max_running=deployment.max_running,
                use_cuda_graphs=deployment.use_cuda_graphs,
                deferred_capture=deployment.deferred_capture,
                background_tail_penalty=deployment.background_tail_penalty),
            launched_at=now,
            cold_start_latency=latency,
            profile=profile,
            model_name=model)
        instance.hot_spare = hot_spare
        instance.node_ids = node_ids
        self.instances[model].append(instance)
        if cold:
            self.metrics[model].cold_starts += 1
            if profile is not None and profile.degraded_rung:
                self.metrics[model].record_degraded_cold_start(
                    profile.degraded_rung)
            self._record_placement(instance, resolution)
        self._launch_events(instance)
        return instance

    def _route(self, tagged: TaggedRequest, now: float) -> None:
        """Route one tagged arrival within its deployment's capacity."""
        model = tagged.model
        deployment = self.deployments.get(model)
        if deployment is None:
            raise SchedulingError(f"no deployment for model {model!r}")
        live = self._live_instances(model)
        candidates = [inst for inst in live
                      if inst.load < deployment.max_running]
        if candidates:
            target = min(candidates, key=lambda inst: (inst.load,
                                                       inst.ready_at))
        elif (self.gpus_in_use + deployment.gpus_per_instance
                <= self.num_gpus):
            target = self._launch(model, now)
        elif live:
            target = min(live, key=lambda inst: inst.load)
        else:
            # Pool exhausted by *other* models and this one has no instance:
            # free a GPU (an idle instance, else a preemptable cold start).
            target = self._launch_when_possible(model, now)
        target.enqueue(tagged.request)
        self._maybe_step(target, now)

    def _launch_when_possible(self, model: str, now: float) -> Instance:
        """Free one GPU for a zero-capacity model, then launch on it.

        Preference order: retire an idle ready instance of another model
        (the pre-kernel behaviour); else cancel another model's in-flight
        stage-granular cold start at its next stage boundary, provided its
        queued requests fit on its sibling instances — the
        ServerlessLLM-style "abort a startup that another replica makes
        redundant" decision, now possible *mid-cold-start* because stages
        are events.
        """
        idle = [instance for pool in self.instances.values()
                for instance in pool
                if (not instance.retired and not instance.has_work
                    and not instance.stepping
                    and not instance.hot_spare)]
        if idle:
            # Which idle instance to retire is a *placement* decision:
            # evicting the node that holds this model's artifact in a warm
            # tier forfeits the residency the launch could have reused.
            # The flat policy (and a pool without one) picks index 0 —
            # the legacy first-found scan.
            pick = 0
            if self.placement_policy is not None:
                nodes = [inst.node_ids[0] if inst.node_ids else None
                         for inst in idle]
                pick = self.placement_policy.choose_victim(
                    nodes, ("model", model))
                if not 0 <= pick < len(idle):
                    pick = 0
            victim = idle[pick]
            victim.retired = True
            victim.retired_at = now
            return self._launch(model, now)
        preempted = self._preempt_cold_start(model, now)
        if preempted is not None:
            return preempted
        raise SchedulingError(
            f"GPU pool exhausted and no instance of {model!r} exists; "
            f"increase num_gpus or lower hot_spares")

    def _preempt_cold_start(self, model: str, now: float
                            ) -> Optional[Instance]:
        """Cancel a preemptable cold start and launch ``model`` on its GPU.

        A victim must still be cold-starting with stage boundaries ahead,
        must not be a hot spare, and its model must keep at least one
        other live instance to re-route the victim's queued requests onto
        (they queue deeper there — a tail hit for the victim's model, but
        the zero-capacity model gets served at all).  Among eligible
        victims the one with the most cold-start work remaining (latest
        ready instant) is cancelled: least sunk cost, earliest boundary.
        """
        best: Optional[Instance] = None
        for victim_model, pool in self.instances.items():
            if victim_model == model:
                continue
            for victim in pool:
                if (victim.retired or victim.hot_spare or victim.running
                        or victim.stepping or not victim.cold_stages
                        or now >= victim.ready_at):
                    continue
                siblings = [inst
                            for inst in self._live_instances(victim_model)
                            if inst is not victim]
                if victim.waiting and not siblings:
                    continue
                if best is None or victim.ready_at > best.ready_at:
                    best = victim
        if best is None:
            return None
        freed = self.deployments[best.model_name].gpus_per_instance
        needed = self.deployments[model].gpus_per_instance
        if self.gpus_in_use - freed + needed > self.num_gpus:
            return None   # a TP deployment needs more GPUs than one victim
        victim_model = best.model_name
        rerouted = list(best.waiting)
        best.waiting.clear()
        boundary = self._cancel_cold_start(best, now,
                                           reason="pool_exhausted")
        if boundary is None:
            best.waiting.extend(rerouted)
            return None
        # Claim the victim's GPU *before* re-routing its queue: the new
        # instance's cold start begins at the boundary where the GPU
        # frees, and the re-routed requests must queue on the victim's
        # siblings rather than re-grab the slot being handed over.
        replacement = self._launch(model, boundary[0])
        for request in rerouted:
            self._route(TaggedRequest(victim_model, request), now)
        return replacement

    # -- main loop -----------------------------------------------------------------

    def run(self, tagged_requests: List[TaggedRequest],
            horizon: float) -> Dict[str, SimulationMetrics]:
        """Simulate the merged arrival stream; returns per-model metrics."""
        self.metrics = {name: SimulationMetrics(horizon=horizon,
                                                slo_ttft=self.slo_ttft)
                        for name in self.deployments}
        self.instances = {name: [] for name in self.deployments}
        # Fresh cache state per run: residency must not leak across runs,
        # and neither must the autoscalers' observed histograms.
        self.placement_policy = make_policy(self._placement_spec,
                                            self.num_gpus, self._tiers)
        self.autoscalers = self._build_autoscalers()
        self._begin_run(horizon)
        for tagged in tagged_requests:
            self.metrics[tagged.model].arrived += 1
            self.loop.schedule(tagged.request.arrival_time, ARRIVAL, tagged)
        for name, deployment in self.deployments.items():
            for _ in range(deployment.hot_spares):
                self._launch(name, 0.0, cold=False, hot_spare=True)

        self.loop.run()

        end_of_run = max(horizon, self.loop.now)
        for model, pool in self.instances.items():
            for instance in pool:
                until = getattr(instance, "retired_at", end_of_run)
                self.metrics[model].record_instance_lifetime(
                    max(0.0, until - instance.ready_at),
                    instance.busy_time)
        for model, policy in self.autoscalers.items():
            self.metrics[model].record_autoscale_decisions(policy.decisions)
        return self.metrics

    # -- aggregate view --------------------------------------------------------------

    def aggregate(self) -> SimulationMetrics:
        """Fold every deployment's metrics into one cluster-wide view."""
        total = SimulationMetrics(
            horizon=max((m.horizon for m in self.metrics.values()),
                        default=0.0))
        for metrics in self.metrics.values():
            total.merge(metrics)
        return total
