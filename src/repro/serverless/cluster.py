"""Multi-model serverless clusters (the §2.4 model-diversity argument).

A serverless platform hosts *many* model types behind one GPU pool; an
instance serves exactly one model, so every model needs its own warm
capacity.  That is precisely why the paper calls hot spares unaffordable:
"the diversity of model types makes it unaffordable to over-provision for
every type of model" (§2.4).  This module simulates such a shared pool —
requests tagged with a model, per-model instance sets, one global GPU
bound — and per-model plus aggregate metrics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidValueError, SchedulingError
from repro.serverless.costs import ServingCostModel
from repro.serverless.instance import Instance, InstanceConfig
from repro.serverless.metrics import SimulationMetrics
from repro.serverless.workload import Request, ShareGPTWorkload

_ARRIVAL = 0
_INSTANCE_READY = 1
_STEP_DONE = 2


@dataclass(frozen=True)
class ModelDeployment:
    """One hosted model's serving profile on the shared cluster."""

    name: str
    costs: ServingCostModel
    cold_start_latency: float
    use_cuda_graphs: bool = True
    deferred_capture: bool = False
    hot_spares: int = 0
    max_running: int = 14
    gpus_per_instance: int = 1   # tensor-parallel deployments span GPUs


@dataclass(frozen=True)
class TaggedRequest:
    """A request bound for one deployment."""

    model: str
    request: Request


def tag_workloads(workloads: Dict[str, ShareGPTWorkload]
                  ) -> List[TaggedRequest]:
    """Merge per-model workloads into one time-ordered arrival stream."""
    tagged: List[TaggedRequest] = []
    for model, workload in workloads.items():
        tagged.extend(TaggedRequest(model, request)
                      for request in workload.generate())
    tagged.sort(key=lambda t: t.request.arrival_time)
    return tagged


class MultiModelCluster:
    """One GPU pool shared by several model deployments."""

    def __init__(self, deployments: List[ModelDeployment], num_gpus: int,
                 keep_alive: float = 20.0):
        if num_gpus <= 0:
            raise InvalidValueError("num_gpus must be positive")
        names = [d.name for d in deployments]
        if len(set(names)) != len(names):
            raise InvalidValueError(f"duplicate deployment names in {names}")
        total_spares = sum(d.hot_spares * d.gpus_per_instance
                           for d in deployments)
        if total_spares > num_gpus:
            raise InvalidValueError(
                f"hot spares across deployments ({total_spares} GPUs) exceed "
                f"the GPU pool ({num_gpus}) — the §2.4 affordability wall")
        if any(d.gpus_per_instance > num_gpus for d in deployments):
            raise InvalidValueError(
                "a deployment's gpus_per_instance exceeds the pool size")
        self.deployments = {d.name: d for d in deployments}
        self.num_gpus = num_gpus
        self.keep_alive = keep_alive
        self.instances: Dict[str, List[Instance]] = {name: []
                                                     for name in names}
        self.metrics: Dict[str, SimulationMetrics] = {}
        self._events: List[Tuple[float, int, int, object]] = []
        self._seq = itertools.count()
        self._now = 0.0

    # -- capacity ------------------------------------------------------------

    def _live_instances(self, model: Optional[str] = None) -> List[Instance]:
        pools = [self.instances[model]] if model else self.instances.values()
        return [inst for pool in pools for inst in pool if not inst.retired]

    @property
    def gpus_in_use(self) -> int:
        return sum(self.deployments[inst.model_name].gpus_per_instance
                   for inst in self._live_instances())

    # -- lifecycle ---------------------------------------------------------------

    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time, kind, next(self._seq), payload))

    def _launch(self, model: str, now: float, cold: bool = True,
                hot_spare: bool = False) -> Instance:
        deployment = self.deployments[model]
        instance = Instance(
            costs=deployment.costs,
            config=InstanceConfig(
                max_running=deployment.max_running,
                use_cuda_graphs=deployment.use_cuda_graphs,
                deferred_capture=deployment.deferred_capture),
            launched_at=now,
            cold_start_latency=deployment.cold_start_latency if cold else 0.0)
        instance.hot_spare = hot_spare
        instance.model_name = model
        self.instances[model].append(instance)
        if cold:
            self.metrics[model].cold_starts += 1
        self._push(instance.ready_at, _INSTANCE_READY, instance)
        return instance

    def _route(self, tagged: TaggedRequest, now: float) -> None:
        model = tagged.model
        deployment = self.deployments.get(model)
        if deployment is None:
            raise SchedulingError(f"no deployment for model {model!r}")
        live = self._live_instances(model)
        candidates = [inst for inst in live
                      if inst.load < deployment.max_running]
        if candidates:
            target = min(candidates, key=lambda inst: (inst.load,
                                                       inst.ready_at))
        elif (self.gpus_in_use + deployment.gpus_per_instance
                <= self.num_gpus):
            target = self._launch(model, now)
        elif live:
            target = min(live, key=lambda inst: inst.load)
        else:
            # Pool exhausted by *other* models and this one has no instance:
            # queue on the model's next launch by stealing the globally
            # least-loaded retired slot is out of scope; wait for capacity.
            target = self._launch_when_possible(model, now)
        target.enqueue(tagged.request)
        self._maybe_step(target, now)

    def _launch_when_possible(self, model: str, now: float) -> Instance:
        # Retire the most idle instance of another model if one is idle.
        for pool in self.instances.values():
            for instance in pool:
                if (not instance.retired and not instance.has_work
                        and not instance.stepping
                        and not getattr(instance, "hot_spare", False)):
                    instance.retired = True
                    instance.retired_at = now
                    return self._launch(model, now)
        raise SchedulingError(
            f"GPU pool exhausted and no instance of {model!r} exists; "
            f"increase num_gpus or lower hot_spares")

    def _maybe_step(self, instance: Instance, now: float) -> None:
        if (instance.stepping or instance.retired
                or now < instance.ready_at or not instance.has_work):
            return
        instance.stepping = True
        result = instance.run_step(now)
        self._push(now + result.duration, _STEP_DONE, (instance, result))

    def _maybe_retire(self, instance: Instance, now: float) -> None:
        if instance.has_work or instance.stepping or instance.retired:
            return
        if getattr(instance, "hot_spare", False):
            return
        if now - instance.last_busy_at >= self.keep_alive:
            instance.retired = True
            instance.retired_at = now

    # -- main loop -----------------------------------------------------------------

    def run(self, tagged_requests: List[TaggedRequest],
            horizon: float) -> Dict[str, SimulationMetrics]:
        self.metrics = {name: SimulationMetrics(horizon=horizon)
                        for name in self.deployments}
        for tagged in tagged_requests:
            self.metrics[tagged.model].arrived += 1
            self._push(tagged.request.arrival_time, _ARRIVAL, tagged)
        for name, deployment in self.deployments.items():
            for _ in range(deployment.hot_spares):
                self._launch(name, 0.0, cold=False, hot_spare=True)

        while self._events:
            time, kind, _seq, payload = heapq.heappop(self._events)
            self._now = time
            if kind == _ARRIVAL:
                self._route(payload, time)
            elif kind == _INSTANCE_READY:
                self._maybe_step(payload, time)
            elif kind == _STEP_DONE:
                instance, result = payload
                instance.stepping = False
                model_metrics = self.metrics[instance.model_name]
                for _request, ttft in result.ttfts:
                    model_metrics.record_ttft(ttft)
                for completion in result.completed:
                    model_metrics.record_completion(
                        completion.latency,
                        in_horizon=completion.completion_time <= horizon)
                self._maybe_step(instance, time)
                self._maybe_retire(instance, time)

        end_of_run = max(horizon, self._now)
        for model, pool in self.instances.items():
            for instance in pool:
                until = getattr(instance, "retired_at", end_of_run)
                self.metrics[model].provisioned_gpu_seconds += max(
                    0.0, until - instance.ready_at)
                self.metrics[model].busy_gpu_seconds += instance.busy_time
        return self.metrics

    # -- aggregate view --------------------------------------------------------------

    def aggregate(self) -> SimulationMetrics:
        total = SimulationMetrics(
            horizon=max((m.horizon for m in self.metrics.values()),
                        default=0.0))
        for metrics in self.metrics.values():
            total.ttfts.extend(metrics.ttfts)
            total.latencies.extend(metrics.latencies)
            total.completed += metrics.completed
            total.arrived += metrics.arrived
            total.cold_starts += metrics.cold_starts
            total.provisioned_gpu_seconds += metrics.provisioned_gpu_seconds
            total.busy_gpu_seconds += metrics.busy_gpu_seconds
        return total
