"""Pluggable autoscaling policies for the cluster simulators.

The simulators used to hard-code one scale-down rule: a fixed
``keep_alive`` idle window evaluated only when a serving step completed
(``serverless/pool.py``).  This module turns that inline branch into a
policy layer — :class:`AutoscalePolicy` exposes the four decision points
the pool consults (``on_arrival``, ``on_stage_boundary``,
``on_idle_tick``, ``target_instances`` plus the ``should_retire`` /
``idle_check_delay`` retirement pair), and four concrete policies cover
the design space the serverless literature argues about:

- :class:`KeepAlivePolicy` — the fixed idle window, bit-identical to the
  pre-policy simulators (the 8 golden snapshots pin it);
- :class:`HistogramPolicy` — Serverless-in-the-Wild-style idle-window
  prediction from the observed inter-arrival histogram;
- :class:`ColdCostAwarePolicy` — keeps an instance warm only while the
  expected cold-start cost (from its tier-resolved
  :class:`~repro.serverless.instance.ColdStartProfile`) exceeds the
  expected idle cost, so Medusa-fast models scale down sooner;
- :class:`TargetQueueDelayPolicy` — proactive scale-up when the
  predicted queue delay exceeds a TTFT SLO budget.

Policies are duck-typed against the pool (they see the simulator via the
hooks' ``pool`` argument) and must stay deterministic: every decision is
a pure function of observed simulation state, never of wall-clock time
or unseeded randomness.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.errors import InvalidValueError

#: Slack for "the idle window has elapsed" checks on re-derived tick
#: times (the tick instant is computed as ``now + (window - idle)``, so
#: re-checking at the tick may be a few ulps short of the window).
_TICK_TOL = 1e-9


class AutoscalePolicy:
    """Decision interface the pool consults for scaling up and down.

    The pool calls the hooks; a policy answers from its own observed
    state.  All hooks have safe defaults (observe nothing, never retire,
    no proactive target), so a subclass only overrides the decisions it
    cares about.  ``decisions`` counts every choice the policy made, for
    the per-run metrics and the Chrome trace.
    """

    #: Registry/reporting name of the policy.
    name = "autoscale"

    def __init__(self) -> None:
        self.decisions: Dict[str, int] = {}

    def _decide(self, kind: str) -> None:
        """Count one policy decision of ``kind``."""
        self.decisions[kind] = self.decisions.get(kind, 0) + 1

    # -- observation hooks ---------------------------------------------------

    def on_arrival(self, pool, model: Optional[str], now: float) -> None:
        """One request arrived for ``model`` (None in single-model pools)."""

    def on_stage_boundary(self, pool, instance, stage, now: float) -> None:
        """One cold-start stage of ``instance`` completed at ``now``."""

    def on_idle_tick(self, pool, instance, now: float) -> None:
        """A scheduled idle re-check fired for a still-idle ``instance``."""

    # -- scale-down ----------------------------------------------------------

    def should_retire(self, pool, instance, now: float) -> bool:
        """Whether the idle ``instance`` should retire at ``now``."""
        return False

    def idle_check_delay(self, pool, instance, now: float
                         ) -> Optional[float]:
        """Seconds until the pool should re-check an idle instance.

        ``None`` disables idle ticks entirely: retirement is then only
        evaluated when a serving step completes — the legacy behaviour
        :class:`KeepAlivePolicy` preserves bit-exactly.
        """
        return None

    # -- scale-up ------------------------------------------------------------

    def target_instances(self, pool, model: Optional[str],
                         now: float) -> int:
        """Desired live-instance count for ``model``; 0 = no opinion.

        Consulted after each arrival is routed; the pool launches cold
        instances (capacity permitting) until the scope reaches the
        target.
        """
        return 0


class KeepAlivePolicy(AutoscalePolicy):
    """The fixed idle window the pre-policy simulators hard-coded.

    ``should_retire`` is the exact legacy comparison
    (``now - last_busy_at >= keep_alive``) and ``idle_check_delay``
    stays ``None``, so a pool running this policy schedules not a single
    extra event and reproduces the 8 golden snapshots bit for bit.
    """

    name = "keep-alive"

    def __init__(self, keep_alive: float = 20.0) -> None:
        super().__init__()
        if keep_alive < 0:
            raise InvalidValueError(
                f"keep_alive must be non-negative, got {keep_alive}")
        self.keep_alive = keep_alive

    def should_retire(self, pool, instance, now: float) -> bool:
        """The legacy predicate, unchanged to the last ulp."""
        return now - instance.last_busy_at >= self.keep_alive


class _WindowedRetirePolicy(AutoscalePolicy):
    """Shared scale-down mechanics for policies with a computed window.

    Subclasses implement :meth:`_window`; retirement fires once the
    instance has idled past it.  Unlike :class:`KeepAlivePolicy`, the
    window is actually *enforced*: the policy asks the pool for an idle
    tick at the window's expiry, so an instance retires on schedule even
    when no further serving step ever completes on it.
    """

    def _window(self, pool, instance, now: float) -> float:
        """Idle seconds after which ``instance`` should retire."""
        raise NotImplementedError

    def should_retire(self, pool, instance, now: float) -> bool:
        """True once the instance idled past its computed window."""
        idle = now - instance.last_busy_at
        return idle + _TICK_TOL >= self._window(pool, instance, now)

    def idle_check_delay(self, pool, instance, now: float
                         ) -> Optional[float]:
        """Re-check exactly when the current window would expire."""
        idle = now - instance.last_busy_at
        return max(0.0, self._window(pool, instance, now) - idle)


class HistogramPolicy(_WindowedRetirePolicy):
    """Idle-window prediction from the observed inter-arrival histogram.

    The Serverless-in-the-Wild insight: the right keep-alive for a
    function is a high quantile of its inter-arrival distribution — keep
    the instance warm just long enough to catch the next arrival with
    probability ``quantile``, then stop paying for it.  Arrivals feed a
    bucketed histogram per policy instance (one per model in the
    multi-model cluster); until ``warmup`` gaps are observed the policy
    falls back to the configured default window.
    """

    name = "histogram"

    def __init__(self, default_keep_alive: float = 20.0,
                 bucket: float = 1.0, max_window: float = 120.0,
                 min_window: float = 0.5, quantile: float = 0.95,
                 margin: float = 1.25, warmup: int = 8) -> None:
        super().__init__()
        if bucket <= 0:
            raise InvalidValueError(f"bucket must be positive, got {bucket}")
        if not 0.0 < quantile <= 1.0:
            raise InvalidValueError(
                f"quantile must be in (0, 1], got {quantile}")
        self.default_keep_alive = default_keep_alive
        self.bucket = bucket
        self.max_window = max_window
        self.min_window = min_window
        self.quantile = quantile
        self.margin = margin
        self.warmup = warmup
        self._last_arrival: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self._observed = 0

    def on_arrival(self, pool, model: Optional[str], now: float) -> None:
        """Record the gap since the previous arrival into the histogram."""
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            index = min(int(gap / self.bucket),
                        int(self.max_window / self.bucket))
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self._observed += 1
        self._last_arrival = now

    def predicted_window(self) -> float:
        """The idle window covering ``quantile`` of observed gaps."""
        if self._observed < self.warmup:
            return self.default_keep_alive
        target = self.quantile * self._observed
        seen = 0
        window = self.max_window
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                window = (index + 1) * self.bucket
                break
        window *= self.margin
        return min(self.max_window, max(self.min_window, window))

    def _window(self, pool, instance, now: float) -> float:
        return self.predicted_window()


class ColdCostAwarePolicy(_WindowedRetirePolicy):
    """Keep an instance warm only while re-warming would cost more.

    The idle window is the instance's *observed* cold-start cost — its
    ``ready_at - launched_at``, which already reflects the tier-resolved
    :class:`~repro.serverless.instance.ColdStartProfile` the placement
    layer rewrote at launch — scaled by ``cost_ratio`` (how many seconds
    of idle GPU one second of cold-start latency is worth).  A model
    Medusa restores in 0.3 s keeps a ~1 s window; a 10 s eager reload
    earns a long one: exactly the paper's economics, as a scale-down
    rule.
    """

    name = "cold-cost"

    def __init__(self, cost_ratio: float = 3.0, min_window: float = 0.25,
                 max_window: float = 60.0,
                 default_cold_cost: float = 3.0) -> None:
        super().__init__()
        if cost_ratio <= 0:
            raise InvalidValueError(
                f"cost_ratio must be positive, got {cost_ratio}")
        self.cost_ratio = cost_ratio
        self.min_window = min_window
        self.max_window = max_window
        self.default_cold_cost = default_cold_cost

    def cold_cost(self, instance) -> float:
        """Expected seconds to re-provision this instance from cold."""
        observed = instance.ready_at - instance.launched_at
        if observed > 0:
            return observed
        profile = getattr(instance, "profile", None)
        if profile is not None:
            return profile.serving_ready_time
        return self.default_cold_cost

    def _window(self, pool, instance, now: float) -> float:
        window = self.cold_cost(instance) * self.cost_ratio
        return min(self.max_window, max(self.min_window, window))


class TargetQueueDelayPolicy(_WindowedRetirePolicy):
    """Proactive scale-up when predicted queue delay breaches the SLO.

    On every arrival the policy predicts the queueing delay a request
    would see (queued work divided by ready capacity, plus the wait for
    the first cold start to finish when nothing is ready) and raises the
    instance target while the prediction exceeds ``slo_ttft``.  Scale
    -down is a plain enforced keep-alive window, so the extra capacity
    drains once the backlog does.
    """

    name = "queue-slo"

    def __init__(self, slo_ttft: float = 1.0,
                 service_estimate: float = 0.08,
                 keep_alive: float = 20.0) -> None:
        super().__init__()
        if slo_ttft <= 0:
            raise InvalidValueError(
                f"slo_ttft must be positive, got {slo_ttft}")
        if service_estimate <= 0:
            raise InvalidValueError(
                f"service_estimate must be positive, got {service_estimate}")
        self.slo_ttft = slo_ttft
        self.service_estimate = service_estimate
        self.keep_alive = keep_alive

    def predicted_delay(self, pool, model: Optional[str],
                        now: float) -> float:
        """Estimated queueing delay for the scope's next admission."""
        live = pool._scope_live(model)
        if not live:
            return 0.0
        ready = [inst for inst in live if now >= inst.ready_at]
        queued = sum(len(inst.waiting) for inst in live)
        delay = queued * self.service_estimate / max(1, len(ready))
        if not ready:
            delay += min(inst.ready_at for inst in live) - now
        return delay

    def target_instances(self, pool, model: Optional[str],
                         now: float) -> int:
        """One extra instance whenever the predicted delay breaches SLO."""
        live = pool._scope_live(model)
        if not live:
            return 0
        if self.predicted_delay(pool, model, now) > self.slo_ttft:
            self._decide("slo_breach_predicted")
            return len(live) + 1
        return 0

    def _window(self, pool, instance, now: float) -> float:
        return self.keep_alive


_AUTOSCALERS = {
    KeepAlivePolicy.name: KeepAlivePolicy,
    HistogramPolicy.name: HistogramPolicy,
    ColdCostAwarePolicy.name: ColdCostAwarePolicy,
    TargetQueueDelayPolicy.name: TargetQueueDelayPolicy,
}


def autoscaler_names() -> Tuple[str, ...]:
    """The registered autoscale-policy names, alphabetical."""
    return tuple(sorted(_AUTOSCALERS))


def make_autoscaler(spec, keep_alive: float = 20.0,
                    slo_ttft: float = 0.0) -> AutoscalePolicy:
    """Build a fresh autoscale policy for one simulation run.

    ``spec`` may be a registered name (``"keep-alive"``, ``"histogram"``,
    ``"cold-cost"``, ``"queue-slo"``), ``None`` (the keep-alive
    default), a zero-argument factory callable, or an already-built
    :class:`AutoscalePolicy` instance — reused as-is, so callers then
    own its observed state (the multi-model cluster shares it across
    deployments in that case).  ``keep_alive`` seeds the fixed/default
    windows and ``slo_ttft`` the queue-delay budget, mirroring the
    scenario configuration.
    """
    if spec is None:
        spec = KeepAlivePolicy.name
    if isinstance(spec, AutoscalePolicy):
        return spec
    if isinstance(spec, str):
        if spec not in _AUTOSCALERS:
            raise InvalidValueError(
                f"unknown autoscale policy {spec!r}; "
                f"registered: {', '.join(autoscaler_names())}")
        if spec == KeepAlivePolicy.name:
            return KeepAlivePolicy(keep_alive)
        if spec == HistogramPolicy.name:
            return HistogramPolicy(default_keep_alive=keep_alive)
        if spec == ColdCostAwarePolicy.name:
            return ColdCostAwarePolicy()
        return TargetQueueDelayPolicy(
            slo_ttft=slo_ttft if slo_ttft > 0 else 1.0,
            keep_alive=keep_alive)
    if callable(spec):
        return spec()
    raise InvalidValueError(
        f"autoscale must be a policy name, factory, or instance, "
        f"got {spec!r}")


# math is used by callers computing targets from predictions; keep the
# import honest for static checkers.
_ = math.ceil
