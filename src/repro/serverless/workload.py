"""Request workloads: Poisson arrivals with ShareGPT-like shapes.

The paper replays the ShareGPT dataset with Poisson arrivals (§7.5) and
reports its average prompt/output lengths as 161 and 338 tokens (§2.2).  The
dataset itself is not redistributable here, so we sample from lognormal
length distributions matched to those means — the only properties the
evaluation depends on.

Homogeneous Poisson is the *calm* case; autoscaling policies only
differentiate under bursty traffic.  :class:`RateSchedule` describes an
inhomogeneous arrival rate as a composition of constant-rate
:class:`RateSegment` primitives (overlapping segments add), and
:func:`make_schedule` provides the named shapes the benchmarks sweep:
``poisson``, ``burst``, ``diurnal``, ``spike_train``, ``ramp``.
Composition is tuple concatenation, so ``(a + b) + c`` and ``a + (b +
c)`` are *identical* schedules — same segment order, same float
summation order, same generated trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import InvalidValueError
from repro.utils.rng import SeedSequence

#: ShareGPT average lengths reported by the paper (§2.2).
SHAREGPT_MEAN_PROMPT_TOKENS = 161
SHAREGPT_MEAN_OUTPUT_TOKENS = 338


@dataclass(frozen=True)
class RateSegment:
    """A constant arrival rate over one half-open interval ``[start, end)``."""

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        """Validate the interval and rate."""
        if self.end <= self.start:
            raise InvalidValueError(
                f"segment end must exceed start, got [{self.start}, "
                f"{self.end})")
        if self.rate < 0:
            raise InvalidValueError(
                f"segment rate must be non-negative, got {self.rate}")


@dataclass(frozen=True)
class RateSchedule:
    """A piecewise-constant inhomogeneous arrival-rate function.

    The instantaneous rate at time ``t`` is the sum of every segment
    covering ``t`` — segments may overlap, so a bursty shape composes a
    base rate with spike segments instead of re-deriving the union.
    ``a + b`` concatenates segment tuples, which makes composition
    exactly associative (the generated arrival trace is a deterministic
    function of the segment tuple and the RNG stream).
    """

    segments: Tuple[RateSegment, ...]

    def __post_init__(self) -> None:
        """A schedule must carry at least one segment."""
        if not self.segments:
            raise InvalidValueError("a RateSchedule needs >= 1 segment")

    @property
    def duration(self) -> float:
        """The last instant any segment is active."""
        return max(segment.end for segment in self.segments)

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at time ``t``."""
        return sum(segment.rate for segment in self.segments
                   if segment.start <= t < segment.end)

    def integral(self, t0: float, t1: float) -> float:
        """Expected arrivals in ``[t0, t1)`` (the cumulative hazard)."""
        total = 0.0
        for segment in self.segments:
            overlap = min(t1, segment.end) - max(t0, segment.start)
            if overlap > 0:
                total += segment.rate * overlap
        return total

    def shift(self, dt: float) -> "RateSchedule":
        """This schedule translated ``dt`` seconds later (earlier if < 0)."""
        return RateSchedule(tuple(
            RateSegment(segment.start + dt, segment.end + dt, segment.rate)
            for segment in self.segments))

    def compose(self, other: "RateSchedule") -> "RateSchedule":
        """The superposed schedule (rates add; segments concatenate)."""
        return RateSchedule(self.segments + other.segments)

    def __add__(self, other: "RateSchedule") -> "RateSchedule":
        """``+`` is :meth:`compose`."""
        return self.compose(other)

    def arrival_times(self, rng, horizon: Optional[float] = None
                      ) -> List[float]:
        """Sample one inhomogeneous-Poisson arrival trace.

        Exact inversion sampling: unit-rate exponential targets are
        accumulated and inverted through the piecewise-linear cumulative
        hazard, interval by interval between segment breakpoints (zero
        -rate plateaus are skipped in O(1)).  Deterministic given
        ``rng``; times are strictly sorted within ``[0, horizon)``.
        """
        horizon = self.duration if horizon is None else horizon
        breakpoints = sorted(
            {0.0, horizon}
            | {s.start for s in self.segments if 0.0 < s.start < horizon}
            | {s.end for s in self.segments if 0.0 < s.end < horizon})
        times: List[float] = []
        hazard = 0.0
        target = rng.exponential(1.0)
        for left, right in zip(breakpoints, breakpoints[1:]):
            rate = self.rate_at((left + right) / 2.0)
            if rate <= 0.0:
                continue
            t = left
            while True:
                dt = (target - hazard) / rate
                if t + dt >= right:
                    hazard += rate * (right - t)
                    break
                t += dt
                hazard = target
                times.append(t)
                target += rng.exponential(1.0)
        return times


def _burst_schedule(rps: float, duration: float) -> RateSchedule:
    """On/off bursts: 10 s at 4x the nominal rate every 40 s."""
    period, on, factor = 40.0, 10.0, 4.0
    segments = []
    start = 0.0
    while start < duration:
        segments.append(RateSegment(start, min(start + on, duration),
                                    factor * rps))
        start += period
    return RateSchedule(tuple(segments))


def _diurnal_schedule(rps: float, duration: float) -> RateSchedule:
    """A sinusoidal day compressed into ``duration``: 24 stepped slots."""
    slots = 24
    width = duration / slots
    segments = []
    for k in range(slots):
        midpoint = (k + 0.5) / slots
        rate = rps * max(0.0, 1.0 + 0.8 * math.sin(2.0 * math.pi * midpoint))
        segments.append(RateSegment(k * width, (k + 1) * width, rate))
    return RateSchedule(tuple(segments))


def _spike_train_schedule(rps: float, duration: float) -> RateSchedule:
    """A quiet base rate punctured by 1 s spikes every 30 s."""
    base = RateSchedule((RateSegment(0.0, duration, 0.5 * rps),))
    start = 10.0
    while start + 1.0 <= duration:
        base = base + RateSchedule((RateSegment(start, start + 1.0,
                                                8.0 * rps),))
        start += 30.0
    return base


def _ramp_schedule(rps: float, duration: float) -> RateSchedule:
    """A linear ramp from 0.2x to 1.8x the nominal rate in 16 steps."""
    steps = 16
    width = duration / steps
    segments = []
    for k in range(steps):
        fraction = (k + 0.5) / steps
        rate = rps * (0.2 + 1.6 * fraction)
        segments.append(RateSegment(k * width, (k + 1) * width, rate))
    return RateSchedule(tuple(segments))


#: Registered arrival shapes.  ``poisson`` is special-cased by
#: :class:`ShareGPTWorkload` to the legacy homogeneous generator (the
#: golden-pinned RNG stream); it is registered here so schedule-level
#: tooling can still build its flat-rate equivalent.
SHAPES = {
    "poisson": lambda rps, duration: RateSchedule(
        (RateSegment(0.0, duration, rps),)),
    "burst": _burst_schedule,
    "diurnal": _diurnal_schedule,
    "spike_train": _spike_train_schedule,
    "ramp": _ramp_schedule,
}


def shape_names() -> Tuple[str, ...]:
    """The registered arrival-shape names, alphabetical."""
    return tuple(sorted(SHAPES))


def make_schedule(shape: str, rps: float, duration: float) -> RateSchedule:
    """Build the named arrival shape at nominal rate ``rps``."""
    if shape not in SHAPES:
        raise InvalidValueError(
            f"unknown arrival shape {shape!r}; "
            f"registered: {', '.join(shape_names())}")
    if rps <= 0:
        raise InvalidValueError(f"rps must be positive, got {rps}")
    if duration <= 0:
        raise InvalidValueError(f"duration must be positive, got {duration}")
    return SHAPES[shape](rps, duration)


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int


class ShareGPTWorkload:
    """Poisson arrivals; lognormal prompt/output lengths (ShareGPT means).

    With ``shape``/``schedule`` left unset (or ``shape="poisson"``), the
    generator is the original homogeneous-Poisson loop, byte-identical
    to the golden-pinned traces.  A named ``shape`` (see
    :func:`make_schedule`) or an explicit :class:`RateSchedule` switches
    to the inhomogeneous sampler: same lognormal length model, arrivals
    drawn from the schedule, and a distinct seed-derivation path so the
    two modes never share an RNG stream.
    """

    def __init__(self, rps: float, duration: float, seed: int = 0,
                 mean_prompt: float = SHAREGPT_MEAN_PROMPT_TOKENS,
                 mean_output: float = SHAREGPT_MEAN_OUTPUT_TOKENS,
                 sigma: float = 0.8, shape: Optional[str] = None,
                 schedule: Optional[RateSchedule] = None):
        if rps <= 0:
            raise InvalidValueError(f"rps must be positive, got {rps}")
        if duration <= 0:
            raise InvalidValueError(f"duration must be positive, got {duration}")
        if shape is not None and shape not in SHAPES:
            raise InvalidValueError(
                f"unknown arrival shape {shape!r}; "
                f"registered: {', '.join(shape_names())}")
        self.rps = rps
        self.duration = duration
        self.seed = seed
        self.mean_prompt = mean_prompt
        self.mean_output = mean_output
        self.sigma = sigma
        self.shape = shape
        self.schedule = schedule

    def _lognormal_mu(self, mean: float) -> float:
        return math.log(mean) - self.sigma**2 / 2.0

    def _resolved_schedule(self) -> Optional[RateSchedule]:
        """The effective schedule; None means the legacy Poisson path.

        An explicit ``schedule`` wins; otherwise a named non-Poisson
        ``shape`` builds its schedule at the workload's nominal rate.
        ``"poisson"`` stays on the legacy generator so its golden-pinned
        RNG stream survives the shape flag's introduction.
        """
        if self.schedule is not None:
            return self.schedule
        if self.shape is not None and self.shape != "poisson":
            return make_schedule(self.shape, self.rps, self.duration)
        return None

    def generate(self) -> List[Request]:
        """The full request trace for one simulation run (deterministic)."""
        schedule = self._resolved_schedule()
        if schedule is not None:
            return self._generate_shaped(schedule)
        seeds = SeedSequence(self.seed).child("workload", self.rps,
                                              self.duration)
        arrival_rng = seeds.generator("arrivals")
        length_rng = seeds.generator("lengths")
        requests: List[Request] = []
        now = 0.0
        request_id = 0
        mu_prompt = self._lognormal_mu(self.mean_prompt)
        mu_output = self._lognormal_mu(self.mean_output)
        while True:
            now += arrival_rng.exponential(1.0 / self.rps)
            if now >= self.duration:
                break
            prompt = max(1, int(length_rng.lognormal(mu_prompt, self.sigma)))
            output = max(1, int(length_rng.lognormal(mu_output, self.sigma)))
            requests.append(Request(
                request_id=request_id,
                arrival_time=now,
                prompt_tokens=prompt,
                output_tokens=output,
            ))
            request_id += 1
        return requests

    def _generate_shaped(self, schedule: RateSchedule) -> List[Request]:
        """The inhomogeneous trace for one schedule (deterministic).

        Seeds derive from ``("workload-shaped", seed, rps, duration)``
        plus the shape name when one was given — the legacy stream keys
        on ``("workload", rps, duration)``, so the two modes can never
        collide.  Arrivals are capped at the workload's ``duration``
        even when the schedule extends past it.
        """
        label = self.shape if self.schedule is None and self.shape else \
            "custom"
        seeds = SeedSequence(self.seed).child("workload-shaped", self.rps,
                                              self.duration, label)
        arrival_rng = seeds.generator("arrivals")
        length_rng = seeds.generator("lengths")
        mu_prompt = self._lognormal_mu(self.mean_prompt)
        mu_output = self._lognormal_mu(self.mean_output)
        requests: List[Request] = []
        arrivals = schedule.arrival_times(arrival_rng,
                                          horizon=self.duration)
        for request_id, now in enumerate(arrivals):
            prompt = max(1, int(length_rng.lognormal(mu_prompt, self.sigma)))
            output = max(1, int(length_rng.lognormal(mu_output, self.sigma)))
            requests.append(Request(
                request_id=request_id,
                arrival_time=now,
                prompt_tokens=prompt,
                output_tokens=output,
            ))
        return requests
