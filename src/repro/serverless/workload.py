"""Request workloads: Poisson arrivals with ShareGPT-like shapes.

The paper replays the ShareGPT dataset with Poisson arrivals (§7.5) and
reports its average prompt/output lengths as 161 and 338 tokens (§2.2).  The
dataset itself is not redistributable here, so we sample from lognormal
length distributions matched to those means — the only properties the
evaluation depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import InvalidValueError
from repro.utils.rng import SeedSequence

#: ShareGPT average lengths reported by the paper (§2.2).
SHAREGPT_MEAN_PROMPT_TOKENS = 161
SHAREGPT_MEAN_OUTPUT_TOKENS = 338


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int


class ShareGPTWorkload:
    """Poisson arrivals; lognormal prompt/output lengths (ShareGPT means)."""

    def __init__(self, rps: float, duration: float, seed: int = 0,
                 mean_prompt: float = SHAREGPT_MEAN_PROMPT_TOKENS,
                 mean_output: float = SHAREGPT_MEAN_OUTPUT_TOKENS,
                 sigma: float = 0.8):
        if rps <= 0:
            raise InvalidValueError(f"rps must be positive, got {rps}")
        if duration <= 0:
            raise InvalidValueError(f"duration must be positive, got {duration}")
        self.rps = rps
        self.duration = duration
        self.seed = seed
        self.mean_prompt = mean_prompt
        self.mean_output = mean_output
        self.sigma = sigma

    def _lognormal_mu(self, mean: float) -> float:
        return math.log(mean) - self.sigma**2 / 2.0

    def generate(self) -> List[Request]:
        """The full request trace for one simulation run (deterministic)."""
        seeds = SeedSequence(self.seed).child("workload", self.rps,
                                              self.duration)
        arrival_rng = seeds.generator("arrivals")
        length_rng = seeds.generator("lengths")
        requests: List[Request] = []
        now = 0.0
        request_id = 0
        mu_prompt = self._lognormal_mu(self.mean_prompt)
        mu_output = self._lognormal_mu(self.mean_output)
        while True:
            now += arrival_rng.exponential(1.0 / self.rps)
            if now >= self.duration:
                break
            prompt = max(1, int(length_rng.lognormal(mu_prompt, self.sigma)))
            output = max(1, int(length_rng.lognormal(mu_output, self.sigma)))
            requests.append(Request(
                request_id=request_id,
                arrival_time=now,
                prompt_tokens=prompt,
                output_tokens=output,
            ))
            request_id += 1
        return requests
