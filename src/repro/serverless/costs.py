"""Analytic serving costs for the discrete-event simulator.

The cluster simulator needs step-level timings without dragging a live
simulated process per instance; these formulas are the same ones the real
engine's clock advances by (``repro.simgpu.costmodel``), extended with the
KV-cache read traffic that grows with context length during decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.strategies import Strategy
from repro.models.config import ModelConfig
from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel


@dataclass
class ServingCostModel:
    """Per-iteration serving times for one model under one cost model."""

    config: ModelConfig
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if isinstance(self.config, str):
            self.config = get_model_config(self.config)

    # -- components ---------------------------------------------------------

    def _kv_read_bytes(self, batch_size: int, avg_context: float) -> float:
        """K+V read volume for one decode step across the batch."""
        return (batch_size * avg_context * self.config.hidden_size
                * 2 * 2 * self.config.num_layers)

    def padded_batch(self, batch_size: int) -> int:
        candidates = [b for b in self.config.capture_batch_sizes
                      if b >= batch_size]
        return min(candidates) if candidates else \
            max(self.config.capture_batch_sizes)

    # -- iteration times ---------------------------------------------------------

    def prefill_time(self, prompt_tokens: int) -> float:
        """Eager prefill of one request (vLLM prefills outside graphs)."""
        cm = self.cost_model
        kernels = self.config.nodes_for_batch(1)
        return cm.eager_step_time(self.config.param_bytes, prompt_tokens,
                                  kernels)

    def decode_step_time(self, batch_size: int, avg_context: float,
                         use_graphs: bool) -> float:
        """One decode iteration over ``batch_size`` running sequences."""
        cm = self.cost_model
        gpu = self.cost_model.gpu
        effective_batch = self.padded_batch(batch_size) if use_graphs \
            else batch_size
        compute = (2.0 * self.config.num_params * effective_batch
                   / gpu.effective_flops)
        memory = ((self.config.param_bytes
                   + self._kv_read_bytes(batch_size, avg_context))
                  / gpu.effective_mem_bandwidth)
        gpu_time = max(compute, memory)
        if use_graphs:
            return gpu_time + cm.graph_launch_overhead
        return gpu_time + self.config.nodes_for_batch(1) * cm.launch_gap

    def deferred_capture_penalty(self, batch_size: int) -> float:
        """One-off cost of lazily capturing a batch size while serving (§2.4):
        a warm-up forwarding, the capturing forwarding, and instantiation."""
        cm = self.cost_model
        padded = self.padded_batch(batch_size)
        kernels = self.config.nodes_for_batch(padded)
        warm_up = cm.eager_step_time(self.config.param_bytes, padded, kernels)
        return (warm_up + cm.capture_forward_time(kernels)
                + cm.instantiate_time(kernels))

    def request_latency(self, prompt_tokens: int, output_tokens: int,
                        use_graphs: bool, batch_size: int = 1) -> float:
        """Unloaded single-request latency (Figure 3's quantity)."""
        total = self.prefill_time(prompt_tokens)
        for step in range(max(0, output_tokens - 1)):
            context = prompt_tokens + step
            total += self.decode_step_time(batch_size, context, use_graphs)
        return total
