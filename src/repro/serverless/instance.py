"""One serving instance: iteration-level continuous batching.

An instance occupies one GPU.  After its strategy-specific cold start it
serves requests with continuous batching: each iteration admits waiting
requests up to the batch cap (paying their eager prefill), then decodes one
token for every running sequence (graph-replayed when the strategy kept CUDA
graphs).  TTFT is recorded when a request's prefill iteration completes —
the quantity cold starts push into the tail (§7.5).

When launched from a :class:`ColdStartProfile` that carries a scheduled
LoadPlan timeline, the cold start is *stage-granular*: the instance knows
every :class:`repro.engine.loadplan.ScheduledStage` of its restore, becomes
request-ready at ``Timeline.ready`` (not ``total``), pays a contention
penalty on serving steps that overlap the background restore tail, and can
be **cancelled at a stage boundary** by the cluster's scale-down policy
instead of only before launch or after readiness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.engine.strategies import Strategy
from repro.errors import SchedulingError
from repro.serverless.costs import ServingCostModel
from repro.serverless.workload import Request

#: Numerical slack for "these instants coincide" on stage boundaries.
_EPS = 1e-12


@dataclass(frozen=True)
class ColdStartProfile:
    """The strategy-agnostic cold-start description the simulator consumes.

    Derived once from a :class:`repro.engine.ColdStartReport` (i.e. from a
    scheduled LoadPlan): the loading-phase latency an instance pays before
    becoming ready, the serving flags the strategy implies, and the
    scheduled stage timeline for per-stage introspection/tracing.  The one
    interface between cold-start plans and the cluster simulation — new
    strategies reach the simulator without touching it.
    """

    loading_time: float
    #: Foreground loading time — when the instance can take its first
    #: request.  With a pipelined restore plan this is earlier than
    #: ``loading_time`` (background graphs finish behind it); 0.0 (legacy
    #: profiles) means "same as loading_time".
    ready_time: float = 0.0
    use_cuda_graphs: bool = True
    deferred_capture: bool = False   # §2.4: capture lazily while serving
    timeline: Optional[object] = None   # repro.engine.Timeline, if known
    # Ladder rung label ("partial"/"recapture"/"eager") when the cold start
    # this profile came from degraded; "" on a clean restore.
    degraded_rung: str = ""

    @classmethod
    def from_report(cls, report) -> "ColdStartProfile":
        """Build the profile from one engine ``ColdStartReport``."""
        strategy = report.strategy
        degradation = getattr(report, "degradation", None)
        degraded_rung = ""
        if degradation is not None and getattr(degradation, "degraded",
                                               False):
            degraded_rung = degradation.rung_name
        return cls(
            loading_time=report.loading_time,
            ready_time=getattr(report, "ready_time", 0.0),
            use_cuda_graphs=strategy.uses_cuda_graphs,
            deferred_capture=strategy is Strategy.DEFERRED,
            timeline=report.timeline,
            degraded_rung=degraded_rung,
        )

    @property
    def serving_ready_time(self) -> float:
        """The cold-start latency the simulator charges before serving."""
        return self.ready_time if self.ready_time > 0 else self.loading_time

    def _fetch_stages(self) -> List:
        """Every scheduled fetch stage: ``fetch_artifact`` and any
        chunk-streamed ``fetch_chunk[i]`` stages (schedule order)."""
        from repro.engine.loadplan import FETCH_ARTIFACT, FETCH_CHUNK_PATTERN
        if self.timeline is None:
            return []
        return [stage for stage in self.timeline.stages
                if stage.name == FETCH_ARTIFACT
                or FETCH_CHUNK_PATTERN.match(stage.name) is not None]

    @property
    def fetch_duration(self) -> float:
        """The scheduled *foreground* artifact-fetch seconds (0.0 when
        absent): the ``fetch_artifact`` stage, or — for chunk-streamed
        plans — the summed non-background ``fetch_chunk[i]`` stages.

        This is the *remote baseline*: plans measure the fetch against
        the flat artifact store, and the placement layer rewrites it per
        tier via :meth:`with_fetch_duration`.
        """
        return sum(stage.duration for stage in self._fetch_stages()
                   if not stage.background)

    def with_fetch_duration(self, duration: float) -> "ColdStartProfile":
        """This profile with its fetch stage(s) retimed.

        The locality placement layer resolves the artifact's storage tier
        at launch and charges the tier's fetch time instead of the plan's
        remote baseline; the timeline is re-scheduled so every dependent
        stage (and therefore readiness, the background tail, and the
        Chrome trace) moves with it.  Chunk-streamed plans scale every
        ``fetch_chunk[i]`` stage — background tail chunks included: the
        whole stream reads from the same tier — by the ratio of
        ``duration`` to the foreground baseline.  Returns ``self``
        unchanged when the profile has no fetch stage or the duration
        already matches.
        """
        from dataclasses import replace

        from repro.engine.loadplan import retime_stages
        base = self.fetch_duration
        if base == 0.0 or duration == base:
            return self
        ratio = duration / base
        overrides = {stage.name: stage.duration * ratio
                     for stage in self._fetch_stages()}
        timeline = retime_stages(self.timeline, overrides)
        loading = max(0.0, self.loading_time
                      + (timeline.total - self.timeline.total))
        ready = self.ready_time
        if ready > 0:
            ready = max(0.0, ready
                        + (timeline.ready - self.timeline.ready))
        return replace(self, loading_time=loading, ready_time=ready,
                       timeline=timeline)


@dataclass(frozen=True)
class InstanceConfig:
    """Sizing of one serverless serving instance."""

    max_running: int = 14       # concurrent sequences per instance
    use_cuda_graphs: bool = True
    deferred_capture: bool = False   # §2.4: capture lazily while serving
    #: Fractional slowdown of serving steps that overlap a pipelined
    #: restore's background tail: the tail streams graph pools over PCIe
    #: and replays restore work on the GPU while the instance already
    #: serves, so early steps contend with it.
    background_tail_penalty: float = 0.15


@dataclass
class _RunningSequence:
    request: Request
    generated: int = 0
    first_token_time: float = 0.0

    @property
    def context(self) -> int:
        return self.request.prompt_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass
class CompletedRequest:
    request: Request
    ttft: float
    completion_time: float

    @property
    def latency(self) -> float:
        return self.completion_time - self.request.arrival_time


class Instance:
    """One GPU-backed serving instance inside the cluster simulator."""

    _ids = itertools.count()

    def __init__(self, costs: ServingCostModel, config: InstanceConfig,
                 launched_at: float, cold_start_latency: float,
                 profile: Optional[ColdStartProfile] = None,
                 model_name: str = ""):
        self.instance_id = next(Instance._ids)
        self.costs = costs
        self.config = config
        self.profile = profile       # the cold-start plan trace, if known
        self.model_name = model_name
        self.launched_at = launched_at
        self.ready_at = launched_at + cold_start_latency
        self.waiting: Deque[Request] = deque()
        self.running: List[_RunningSequence] = []
        self.stepping = False
        self.retired = False
        self.hot_spare = False
        # -- placement (set by the pool at launch) ---------------------------
        #: Cluster node(s) this instance's GPU(s) occupy; () when the
        #: simulator runs without the placement layer.
        self.node_ids: Tuple[int, ...] = ()
        #: Storage tier the cold start's artifact was served from ("" for
        #: warm launches and flat placement).
        self.fetch_tier = ""
        self.last_busy_at = self.ready_at
        self.busy_time = 0.0
        self._captured_batches: set = set()
        # -- stage-granular cold start (profile timelines only) -------------
        self.cold_stages: List[object] = []
        self.restore_tail_until = self.ready_at
        self.cancelled = False
        self.cancelled_stage = ""
        self.cold_events: List[object] = []   # kernel Events, set by the pool
        timeline = getattr(profile, "timeline", None) \
            if profile is not None else None
        if cold_start_latency > 0 and timeline is not None \
                and getattr(timeline, "stages", None):
            self.cold_stages = list(timeline.stage_events())
            if timeline.has_background:
                self.restore_tail_until = max(self.ready_at,
                                              launched_at + timeline.total)

    # -- load accounting ----------------------------------------------------

    @property
    def load(self) -> int:
        return len(self.waiting) + len(self.running)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)

    def enqueue(self, request: Request) -> None:
        if self.retired:
            raise SchedulingError(
                f"instance {self.instance_id} is retired; cannot enqueue")
        self.waiting.append(request)

    # -- cold-start cancellation ----------------------------------------------

    def cancel_cold_start(self, now: float) -> Optional[Tuple[float, str]]:
        """Abort an in-flight stage-granular cold start.

        The abort takes effect at the earliest stage boundary at or after
        ``now`` that precedes readiness: the stage completing there is the
        last work this instance does; everything later (including the
        ready event) is abandoned, the GPU frees at the boundary, and the
        instance retires.  Returns ``(boundary_time, stage_name)`` on
        success, or ``None`` when the cold start cannot be cancelled —
        already ready/retired, serving work in flight, or a scalar
        (stage-less) cold start, which can only be dropped before launch
        or retired after readiness (the pre-kernel behaviour).
        """
        if self.retired or self.cancelled or now >= self.ready_at - _EPS:
            return None
        if self.running or self.stepping:
            return None
        boundary: Optional[Tuple[float, str]] = None
        for stage in self.cold_stages:
            end = self.launched_at + stage.end
            if end + _EPS >= now and end < self.ready_at - _EPS:
                if boundary is None or end < boundary[0]:
                    boundary = (end, stage.name)
        if boundary is None:
            return None
        self.retired = True
        self.cancelled = True
        self.retired_at = boundary[0]
        self.cancelled_stage = boundary[1]
        return boundary

    # -- one serving iteration ------------------------------------------------

    def run_step(self, now: float) -> "StepResult":
        """Execute one continuous-batching iteration starting at ``now``.

        Returns the step duration plus the TTFTs and completions it produced.
        """
        if not self.has_work:
            raise SchedulingError(
                f"instance {self.instance_id} stepped without work")
        duration = 0.0
        admitted: List[_RunningSequence] = []
        while self.waiting and len(self.running) < self.config.max_running:
            request = self.waiting.popleft()
            duration += self.costs.prefill_time(request.prompt_tokens)
            sequence = _RunningSequence(request=request, generated=1)
            self.running.append(sequence)
            admitted.append(sequence)
        if self.running:
            if self.config.deferred_capture and self.config.use_cuda_graphs:
                padded = self.costs.padded_batch(len(self.running))
                if padded not in self._captured_batches:
                    # §2.4: the capture latency lands on this iteration's
                    # requests instead of on the cold start.
                    duration += self.costs.deferred_capture_penalty(padded)
                    self._captured_batches.add(padded)
            contexts = [seq.context for seq in self.running]
            duration += self.costs.decode_step_time(
                len(self.running), sum(contexts) / len(contexts),
                self.config.use_cuda_graphs)
            for sequence in self.running:
                if sequence not in admitted:
                    sequence.generated += 1
        contention = 0.0
        if duration > 0 and now < self.restore_tail_until - _EPS:
            # The background restore tail is still streaming: early serving
            # contends with it (§7.3's overlap, seen from the serving side).
            contention = duration * self.config.background_tail_penalty
            duration += contention
        end = now + duration
        for sequence in admitted:
            sequence.first_token_time = end
        ttfts = [(seq.request, end - seq.request.arrival_time)
                 for seq in admitted]
        completed = [CompletedRequest(
                        seq.request,
                        ttft=seq.first_token_time - seq.request.arrival_time,
                        completion_time=end)
                     for seq in self.running if seq.done]
        self.running = [seq for seq in self.running if not seq.done]
        self.last_busy_at = end
        self.busy_time += duration
        return StepResult(duration=duration, ttfts=ttfts,
                          completed=completed,
                          background_contention=contention)


@dataclass
class StepResult:
    """Outcome of one continuous-batching iteration."""

    duration: float
    ttfts: List
    completed: List[CompletedRequest]
    #: Extra seconds this step paid for overlapping the restore tail.
    background_contention: float = 0.0
