"""The discrete-event cluster simulator (paper §7.5).

Requests arrive (Poisson, ShareGPT-like shapes) at a router over a pool of
GPUs.  The router sends each request to the least-loaded live instance; when
every instance is saturated and a GPU is free, the autoscaling policy
launches a new instance, which becomes ready after the *strategy-specific
cold-start latency* — the quantity Medusa shrinks.  Runtime initialization
is assumed warm-pooled (as in the paper: "the time required to launch an
inference serving instance is equal to the duration of the loading phase").

The event loop itself lives in :class:`repro.serverless.pool.
PoolSimulatorBase` on top of the :mod:`repro.sim` kernel.  When the
scenario carries a :class:`ColdStartProfile` with a scheduled LoadPlan
timeline, cold starts are stage-granular: instances admit requests at
``Timeline.ready`` (ahead of the background restore tail), tail stages
contend with early serving, and — with ``abort_cold_starts`` enabled — a
startup whose queued requests can be absorbed by freed capacity is
cancelled at the next stage boundary instead of running to completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import InvalidValueError
from repro.serverless.autoscale import make_autoscaler
from repro.serverless.costs import ServingCostModel
from repro.serverless.instance import (
    ColdStartProfile,
    Instance,
    InstanceConfig,
)
from repro.serverless.metrics import SimulationMetrics
from repro.serverless.placement import TierSpec, make_policy
from repro.serverless.pool import ARRIVAL, PoolSimulatorBase
from repro.serverless.workload import Request


@dataclass(frozen=True)
class SimulationConfig:
    """One cluster-simulation scenario."""

    num_gpus: int = 4
    cold_start_latency: float = 3.0       # loading-phase time of the strategy
    use_cuda_graphs: bool = True
    deferred_capture: bool = False        # §2.4: capture lazily while serving
    max_running: int = 14                 # per-instance concurrent sequences
    initial_instances: int = 0            # serverless: scale from zero
    hot_spares: int = 0                   # §2.4: always-on warm instances
    keep_alive: float = 20.0              # idle seconds before retiring
    drain: bool = True                    # serve queued work past the horizon
    profile: Optional[ColdStartProfile] = None   # plan trace, if derived
    #: Fractional serving slowdown while a pipelined restore's background
    #: tail is still streaming (stage-granular cold starts only).
    background_tail_penalty: float = 0.15
    #: Scale-down policy: cancel an in-flight stage-granular cold start at
    #: its next stage boundary when ready instances can absorb every
    #: request queued on it (ServerlessLLM-style startup abort).
    abort_cold_starts: bool = False
    #: Optional ArtifactStore(-like) object fetched from on every cold
    #: start, with ``artifact_key = (gpu_name, model_name)``: models
    #: repeated cold starts on one node hitting the store's in-memory LRU,
    #: surfaced as store_cache_hits/misses in the metrics.
    artifact_store: Optional[object] = None
    artifact_key: Optional[Tuple[str, str]] = None
    #: Artifact placement across the cluster's nodes: a registered policy
    #: name ("flat", "locality", "affinity"), a PlacementPolicy factory,
    #: or an instance.  ``"flat"`` reproduces the pre-placement simulator
    #: bit for bit; the default locality policy routes each cold start to
    #: the node holding the artifact in the warmest tier and rewrites the
    #: plan's ``fetch_artifact`` stage to that tier's fetch time.
    placement: object = "locality"
    #: Per-node tier ladder (warmest first, remote backstop last); None
    #: uses :data:`repro.serverless.placement.DEFAULT_TIERS`.
    tiers: Optional[Tuple[TierSpec, ...]] = None
    #: Artifact footprint in tier-capacity units.
    artifact_size: float = 1.0
    #: Optional chunk-stream description of the artifact (``ChunkMeta``
    #: -shaped objects with ``digest``/``nbytes``/``foreground``; see
    #: :func:`repro.core.chunks.simulation_chunks`).  When set, cold
    #: starts resolve tier residency chunk by chunk — a node that hosted
    #: a sibling model sharing chunks starts partially warm — and the
    #: metrics gain ``chunk_hits`` / ``bytes_deduped`` /
    #: ``fetch_bytes_foreground``.  None keeps blob-granular fetches
    #: (the golden-pinned behaviour).
    chunks: Optional[Tuple[object, ...]] = None
    #: Autoscaling policy: a registered name ("keep-alive", "histogram",
    #: "cold-cost", "queue-slo"), an AutoscalePolicy factory, or an
    #: instance.  The default keep-alive policy reproduces the
    #: pre-policy simulator bit for bit (``keep_alive`` seeds its
    #: window); the others enforce their idle windows with kernel-level
    #: idle ticks and may scale up proactively.
    autoscale: object = "keep-alive"
    #: TTFT SLO budget in seconds (0.0 = none): feeds the metrics'
    #: ``slo_attainment`` accounting and the queue-delay policy's
    #: scale-up threshold.
    slo_ttft: float = 0.0

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise InvalidValueError("num_gpus must be positive")
        if self.initial_instances + self.hot_spares > self.num_gpus:
            raise InvalidValueError(
                "initial_instances + hot_spares cannot exceed num_gpus")

    @classmethod
    def from_report(cls, report, **overrides) -> "SimulationConfig":
        """Derive the strategy-dependent fields from one cold start.

        Routes every consumer (the CLI, benchmarks, tooling) through the
        scheduled LoadPlan's :class:`ColdStartProfile` instead of
        hand-copying per-strategy flags; ``overrides`` set the remaining
        scenario fields (``num_gpus``, ``hot_spares``, ...).
        """
        profile = ColdStartProfile.from_report(report)
        return cls(cold_start_latency=profile.serving_ready_time,
                   use_cuda_graphs=profile.use_cuda_graphs,
                   deferred_capture=profile.deferred_capture,
                   profile=profile, **overrides)


class ClusterSimulator(PoolSimulatorBase):
    """Runs one scenario over one request trace."""

    def __init__(self, costs: ServingCostModel, config: SimulationConfig):
        self.costs = costs
        self.config = config
        self.keep_alive = config.keep_alive
        self.instances: List[Instance] = []
        self.metrics = SimulationMetrics()
        self.placement_policy = make_policy(config.placement,
                                            config.num_gpus, config.tiers)
        self.autoscaler = make_autoscaler(config.autoscale,
                                          keep_alive=config.keep_alive,
                                          slo_ttft=config.slo_ttft)
        self._begin_run(horizon=0.0)

    # -- pool hooks ----------------------------------------------------------

    def _can_launch(self, model) -> bool:
        """A GPU is free for one more instance."""
        return len(self._live_instances()) < self.config.num_gpus

    def _launch_cold_for(self, model, now: float) -> Instance:
        """Proactive scale-up launch (autoscale policy target)."""
        return self._launch_instance(now)

    def _metrics_for(self, instance: Instance) -> SimulationMetrics:
        """Single-model pool: every instance reports into one sink."""
        return self.metrics

    def _retirement_floor(self) -> int:
        """Keep the always-on capacity: initial instances + hot spares."""
        return self.config.initial_instances + self.config.hot_spares

    def _live_instances(self) -> List[Instance]:
        """Every non-retired instance, ready or still cold-starting."""
        return [inst for inst in self.instances if not inst.retired]

    def _pool_size(self) -> int:
        return self.config.num_gpus

    def _placement_key(self) -> Tuple[str, str]:
        """The artifact identity placement caches are keyed by."""
        if self.config.artifact_key is not None:
            return self.config.artifact_key
        return ("cluster", self.costs.config.name)

    # -- instance management --------------------------------------------------

    def _launch_instance(self, now: float, cold: bool = True,
                         hot_spare: bool = False) -> Instance:
        """Provision one instance; cold launches execute the LoadPlan.

        Cold launches resolve the artifact's placement first: the policy
        picks the node, the node's cache prices the ``fetch_artifact``
        stage (tier-resolved), and the profile's timeline is rewritten
        before the kernel schedules its stage events — so admission,
        background tails, and traces all reflect locality.  A hit on the
        artifact store's in-memory LRU likewise caps the fetch at the
        DRAM tier's cost: the bytes are already deserialized in host
        memory, so charging the flat remote fetch would double-bill.
        """
        profile = self.config.profile if cold else None
        resolution = None
        node_ids: Tuple[int, ...] = ()
        store_hit = False
        if cold:
            store = self.config.artifact_store
            if store is not None and self.config.artifact_key is not None:
                hits_before = store.cache_hits
                store.get(*self.config.artifact_key)
                store_hit = store.cache_hits > hits_before
            base_fetch = profile.fetch_duration \
                if profile is not None else 0.0
            node_ids, resolution = self._resolve_placement(
                self._placement_key(), self.config.artifact_size,
                base_fetch, chunks=self.config.chunks)
            profile = self._tier_resolved_profile(profile, resolution,
                                                  store_hit=store_hit)
        else:
            node_ids, _ = self._resolve_placement(None, 0.0, 0.0,
                                                  cold=False)
        if not cold:
            latency = 0.0
        elif profile is not None:
            latency = profile.serving_ready_time
        else:
            latency = self.config.cold_start_latency
        instance = Instance(
            costs=self.costs,
            config=InstanceConfig(
                max_running=self.config.max_running,
                use_cuda_graphs=self.config.use_cuda_graphs,
                deferred_capture=self.config.deferred_capture,
                background_tail_penalty=self.config.background_tail_penalty),
            launched_at=now,
            cold_start_latency=latency,
            profile=profile,
        )
        instance.hot_spare = hot_spare
        instance.node_ids = node_ids
        self.instances.append(instance)
        if cold:
            self.metrics.cold_starts += 1
            if profile is not None and profile.degraded_rung:
                self.metrics.record_degraded_cold_start(
                    profile.degraded_rung)
            if self.config.artifact_store is not None \
                    and self.config.artifact_key is not None:
                self.metrics.record_store_cache(hit=store_hit)
            self._record_placement(instance, resolution)
        self._launch_events(instance)
        return instance

    def _route(self, request: Request, now: float) -> None:
        """Least-loaded routing with scale-from-zero autoscaling."""
        live = self._live_instances()
        candidates = [inst for inst in live
                      if inst.load < self.config.max_running]
        if candidates:
            target = min(candidates, key=lambda inst: (inst.load,
                                                       inst.ready_at))
        elif len(live) < self.config.num_gpus:
            target = self._launch_instance(now)
        else:
            # Saturated: queue at the shortest backlog.
            target = min(live, key=lambda inst: inst.load)
        target.enqueue(request)
        self._maybe_step(target, now)

    # -- scale-down policy ------------------------------------------------------

    def _consider_abort(self, instance: Instance, stage, now: float) -> None:
        """Cancel a now-pointless cold start at this stage boundary.

        If ready instances have freed enough capacity to absorb every
        request queued on a still-cold instance (beyond the provisioning
        floor), finishing the startup only wastes GPU time: re-route the
        queue and abort at the boundary we are standing on.
        """
        if not self.config.abort_cold_starts:
            return
        if instance.retired or instance.running or instance.stepping:
            return
        if now >= instance.ready_at:
            return
        live = self._live_instances()
        if len(live) <= self._retirement_floor():
            return
        ready = [inst for inst in live
                 if inst is not instance and now >= inst.ready_at]
        spare = sum(max(0, self.config.max_running - inst.load)
                    for inst in ready)
        if spare < len(instance.waiting):
            return
        rerouted = list(instance.waiting)
        instance.waiting.clear()
        if self._cancel_cold_start(instance, now,
                                   reason="free_capacity") is None:
            instance.waiting.extend(rerouted)
            return
        for request in rerouted:
            self._route(request, now)

    # -- event handlers ---------------------------------------------------------

    def _on_arrival(self, event) -> None:
        """Route one arrival (dropped past the horizon unless draining)."""
        now = self.loop.now
        if not self.config.drain and now > self.horizon:
            return
        self._dispatch_arrival(event.payload, now)

    # -- main loop ------------------------------------------------------------------

    def run(self, requests: List[Request], horizon: float) -> SimulationMetrics:
        """Simulate the full trace; returns the run's metrics."""
        self.metrics = SimulationMetrics(horizon=horizon,
                                         slo_ttft=self.config.slo_ttft)
        self.metrics.arrived = len(requests)
        self.instances = []
        # Fresh cache state per run: placement must not leak residency
        # across runs, or repeated runs would diverge.  The autoscaler is
        # likewise rebuilt so its observed histograms/decisions restart
        # (a caller-supplied policy *instance* is reused as-is).
        self.placement_policy = make_policy(self.config.placement,
                                            self.config.num_gpus,
                                            self.config.tiers)
        self.autoscaler = make_autoscaler(self.config.autoscale,
                                          keep_alive=self.config.keep_alive,
                                          slo_ttft=self.config.slo_ttft)
        self._begin_run(horizon)
        for _ in range(self.config.initial_instances):
            self._launch_instance(0.0, cold=False)
        for _ in range(self.config.hot_spares):
            self._launch_instance(0.0, cold=False, hot_spare=True)
        for request in requests:
            self.loop.schedule(request.arrival_time, ARRIVAL, request)

        self.loop.run()

        # GPU-time accounting (the §2.4 hot-spares waste argument).
        end_of_run = max(horizon, self.loop.now)
        for instance in self.instances:
            until = getattr(instance, "retired_at", end_of_run)
            self.metrics.record_instance_lifetime(
                max(0.0, until - instance.ready_at), instance.busy_time)
        if self.autoscaler is not None:
            self.metrics.record_autoscale_decisions(
                self.autoscaler.decisions)
        return self.metrics
