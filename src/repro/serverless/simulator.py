"""The discrete-event cluster simulator (paper §7.5).

Requests arrive (Poisson, ShareGPT-like shapes) at a router over a pool of
GPUs.  The router sends each request to the least-loaded live instance; when
every instance is saturated and a GPU is free, the autoscaling policy
launches a new instance, which becomes ready after the *strategy-specific
cold-start latency* — the quantity Medusa shrinks.  Runtime initialization
is assumed warm-pooled (as in the paper: "the time required to launch an
inference serving instance is equal to the duration of the loading phase").
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidValueError, SchedulingError
from repro.serverless.costs import ServingCostModel
from repro.serverless.instance import (
    ColdStartProfile,
    Instance,
    InstanceConfig,
)
from repro.serverless.metrics import SimulationMetrics
from repro.serverless.workload import Request

_ARRIVAL = 0
_INSTANCE_READY = 1
_STEP_DONE = 2


@dataclass(frozen=True)
class SimulationConfig:
    """One cluster-simulation scenario."""

    num_gpus: int = 4
    cold_start_latency: float = 3.0       # loading-phase time of the strategy
    use_cuda_graphs: bool = True
    deferred_capture: bool = False        # §2.4: capture lazily while serving
    max_running: int = 14                 # per-instance concurrent sequences
    initial_instances: int = 0            # serverless: scale from zero
    hot_spares: int = 0                   # §2.4: always-on warm instances
    keep_alive: float = 20.0              # idle seconds before retiring
    drain: bool = True                    # serve queued work past the horizon
    profile: Optional[ColdStartProfile] = None   # plan trace, if derived
    #: Optional ArtifactStore(-like) object fetched from on every cold
    #: start, with ``artifact_key = (gpu_name, model_name)``: models
    #: repeated cold starts on one node hitting the store's in-memory LRU,
    #: surfaced as store_cache_hits/misses in the metrics.
    artifact_store: Optional[object] = None
    artifact_key: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise InvalidValueError("num_gpus must be positive")
        if self.initial_instances + self.hot_spares > self.num_gpus:
            raise InvalidValueError(
                "initial_instances + hot_spares cannot exceed num_gpus")

    @classmethod
    def from_report(cls, report, **overrides) -> "SimulationConfig":
        """Derive the strategy-dependent fields from one cold start.

        Routes every consumer (the CLI, benchmarks, tooling) through the
        scheduled LoadPlan's :class:`ColdStartProfile` instead of
        hand-copying per-strategy flags; ``overrides`` set the remaining
        scenario fields (``num_gpus``, ``hot_spares``, ...).
        """
        profile = ColdStartProfile.from_report(report)
        return cls(cold_start_latency=profile.serving_ready_time,
                   use_cuda_graphs=profile.use_cuda_graphs,
                   deferred_capture=profile.deferred_capture,
                   profile=profile, **overrides)


class ClusterSimulator:
    """Runs one scenario over one request trace."""

    def __init__(self, costs: ServingCostModel, config: SimulationConfig):
        self.costs = costs
        self.config = config
        self.instances: List[Instance] = []
        self.metrics = SimulationMetrics()
        self._events: List[Tuple[float, int, int, object]] = []
        self._seq = itertools.count()
        self._now = 0.0

    # -- event plumbing -----------------------------------------------------

    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time, kind, next(self._seq), payload))

    # -- instance management ------------------------------------------------------

    def _live_instances(self) -> List[Instance]:
        return [inst for inst in self.instances if not inst.retired]

    def _launch_instance(self, now: float, cold: bool = True,
                         hot_spare: bool = False) -> Instance:
        latency = self.config.cold_start_latency if cold else 0.0
        instance = Instance(
            costs=self.costs,
            config=InstanceConfig(
                max_running=self.config.max_running,
                use_cuda_graphs=self.config.use_cuda_graphs,
                deferred_capture=self.config.deferred_capture),
            launched_at=now,
            cold_start_latency=latency,
            profile=self.config.profile,
        )
        instance.hot_spare = hot_spare
        self.instances.append(instance)
        if cold:
            self.metrics.cold_starts += 1
            profile = self.config.profile
            if profile is not None and profile.degraded_rung:
                self.metrics.record_degraded_cold_start(
                    profile.degraded_rung)
            store = self.config.artifact_store
            if store is not None and self.config.artifact_key is not None:
                hits_before = store.cache_hits
                store.get(*self.config.artifact_key)
                self.metrics.record_store_cache(
                    hit=store.cache_hits > hits_before)
        self._push(instance.ready_at, _INSTANCE_READY, instance)
        return instance

    def _route(self, request: Request, now: float) -> None:
        live = self._live_instances()
        candidates = [inst for inst in live
                      if inst.load < self.config.max_running]
        if candidates:
            target = min(candidates, key=lambda inst: (inst.load,
                                                       inst.ready_at))
        elif len(live) < self.config.num_gpus:
            target = self._launch_instance(now)
        else:
            # Saturated: queue at the shortest backlog.
            target = min(live, key=lambda inst: inst.load)
        target.enqueue(request)
        self._maybe_step(target, now)

    def _maybe_step(self, instance: Instance, now: float) -> None:
        if (instance.stepping or instance.retired
                or now < instance.ready_at or not instance.has_work):
            return
        instance.stepping = True
        result = instance.run_step(now)
        self._push(now + result.duration, _STEP_DONE, (instance, result))

    def _maybe_retire(self, instance: Instance, now: float) -> None:
        if instance.has_work or instance.stepping or instance.retired:
            return
        if getattr(instance, "hot_spare", False):
            return   # §2.4: hot spares stay provisioned (and waste GPUs)
        floor = self.config.initial_instances + self.config.hot_spares
        if now - instance.last_busy_at >= self.config.keep_alive and \
                len(self._live_instances()) > floor:
            instance.retired = True
            instance.retired_at = now

    # -- main loop ------------------------------------------------------------------

    def run(self, requests: List[Request], horizon: float) -> SimulationMetrics:
        self.metrics = SimulationMetrics(horizon=horizon)
        self.metrics.arrived = len(requests)
        self._events = []
        for _ in range(self.config.initial_instances):
            self._launch_instance(0.0, cold=False)
        for _ in range(self.config.hot_spares):
            self._launch_instance(0.0, cold=False, hot_spare=True)
        for request in requests:
            self._push(request.arrival_time, _ARRIVAL, request)

        while self._events:
            time, kind, _seq, payload = heapq.heappop(self._events)
            self._now = time
            if not self.config.drain and time > horizon and kind == _ARRIVAL:
                continue
            if kind == _ARRIVAL:
                self._route(payload, time)
            elif kind == _INSTANCE_READY:
                self._maybe_step(payload, time)
            elif kind == _STEP_DONE:
                instance, result = payload
                instance.stepping = False
                for _request, ttft in result.ttfts:
                    self.metrics.record_ttft(ttft)
                for completion in result.completed:
                    self.metrics.record_completion(
                        completion.latency,
                        in_horizon=completion.completion_time <= horizon)
                self._maybe_step(instance, time)
                self._maybe_retire(instance, time)
            else:  # pragma: no cover - event kinds are closed
                raise SchedulingError(f"unknown event kind {kind}")

        # GPU-time accounting (the §2.4 hot-spares waste argument).
        end_of_run = max(horizon, self._now)
        for instance in self.instances:
            until = getattr(instance, "retired_at", end_of_run)
            self.metrics.provisioned_gpu_seconds += max(
                0.0, until - instance.ready_at)
            self.metrics.busy_gpu_seconds += instance.busy_time
        return self.metrics
