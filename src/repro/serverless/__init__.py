"""Serverless serving platform simulation (paper §7.5).

A discrete-event simulator of a GPU pool serving LLM inference functions:
Poisson arrivals with ShareGPT-like request shapes, a router + autoscaler
that launches new serving instances on demand (paying the strategy-specific
cold-start latency), and iteration-level continuous batching on each
instance.  Produces the TTFT tail and throughput curves of Figures 10/11.
"""

from repro.serverless.autoscale import (
    AutoscalePolicy,
    ColdCostAwarePolicy,
    HistogramPolicy,
    KeepAlivePolicy,
    TargetQueueDelayPolicy,
    autoscaler_names,
    make_autoscaler,
)
from repro.serverless.cluster import (
    ModelDeployment,
    MultiModelCluster,
    TaggedRequest,
    tag_workloads,
)
from repro.serverless.costs import ServingCostModel
from repro.serverless.instance import (
    ColdStartProfile,
    Instance,
    InstanceConfig,
)
from repro.serverless.metrics import SimulationMetrics
from repro.serverless.placement import (
    DEFAULT_TIERS,
    AffinityPlacement,
    FetchResolution,
    FlatPlacement,
    LocalityPlacement,
    NodeCache,
    PlacementPolicy,
    TierSpec,
    make_policy,
    policy_names,
)
from repro.serverless.pool import PoolSimulatorBase
from repro.serverless.simulator import ClusterSimulator, SimulationConfig
from repro.serverless.workload import (
    RateSchedule,
    RateSegment,
    Request,
    ShareGPTWorkload,
    make_schedule,
    shape_names,
)

__all__ = [
    "AffinityPlacement",
    "AutoscalePolicy",
    "ColdCostAwarePolicy",
    "HistogramPolicy",
    "KeepAlivePolicy",
    "TargetQueueDelayPolicy",
    "autoscaler_names",
    "make_autoscaler",
    "RateSchedule",
    "RateSegment",
    "make_schedule",
    "shape_names",
    "ClusterSimulator",
    "ColdStartProfile",
    "DEFAULT_TIERS",
    "FetchResolution",
    "FlatPlacement",
    "LocalityPlacement",
    "ModelDeployment",
    "MultiModelCluster",
    "NodeCache",
    "PlacementPolicy",
    "PoolSimulatorBase",
    "TaggedRequest",
    "TierSpec",
    "tag_workloads",
    "make_policy",
    "policy_names",
    "Instance",
    "InstanceConfig",
    "Request",
    "ServingCostModel",
    "ShareGPTWorkload",
    "SimulationConfig",
    "SimulationMetrics",
]
