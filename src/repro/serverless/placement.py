"""Locality-aware artifact placement over per-node cache hierarchies.

Medusa's restoration speedup (§4-§6) assumes the materialized artifact is
already *local* to the node that cold-starts; on a real cluster that is a
placement decision, not a given.  ServerlessLLM makes the same point for
checkpoints: startup time is dominated by where the bytes sit in the
GPU / DRAM / SSD / remote hierarchy, so the scheduler should route a cold
start to the node holding them in the warmest tier.  This module supplies
that layer for the cluster simulators:

- :class:`TierSpec` describes one storage tier: a capacity (in artifact
  size units) and a ``fetch_scale`` multiplier applied to the plan's
  baseline (remote) ``fetch_artifact`` duration.  ``DEFAULT_TIERS`` is the
  GPU-resident / DRAM / local-SSD / remote-store ladder, warmest first.
- :class:`NodeCache` is one node's tiered artifact cache: LRU within each
  tier, cascading demotion on eviction (DRAM spills to SSD, SSD spills out
  of the hierarchy), promotion one tier warmer on every hit, and an append
  -only event log (:class:`CacheEvent`) the property tests and the trace
  exporter consume.
- :class:`PlacementPolicy` and its implementations decide *which node* a
  cold start lands on and *what the artifact fetch costs there*:

  ``flat``
      The pre-placement behaviour: first free node, every fetch at the
      remote baseline, no cache bookkeeping.  Bit-identical to the
      simulators before this layer existed (the golden pin).
  ``locality``
      Routes to the free node holding the artifact in the warmest tier,
      falling back to the least-loaded free node; the resolved tier
      rewrites the ``fetch_artifact`` stage of the cold start's LoadPlan
      timeline (ServerlessLLM-style locality-driven startup scheduling).
  ``affinity``
      ``locality`` plus a residency memory: when no free node still
      *holds* the artifact, prefer a node that ever hosted it (its weights
      are likely a short re-fetch away) before falling back to
      least-loaded — the Tangram-style affinity reuse of prior state.

Everything here is deterministic: ties break on node id, the caches use
insertion-ordered LRU, and no randomness is consulted, so a fixed seed
reproduces placements exactly.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidValueError

#: Canonical tier names, warmest to coldest.
TIER_GPU = "gpu"
TIER_DRAM = "dram"
TIER_SSD = "ssd"
TIER_REMOTE = "remote"


@dataclass(frozen=True)
class TierSpec:
    """One storage tier of a node's artifact cache hierarchy.

    ``capacity`` is in artifact-size units (``math.inf`` for the unbounded
    remote backstop); ``fetch_scale`` multiplies the plan's baseline
    remote ``fetch_artifact`` duration when the artifact is served from
    this tier — 0.0 for GPU-resident (nothing to move), 1.0 for remote.
    """

    name: str
    capacity: float
    fetch_scale: float

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidValueError("tier needs a non-empty name")
        if self.capacity < 0:
            raise InvalidValueError(
                f"tier {self.name!r}: capacity must be >= 0")
        if self.fetch_scale < 0:
            raise InvalidValueError(
                f"tier {self.name!r}: fetch_scale must be >= 0")


#: The GPU / DRAM / SSD / remote ladder, warmest first.  The last tier is
#: the remote backstop: unbounded, scale 1.0 (the flat-store baseline).
DEFAULT_TIERS: Tuple[TierSpec, ...] = (
    TierSpec(TIER_GPU, capacity=1.0, fetch_scale=0.0),
    TierSpec(TIER_DRAM, capacity=2.0, fetch_scale=0.05),
    TierSpec(TIER_SSD, capacity=8.0, fetch_scale=0.35),
    TierSpec(TIER_REMOTE, capacity=math.inf, fetch_scale=1.0),
)


def validate_tiers(tiers: Sequence[TierSpec]) -> Tuple[TierSpec, ...]:
    """Check a tier ladder: unique names, warm-to-cold monotone scales."""
    tiers = tuple(tiers)
    if len(tiers) < 2:
        raise InvalidValueError(
            "a tier ladder needs at least one cache tier plus the remote "
            "backstop")
    names = [t.name for t in tiers]
    if len(set(names)) != len(names):
        raise InvalidValueError(f"duplicate tier names in {names}")
    for warmer, colder in zip(tiers, tiers[1:]):
        if warmer.fetch_scale > colder.fetch_scale:
            raise InvalidValueError(
                f"tier ladder not monotone: {warmer.name!r} "
                f"({warmer.fetch_scale}) is declared warmer than "
                f"{colder.name!r} ({colder.fetch_scale}) but fetches "
                f"slower")
    if not math.isinf(tiers[-1].capacity):
        raise InvalidValueError(
            f"the coldest tier ({tiers[-1].name!r}) is the remote "
            f"backstop and must have infinite capacity")
    return tiers


def fetch_duration(tiers: Sequence[TierSpec], tier_name: str,
                   base: float) -> float:
    """The fetch time from ``tier_name`` given the remote baseline."""
    for tier in tiers:
        if tier.name == tier_name:
            return base * tier.fetch_scale
    raise InvalidValueError(f"unknown tier {tier_name!r}")


@dataclass(frozen=True)
class CacheEvent:
    """One entry of a node cache's append-only event log."""

    seq: int
    kind: str        # "admit" | "hit" | "promote" | "demote" | "evict"
    key: Tuple
    tier: str        # the tier the event happened in / moved the key to


@dataclass(frozen=True)
class ChunkFetchSummary:
    """Aggregate outcome of resolving one chunk-streamed fetch on a node.

    Produced when a cold start's artifact arrives as a content-addressed
    chunk stream (:mod:`repro.core.chunks`) instead of one blob: each
    chunk resolves against the node's chunk-level residency, so a node
    that hosted a *sibling* model sharing chunks starts partially warm.
    """

    chunks: int                  # chunks in the manifest stream
    hits: int                    # chunks already resident on the node
    bytes_deduped: float         # bytes of resident chunks not re-fetched
    foreground_bytes: float      # bytes actually fetched before readiness
    foreground_seconds: float    # tier-resolved foreground fetch seconds


@dataclass(frozen=True)
class FetchResolution:
    """Outcome of resolving one cold start's artifact fetch on a node."""

    node_id: int
    tier: str                 # tier the artifact is served from
    hit: bool                 # resident warmer than the remote backstop
    base_duration: float      # the plan's remote fetch_artifact seconds
    duration: float           # tier-resolved seconds actually charged
    #: ``(key, tier)`` pairs pushed out of the hierarchy entirely.
    evicted: Tuple[Tuple[Tuple, str], ...] = ()
    #: ``(from_tier, to_tier)`` when the fetched artifact moved warmer.
    promoted: Optional[Tuple[str, str]] = None
    #: Per-chunk accounting when the fetch was chunk-streamed; None for
    #: blob-granular fetches (and under the flat policy).
    chunks: Optional[ChunkFetchSummary] = None

    @property
    def seconds_saved(self) -> float:
        return max(0.0, self.base_duration - self.duration)


class NodeCache:
    """One node's tiered artifact cache: LRU per tier, demotion cascade.

    An artifact is resident in at most one cache tier (the remote
    backstop is implicit and holds everything).  Admissions land in the
    tier requested; overflow demotes the tier's LRU victim one tier
    colder, cascading until the hierarchy's coldest cache tier spills the
    victim out entirely.  Hits refresh LRU order and promote the artifact
    one tier warmer — repeated cold starts on a node walk its artifact up
    the ladder toward GPU residency.
    """

    def __init__(self, node_id: int,
                 tiers: Sequence[TierSpec] = DEFAULT_TIERS):
        self.node_id = node_id
        self.tiers = validate_tiers(tiers)
        #: Cache tiers only — the remote backstop holds no residency map.
        self._resident: Dict[str, "OrderedDict[Tuple, float]"] = {
            tier.name: OrderedDict() for tier in self.tiers[:-1]}
        self.events: List[CacheEvent] = []
        self._seq = 0

    # -- introspection -------------------------------------------------------

    @property
    def remote(self) -> TierSpec:
        return self.tiers[-1]

    def tier_index(self, name: str) -> int:
        for index, tier in enumerate(self.tiers):
            if tier.name == name:
                return index
        raise InvalidValueError(f"unknown tier {name!r}")

    def tier_of(self, key: Tuple) -> Optional[str]:
        """The cache tier holding ``key``, or None (remote only)."""
        for tier in self.tiers[:-1]:
            if key in self._resident[tier.name]:
                return tier.name
        return None

    def load(self, tier_name: str) -> float:
        """Summed artifact sizes resident in one cache tier."""
        return sum(self._resident[tier_name].values())

    def resident_keys(self, tier_name: str) -> List[Tuple]:
        """LRU-to-MRU keys resident in one cache tier."""
        return list(self._resident[tier_name])

    # -- mutation ------------------------------------------------------------

    def _log(self, kind: str, key: Tuple, tier: str) -> None:
        self.events.append(CacheEvent(self._seq, kind, key, tier))
        self._seq += 1

    def _drop(self, key: Tuple) -> None:
        for residency in self._resident.values():
            residency.pop(key, None)

    def _place(self, key: Tuple, size: float, index: int,
               kind: str) -> List[Tuple[Tuple, str]]:
        """Insert ``key`` into tier ``index``, cascading demotions.

        Skips tiers too small to ever hold the artifact; returns the
        ``(key, tier)`` pairs that fell out of the hierarchy entirely.
        """
        spilled: List[Tuple[Tuple, str]] = []
        while index < len(self.tiers) - 1 \
                and size > self.tiers[index].capacity:
            index += 1
        if index >= len(self.tiers) - 1:
            # Nothing below remote can hold it: not cached anywhere.
            self._log("evict", key, self.remote.name)
            spilled.append((key, self.remote.name))
            return spilled
        tier = self.tiers[index]
        residency = self._resident[tier.name]
        while residency and self.load(tier.name) + size > tier.capacity:
            victim, victim_size = next(iter(residency.items()))
            residency.pop(victim)
            spilled.extend(self._place(victim, victim_size, index + 1,
                                       "demote"))
        residency[key] = size
        self._log(kind, key, tier.name)
        return spilled

    def admit(self, key: Tuple, size: float,
              tier_name: str = TIER_DRAM) -> List[Tuple[Tuple, str]]:
        """Admit a freshly fetched artifact into ``tier_name``.

        Returns the ``(key, tier)`` pairs the admission pushed out of the
        cache hierarchy entirely (the eviction events metrics count).
        """
        if size <= 0:
            raise InvalidValueError("artifact size must be positive")
        self._drop(key)
        return self._place(key, size, self.tier_index(tier_name), "admit")

    def touch(self, key: Tuple) -> None:
        """Refresh ``key``'s LRU position within its tier."""
        tier = self.tier_of(key)
        if tier is not None:
            self._resident[tier].move_to_end(key)

    def hit(self, key: Tuple) -> Tuple[str, Optional[Tuple[str, str]],
                                       List[Tuple[Tuple, str]]]:
        """Serve one hit: LRU-refresh, then promote one tier warmer.

        Returns ``(tier_served_from, (from, to) | None, spilled)``.
        """
        tier_name = self.tier_of(key)
        if tier_name is None:
            raise InvalidValueError(
                f"hit on non-resident artifact {key!r}")
        self._log("hit", key, tier_name)
        index = self.tier_index(tier_name)
        residency = self._resident[tier_name]
        residency.move_to_end(key)
        if index == 0:
            return tier_name, None, []
        size = residency.pop(key)
        warmer = index - 1
        spilled = self._place(key, size, warmer, "promote")
        landed = self.tier_of(key)
        promoted = (tier_name, landed) \
            if landed is not None and landed != tier_name else None
        return tier_name, promoted, spilled


class PlacementPolicy:
    """Chooses the node a cold start lands on and prices its fetch.

    Subclasses override :meth:`place` (node choice among the free nodes)
    and :meth:`resolve_fetch` (cache bookkeeping plus the tier-resolved
    ``fetch_artifact`` duration).  The base class owns the per-node
    caches and the launch counters the least-loaded fallback uses.
    """

    name = "base"

    def __init__(self, num_nodes: int,
                 tiers: Sequence[TierSpec] = DEFAULT_TIERS):
        if num_nodes <= 0:
            raise InvalidValueError("num_nodes must be positive")
        self.tiers = validate_tiers(tiers)
        self.caches = [NodeCache(node, self.tiers)
                       for node in range(num_nodes)]
        #: Per-node *chunk*-level residency, created lazily on the first
        #: chunk-streamed fetch: a separate hierarchy keyed by content
        #: digest, so chunk bookkeeping never evicts whole-artifact
        #: entries (blob-granular runs stay bit-identical).
        self._chunk_caches: List[Optional[NodeCache]] = [None] * num_nodes
        #: Cold starts placed per node — the least-loaded tie-breaker.
        self.placements = [0] * num_nodes

    # -- helpers -------------------------------------------------------------

    def _least_loaded(self, free_nodes: Sequence[int]) -> int:
        return min(free_nodes, key=lambda node: (self.placements[node],
                                                 node))

    def _chunk_cache(self, node_id: int) -> NodeCache:
        """The node's chunk-residency hierarchy, created on first use."""
        cache = self._chunk_caches[node_id]
        if cache is None:
            cache = NodeCache(node_id, self.tiers)
            self._chunk_caches[node_id] = cache
        return cache

    def record_placement(self, node_id: int) -> None:
        self.placements[node_id] += 1

    # -- policy hooks --------------------------------------------------------

    def place(self, free_nodes: Sequence[int], key: Optional[Tuple]) -> int:
        """The free node this cold start should launch on."""
        raise NotImplementedError

    def choose_victim(self, nodes: Sequence[Optional[int]],
                      key: Optional[Tuple]) -> int:
        """Which eviction candidate to retire so ``key`` can launch.

        ``nodes`` holds each candidate's primary node id (None when the
        pool runs without node identity), in the pool's legacy scan
        order.  Returns an index into ``nodes``; the base (and flat)
        behaviour picks the first candidate — the pre-placement scan.
        """
        return 0

    def resolve_fetch(self, node_id: int, key: Optional[Tuple],
                      size: float, base_duration: float
                      ) -> Optional[FetchResolution]:
        """Price the artifact fetch on ``node_id`` and update its cache.

        ``None`` means the policy does not manage artifact locality (the
        flat baseline): the caller charges the plan's own fetch duration
        and records nothing.
        """
        raise NotImplementedError

    def resolve_chunk_fetch(self, node_id: int, digest: str, size: float,
                            base_duration: float
                            ) -> Optional[FetchResolution]:
        """Price one content-addressed chunk's fetch on ``node_id``.

        ``digest`` identifies the chunk *by content*, so two models
        sharing a chunk hit each other's residency.  ``size`` is the
        chunk's share of the artifact's tier-capacity footprint and
        ``base_duration`` its share of the plan's remote fetch time.
        ``None`` means the policy does not track chunk residency (the
        flat baseline): the caller keeps the blob-granular resolution.
        """
        return None


class FlatPlacement(PlacementPolicy):
    """The pre-placement baseline: first free node, remote-cost fetches.

    Performs no cache bookkeeping and returns no resolution, so runs
    under ``policy="flat"`` are bit-identical to the simulators before
    the placement layer existed.
    """

    name = "flat"

    def place(self, free_nodes: Sequence[int],
              key: Optional[Tuple]) -> int:
        return min(free_nodes)

    def resolve_fetch(self, node_id: int, key: Optional[Tuple],
                      size: float, base_duration: float
                      ) -> Optional[FetchResolution]:
        return None


class LocalityPlacement(PlacementPolicy):
    """Route to the free node holding the artifact in the warmest tier.

    Ties (same tier warmth) and the nothing-resident case fall back to
    the least-loaded free node, lowest node id first.  Misses fetch at
    the remote baseline and admit the artifact into the node's DRAM
    tier; hits fetch at the resident tier's cost and promote one tier
    warmer.
    """

    name = "locality"

    #: Tier a freshly fetched artifact is admitted into (host memory —
    #: the deserialized bytes land in DRAM before moving anywhere else).
    admit_tier = TIER_DRAM

    def place(self, free_nodes: Sequence[int],
              key: Optional[Tuple]) -> int:
        if key is None:
            return self._least_loaded(free_nodes)
        best: Optional[Tuple[int, int]] = None   # (tier index, node)
        for node in free_nodes:
            tier = self.caches[node].tier_of(key)
            if tier is None:
                continue
            rank = (self.caches[node].tier_index(tier), node)
            if best is None or rank < best:
                best = rank
        if best is not None:
            return best[1]
        return self._fallback(free_nodes, key)

    def _fallback(self, free_nodes: Sequence[int],
                  key: Tuple) -> int:
        """Where to place when no free node holds the artifact."""
        return self._least_loaded(free_nodes)

    def choose_victim(self, nodes: Sequence[Optional[int]],
                      key: Optional[Tuple]) -> int:
        """Retire the candidate whose node already holds the artifact.

        Evicting that instance frees exactly the node where ``key`` is
        warmest, so the ensuing launch lands on its own residency; with
        nothing resident anywhere, fall back to the first candidate (the
        legacy scan order).
        """
        if key is None:
            return 0
        best: Optional[Tuple[int, int]] = None   # (tier index, list index)
        for index, node in enumerate(nodes):
            if node is None:
                continue
            tier = self.caches[node].tier_of(key)
            if tier is None:
                continue
            rank = (self.caches[node].tier_index(tier), index)
            if best is None or rank < best:
                best = rank
        return best[1] if best is not None else 0

    def resolve_fetch(self, node_id: int, key: Optional[Tuple],
                      size: float, base_duration: float
                      ) -> Optional[FetchResolution]:
        if key is None:
            return None
        cache = self.caches[node_id]
        if cache.tier_of(key) is None:
            spilled = cache.admit(key, size, self.admit_tier)
            return FetchResolution(
                node_id=node_id, tier=cache.remote.name, hit=False,
                base_duration=base_duration, duration=base_duration,
                evicted=tuple(spilled))
        tier, promoted, spilled = cache.hit(key)
        return FetchResolution(
            node_id=node_id, tier=tier, hit=True,
            base_duration=base_duration,
            duration=fetch_duration(self.tiers, tier, base_duration),
            evicted=tuple(spilled), promoted=promoted)

    def resolve_chunk_fetch(self, node_id: int, digest: str, size: float,
                            base_duration: float
                            ) -> Optional[FetchResolution]:
        """Resolve one chunk against the node's chunk-level residency.

        Mirrors :meth:`resolve_fetch` at chunk granularity: a miss
        fetches at the remote baseline and admits the chunk into
        ``admit_tier``; a hit fetches at the resident tier's cost and
        promotes it one tier warmer.  Residency is keyed by content
        digest, so sibling models sharing chunks warm each other.
        """
        cache = self._chunk_cache(node_id)
        key = ("chunk", digest)
        # Tier capacities are in artifact-size units; a zero-share chunk
        # still needs a positive footprint to be admissible.
        size = max(size, 1e-9)
        if cache.tier_of(key) is None:
            spilled = cache.admit(key, size, self.admit_tier)
            return FetchResolution(
                node_id=node_id, tier=cache.remote.name, hit=False,
                base_duration=base_duration, duration=base_duration,
                evicted=tuple(spilled))
        tier, promoted, spilled = cache.hit(key)
        return FetchResolution(
            node_id=node_id, tier=tier, hit=True,
            base_duration=base_duration,
            duration=fetch_duration(self.tiers, tier, base_duration),
            evicted=tuple(spilled), promoted=promoted)


class AffinityPlacement(LocalityPlacement):
    """Locality placement with Tangram-style residency memory.

    When no free node currently *holds* the artifact, prefer a free node
    that hosted it before (most recently first) over a cold stranger:
    even after eviction, re-fetching onto a node that served the model
    keeps its future hits clustered instead of smearing the artifact
    across the cluster.
    """

    name = "affinity"

    def __init__(self, num_nodes: int,
                 tiers: Sequence[TierSpec] = DEFAULT_TIERS):
        super().__init__(num_nodes, tiers)
        #: key -> node -> last placement sequence number.
        self._hosted: Dict[Tuple, Dict[int, int]] = {}
        self._clock = 0

    def _fallback(self, free_nodes: Sequence[int], key: Tuple) -> int:
        history = self._hosted.get(key, {})
        prior = [node for node in free_nodes if node in history]
        if prior:
            return max(prior, key=lambda node: (history[node], -node))
        return self._least_loaded(free_nodes)

    def choose_victim(self, nodes: Sequence[Optional[int]],
                      key: Optional[Tuple]) -> int:
        """Prefer a resident node's candidate, else an ever-hosting one."""
        pick = super().choose_victim(nodes, key)
        if key is None:
            return pick
        node = nodes[pick] if 0 <= pick < len(nodes) else None
        if node is not None and self.caches[node].tier_of(key) is not None:
            return pick
        history = self._hosted.get(key, {})
        best: Optional[Tuple[Tuple[int, int], int]] = None
        for index, node in enumerate(nodes):
            if node is None or node not in history:
                continue
            rank = (history[node], -index)
            if best is None or rank > best[0]:
                best = (rank, index)
        return best[1] if best is not None else pick

    def resolve_fetch(self, node_id: int, key: Optional[Tuple],
                      size: float, base_duration: float
                      ) -> Optional[FetchResolution]:
        if key is not None:
            self._clock += 1
            self._hosted.setdefault(key, {})[node_id] = self._clock
        return super().resolve_fetch(node_id, key, size, base_duration)


_POLICIES = {
    FlatPlacement.name: FlatPlacement,
    LocalityPlacement.name: LocalityPlacement,
    AffinityPlacement.name: AffinityPlacement,
}


def policy_names() -> Tuple[str, ...]:
    """The registered policy names, alphabetical."""
    return tuple(sorted(_POLICIES))


def make_policy(spec, num_nodes: int,
                tiers: Optional[Sequence[TierSpec]] = None
                ) -> PlacementPolicy:
    """Build a fresh policy for one simulation run.

    ``spec`` may be a registered name (``"flat"``, ``"locality"``,
    ``"affinity"``), ``None`` (the locality default), a
    :class:`PlacementPolicy` subclass / factory callable, or an already
    -built instance (reused as-is — callers own its cache state then).
    """
    tiers = tuple(tiers) if tiers is not None else DEFAULT_TIERS
    if spec is None:
        spec = LocalityPlacement.name
    if isinstance(spec, PlacementPolicy):
        return spec
    if isinstance(spec, str):
        try:
            factory = _POLICIES[spec]
        except KeyError:
            raise InvalidValueError(
                f"unknown placement policy {spec!r}; "
                f"registered: {', '.join(policy_names())}") from None
        return factory(num_nodes, tiers)
    if callable(spec):
        return spec(num_nodes, tiers)
    raise InvalidValueError(
        f"placement must be a policy name, class, or instance, "
        f"got {spec!r}")
