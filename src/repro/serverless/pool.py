"""Shared event-kernel machinery for the cluster simulators.

Before the :mod:`repro.sim` kernel existed, ``serverless/simulator.py``
and ``serverless/cluster.py`` each hand-rolled a near-identical ``heapq``
event loop (duplicated arrival / instance-ready / step-done machinery) and
collapsed a cold start to one scalar.  This module is the one place that
loop now lives: :class:`PoolSimulatorBase` wires a typed
:class:`repro.sim.EventLoop`, executes **stage-granular cold starts**
(each :class:`repro.engine.loadplan.ScheduledStage` of a profile's
timeline becomes a ``cold_stage_done`` event), records every occurrence
into the kernel's trace for the Chrome exporter, and exposes the
stage-boundary cancellation primitive scale-down policies use.

Subclasses own *policy* — routing, capacity, retirement floors — and the
base owns *mechanism*: event kinds, dispatch order, stepping, metrics
plumbing.  Event kinds tie-break in declared order (arrivals before stage
completions before readiness before step completions), matching the
legacy loops' integer kind ordering, so scalar-cold-start runs reproduce
the pre-kernel metrics bit for bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.serverless.autoscale import AutoscalePolicy
from repro.serverless.instance import Instance
from repro.serverless.metrics import SimulationMetrics
from repro.serverless.placement import (
    ChunkFetchSummary,
    FetchResolution,
    PlacementPolicy,
)
from repro.sim import EventLoop

#: Event kinds, in tie-break (dispatch-priority) order.  IDLE_TICK
#: deliberately sorts *after* every other kind: an arrival, stage
#: completion, or step completion co-timed with an idle re-check always
#: dispatches first, so a request landing at the exact instant a
#: keep-alive window expires reaches the instance before the retirement
#: decision runs — the tie-break is the kernel's ``(time, priority,
#: seq)`` order, not handler luck.
ARRIVAL = "arrival"
COLD_STAGE_DONE = "cold_stage_done"
INSTANCE_READY = "instance_ready"
STEP_DONE = "step_done"
IDLE_TICK = "idle_tick"

_EPS = 1e-12


def _track(instance: Instance) -> str:
    """The trace track one instance's events land on."""
    return f"instance-{instance.instance_id}"


class PoolSimulatorBase:
    """The discrete-event core shared by both cluster simulators.

    Provides the event loop (:attr:`loop`), instance lifecycle events,
    stage-granular cold starts, the serving step cycle, keep-alive
    retirement, and cold-start cancellation.  Subclasses implement
    ``_route`` (what happens on an arrival), ``_metrics_for`` (which
    :class:`SimulationMetrics` an instance reports into), and
    ``_live_instances``; they may override ``_retirement_floor`` and
    ``_consider_abort`` for policy.
    """

    #: Idle seconds before a non-spare instance retires (seeds the
    #: default :class:`~repro.serverless.autoscale.KeepAlivePolicy`).
    keep_alive: float = 20.0

    #: Scale-up/scale-down policy layer (repro.serverless.autoscale);
    #: None falls back to the inline fixed keep-alive comparison.
    autoscaler: Optional[AutoscalePolicy] = None

    #: Locality layer (repro.serverless.placement); None runs the pool
    #: without node identity at all (legacy direct-construction paths).
    placement_policy: Optional[PlacementPolicy] = None

    loop: EventLoop
    horizon: float = 0.0

    # -- subclass hooks -------------------------------------------------------

    def _route(self, payload: object, now: float) -> None:
        """Handle one arrival payload (request or tagged request)."""
        raise NotImplementedError

    def _metrics_for(self, instance: Instance) -> SimulationMetrics:
        """The metrics sink ``instance``'s events are recorded into."""
        raise NotImplementedError

    def _live_instances(self) -> List[Instance]:
        """Every non-retired instance in the pool."""
        raise NotImplementedError

    def _retirement_floor(self) -> int:
        """Minimum live-instance count keep-alive retirement preserves."""
        return 0

    def _consider_abort(self, instance: Instance, stage: object,
                        now: float) -> None:
        """Scale-down policy hook, called at every cold-stage boundary."""

    def _pool_size(self) -> int:
        """Number of cluster nodes (GPUs) behind this pool."""
        return 0

    # -- autoscale hooks ------------------------------------------------------

    def _autoscaler_for(self, model: Optional[str]) -> \
            Optional[AutoscalePolicy]:
        """The autoscale policy governing ``model`` (one pool-wide here)."""
        return self.autoscaler

    def _model_of(self, instance: Instance) -> Optional[str]:
        """The autoscale scope an instance belongs to (None = pool-wide)."""
        return None

    def _payload_model(self, payload: object) -> Optional[str]:
        """The autoscale scope one arrival payload targets."""
        return None

    def _scope_live(self, model: Optional[str]) -> List[Instance]:
        """Live instances in one autoscale scope (policies consult this)."""
        return self._live_instances()

    def _can_launch(self, model: Optional[str]) -> bool:
        """Whether capacity remains for one more instance of ``model``."""
        return False

    def _launch_cold_for(self, model: Optional[str],
                         now: float) -> Optional[Instance]:
        """Launch one cold instance for ``model`` (proactive scale-up)."""
        return None

    # -- artifact placement ---------------------------------------------------

    def _free_nodes(self) -> List[int]:
        """Nodes not occupied by any live instance, ascending."""
        occupied = {node for inst in self._live_instances()
                    for node in inst.node_ids}
        return [node for node in range(self._pool_size())
                if node not in occupied]

    def _resolve_placement(self, key: Optional[Tuple], size: float,
                           base_fetch: float, needed: int = 1,
                           cold: bool = True, chunks: Optional[Sequence] = None
                           ) -> Tuple[Tuple[int, ...],
                                      Optional[FetchResolution]]:
        """Pick the node(s) for one launch and price its artifact fetch.

        Returns ``(node_ids, resolution)``: the nodes the instance will
        occupy (empty when the pool runs without the placement layer)
        and the policy's tier-resolved fetch outcome (None under the
        flat policy and for warm launches — the caller then charges the
        plan's own fetch duration unchanged).

        ``chunks`` optionally describes the artifact as a content-
        addressed chunk stream (``ChunkMeta``-shaped objects with
        ``digest``/``nbytes``/``foreground``): the fetch then resolves
        chunk by chunk against the node's chunk-level residency, and the
        returned resolution carries a :class:`ChunkFetchSummary` plus a
        duration equal to the tier-resolved *foreground* fetch seconds.
        """
        policy = self.placement_policy
        if policy is None or self._pool_size() <= 0 or needed <= 0:
            return (), None
        free = self._free_nodes()
        if len(free) < needed:
            return (), None
        if cold and key is not None:
            primary = policy.place(free, key)
        else:
            primary = min(free)
        policy.record_placement(primary)
        others = [node for node in free if node != primary][:needed - 1]
        nodes = (primary, *others)
        resolution = None
        if cold:
            resolution = policy.resolve_fetch(primary, key, size,
                                              base_fetch)
            if chunks and resolution is not None:
                resolution = self._resolve_chunk_stream(
                    policy, primary, chunks, size, base_fetch, resolution)
        return nodes, resolution

    def _resolve_chunk_stream(self, policy: PlacementPolicy, node_id: int,
                              chunks: Sequence, size: float,
                              base_fetch: float,
                              resolution: FetchResolution
                              ) -> FetchResolution:
        """Re-price one cold start's fetch as a per-chunk stream.

        Each chunk resolves independently against ``node_id``'s chunk
        residency (content-addressed, so sibling models share warmth);
        the aggregate keeps the blob-granular resolution's node/tier/hit
        bookkeeping but replaces its duration with the summed foreground
        chunk fetch times and attaches the :class:`ChunkFetchSummary`
        the metrics layer consumes.  A policy that does not track chunks
        (flat) leaves the blob-granular resolution untouched.
        """
        from dataclasses import replace

        total_bytes = float(sum(c.nbytes for c in chunks)) or 1.0
        fg_bytes = float(sum(c.nbytes for c in chunks if c.foreground)) \
            or 1.0
        hits = 0
        bytes_deduped = 0.0
        fetched_fg_bytes = 0.0
        fg_seconds = 0.0
        fg_base = 0.0
        evicted = list(resolution.evicted)
        for chunk in chunks:
            # Foreground chunks split the plan's foreground fetch budget
            # by byte share; background chunks are priced by the same
            # per-byte rate but do not gate readiness.
            per_base = base_fetch * (chunk.nbytes / fg_bytes)
            per_size = size * (chunk.nbytes / total_bytes)
            resolved = policy.resolve_chunk_fetch(
                node_id, chunk.digest, per_size, per_base)
            if resolved is None:
                return resolution
            if resolved.hit:
                hits += 1
                bytes_deduped += chunk.nbytes
            elif chunk.foreground:
                fetched_fg_bytes += chunk.nbytes
            if chunk.foreground:
                fg_seconds += resolved.duration
                fg_base += per_base
            evicted.extend(resolved.evicted)
        summary = ChunkFetchSummary(
            chunks=len(chunks), hits=hits, bytes_deduped=bytes_deduped,
            foreground_bytes=fetched_fg_bytes,
            foreground_seconds=fg_seconds)
        return replace(resolution, duration=fg_seconds,
                       base_duration=fg_base, evicted=tuple(evicted),
                       chunks=summary)

    def _tier_resolved_profile(self, profile,
                               resolution: Optional[FetchResolution],
                               store_hit: bool = False):
        """Rewrite a profile's ``fetch_artifact`` stage to its tier cost.

        ``resolution`` prices the fetch from the placement layer's cache
        hierarchy; ``store_hit`` (the artifact store's in-memory LRU)
        independently caps it at the DRAM tier's cost — the deserialized
        bytes are already in host memory, so the flat remote fetch must
        not be charged again.  Returns the profile unchanged when there
        is nothing to rewrite (no timeline, no fetch stage, same cost).
        """
        if profile is None:
            return None
        base = profile.fetch_duration
        if base <= 0:
            return profile
        duration = base if resolution is None else resolution.duration
        if store_hit:
            from repro.serverless.placement import (
                DEFAULT_TIERS,
                TIER_DRAM,
                fetch_duration,
            )
            tiers = self.placement_policy.tiers \
                if self.placement_policy is not None else DEFAULT_TIERS
            if any(tier.name == TIER_DRAM for tier in tiers):
                duration = min(duration,
                               fetch_duration(tiers, TIER_DRAM, base))
        return profile.with_fetch_duration(duration)

    def _record_placement(self, instance: Instance,
                          resolution: Optional[FetchResolution]) -> None:
        """Flow one fetch resolution into metrics and the kernel trace."""
        if resolution is None:
            return
        instance.fetch_tier = resolution.tier
        metrics = self._metrics_for(instance)
        metrics.record_tier_fetch(resolution.tier, resolution.hit,
                                  resolution.seconds_saved)
        now = self.loop.now
        self.loop.trace.mark(
            "artifact_fetch", now, track=_track(instance),
            node=resolution.node_id, tier=resolution.tier,
            hit=resolution.hit,
            seconds=round(resolution.duration, 6))
        if resolution.chunks is not None:
            summary = resolution.chunks
            metrics.record_chunk_fetch(summary.hits, summary.bytes_deduped,
                                       summary.foreground_bytes)
            self.loop.trace.mark(
                "chunk_fetch", now, track=_track(instance),
                node=resolution.node_id, chunks=summary.chunks,
                hits=summary.hits,
                bytes_deduped=round(summary.bytes_deduped, 3),
                foreground_bytes=round(summary.foreground_bytes, 3),
                foreground_seconds=round(summary.foreground_seconds, 6))
        if resolution.promoted is not None:
            metrics.record_tier_promotion(resolution.promoted[1])
            self.loop.trace.mark(
                "artifact_promoted", now, track=_track(instance),
                node=resolution.node_id,
                from_tier=resolution.promoted[0],
                to_tier=resolution.promoted[1])
        for key, tier in resolution.evicted:
            metrics.record_tier_eviction(tier)
            self.loop.trace.mark(
                "artifact_evicted", now, track=_track(instance),
                node=resolution.node_id, artifact=list(key), tier=tier)

    # -- loop lifecycle -------------------------------------------------------

    def _begin_run(self, horizon: float, seed: int = 0) -> EventLoop:
        """Build a fresh event loop with the pool's handlers registered."""
        self.horizon = horizon
        loop = EventLoop(seed=seed)
        loop.on(ARRIVAL, self._on_arrival, priority=0)
        loop.on(COLD_STAGE_DONE, self._on_cold_stage_done, priority=1)
        loop.on(INSTANCE_READY, self._on_instance_ready, priority=2)
        loop.on(STEP_DONE, self._on_step_done, priority=3)
        loop.on(IDLE_TICK, self._on_idle_tick, priority=4)
        self.loop = loop
        return loop

    # -- instance lifecycle ---------------------------------------------------

    def _launch_events(self, instance: Instance) -> None:
        """Schedule the ready event and every cold-stage completion."""
        events = [self.loop.schedule(instance.ready_at, INSTANCE_READY,
                                     instance)]
        for stage in instance.cold_stages:
            events.append(self.loop.schedule(
                instance.launched_at + stage.end, COLD_STAGE_DONE,
                (instance, stage)))
        instance.cold_events = events

    def _cancel_cold_start(self, instance: Instance, now: float,
                           reason: str = "") -> Optional[Tuple[float, str]]:
        """Abort ``instance``'s cold start at the next stage boundary.

        Cancels every pending event past the boundary (later restore
        stages and the ready event), retires the instance there, and
        records the cancellation; returns ``(boundary_time, stage_name)``
        or ``None`` when the instance refused (see
        :meth:`Instance.cancel_cold_start`).  The caller is responsible
        for re-routing any requests still waiting on the instance.
        """
        boundary = instance.cancel_cold_start(now)
        if boundary is None:
            return None
        boundary_time, boundary_stage = boundary
        for event in instance.cold_events:
            if event.time > boundary_time + _EPS:
                self.loop.cancel(event)
        self._metrics_for(instance).record_cancelled_cold_start(
            boundary_stage)
        self.loop.trace.mark("cold_start_cancelled", now,
                             track=_track(instance), stage=boundary_stage,
                             effective_at=boundary_time, reason=reason)
        return boundary

    # -- event handlers -------------------------------------------------------

    def _on_arrival(self, event) -> None:
        """Dispatch one arrival to the subclass's router."""
        self._dispatch_arrival(event.payload, self.loop.now)

    def _dispatch_arrival(self, payload: object, now: float) -> None:
        """Notify the autoscaler, route the arrival, apply scale-up."""
        model = self._payload_model(payload)
        policy = self._autoscaler_for(model)
        if policy is not None:
            policy.on_arrival(self, model, now)
        self._route(payload, now)
        if policy is not None:
            self._apply_scale_up(policy, model, now)

    def _on_cold_stage_done(self, event) -> None:
        """Account one completed cold-start stage and poll the policy."""
        instance, stage = event.payload
        now = self.loop.now
        self._metrics_for(instance).record_cold_stage(stage.name,
                                                      stage.duration)
        self.loop.trace.span(
            stage.name, instance.launched_at + stage.start,
            instance.launched_at + stage.end, track=_track(instance),
            lane=getattr(stage, "lane", ""),
            background=bool(getattr(stage, "background", False)),
            critical=bool(getattr(stage, "critical", False)),
            cold_start=True)
        if stage.name.startswith("degrade_"):
            # A degradation-ladder rung executed on this cold start: make
            # it visible at cluster level, not only inside the engine.
            self.loop.trace.mark("ladder_rung", now, track=_track(instance),
                                 stage=stage.name)
        policy = self._autoscaler_for(self._model_of(instance))
        if policy is not None:
            policy.on_stage_boundary(self, instance, stage, now)
        self._consider_abort(instance, stage, now)

    def _on_instance_ready(self, event) -> None:
        """An instance finished its foreground cold start: start serving."""
        instance = event.payload
        if instance.retired:
            return
        self.loop.trace.mark("instance_ready", self.loop.now,
                             track=_track(instance))
        self._maybe_step(instance, self.loop.now)
        if not instance.has_work and not instance.stepping:
            # Ready with nothing queued: start the idle clock so window
            # -enforcing policies retire it even if it never serves.
            policy = self._autoscaler_for(self._model_of(instance))
            if policy is not None and not instance.hot_spare:
                self._schedule_idle_tick(policy, instance, self.loop.now)

    def _on_step_done(self, event) -> None:
        """Record one serving iteration's TTFTs/completions; continue."""
        instance, result = event.payload
        now = self.loop.now
        instance.stepping = False
        metrics = self._metrics_for(instance)
        for request, ttft in result.ttfts:
            metrics.record_ttft(
                ttft, cold_tax=self._cold_tax(instance, request, ttft))
        for completion in result.completed:
            metrics.record_completion(
                completion.latency,
                in_horizon=completion.completion_time <= self.horizon)
        if result.background_contention > 0:
            metrics.record_background_contention(
                result.background_contention)
        self._maybe_step(instance, now)
        self._maybe_retire(instance, now)

    # -- serving / retirement -------------------------------------------------

    def _maybe_step(self, instance: Instance, now: float) -> None:
        """Start one continuous-batching iteration if the instance can."""
        if (instance.stepping or instance.retired
                or now < instance.ready_at or not instance.has_work):
            return
        instance.stepping = True
        result = instance.run_step(now)
        self.loop.schedule(now + result.duration, STEP_DONE,
                           (instance, result))
        self.loop.trace.span(
            "serve_step", now, now + result.duration,
            track=_track(instance), admitted=len(result.ttfts),
            completed=len(result.completed),
            contended=result.background_contention > 0)

    def _maybe_retire(self, instance: Instance, now: float) -> None:
        """Retire an idle instance once its policy's window expires.

        The decision is delegated to the autoscale policy
        (``should_retire``); without one, the legacy inline fixed
        keep-alive comparison applies unchanged.  When the policy
        declines *and* wants the window actually enforced
        (``idle_check_delay``), an :data:`IDLE_TICK` is scheduled at the
        window's expiry — it tie-breaks after any co-timed arrival, so a
        request landing at the exact expiry instant always wins.
        """
        if instance.has_work or instance.stepping or instance.retired:
            return
        if instance.hot_spare:
            return   # §2.4: hot spares stay provisioned (and waste GPUs)
        policy = self._autoscaler_for(self._model_of(instance))
        if policy is None:
            retire = now - instance.last_busy_at >= self.keep_alive
        else:
            retire = policy.should_retire(self, instance, now)
        if retire and len(self._live_instances()) > self._retirement_floor():
            if policy is not None:
                policy._decide("retire")
            instance.retired = True
            instance.retired_at = now
            self.loop.trace.mark("retired", now, track=_track(instance))
        elif policy is not None:
            self._schedule_idle_tick(policy, instance, now)

    # -- autoscale mechanism ---------------------------------------------------

    def _cold_tax(self, instance: Instance, request, ttft: float) -> float:
        """Seconds of one request's TTFT attributable to a cold start.

        The part of the wait spent before the serving instance's ready
        instant: a request admitted by an already-warm instance pays 0.
        """
        return min(ttft, max(0.0, instance.ready_at - request.arrival_time))

    def _schedule_idle_tick(self, policy: AutoscalePolicy,
                            instance: Instance, now: float) -> None:
        """Arm one idle re-check at the policy's requested delay.

        The tick carries the instance's current ``last_busy_at`` as a
        staleness stamp: serving work between scheduling and firing
        advances the stamp, and the stale tick is ignored (the next idle
        period arms its own).
        """
        delay = policy.idle_check_delay(self, instance, now)
        if delay is None:
            return
        policy._decide("idle_tick_armed")
        self.loop.schedule(now + max(0.0, delay), IDLE_TICK,
                           (instance, instance.last_busy_at))

    def _on_idle_tick(self, event) -> None:
        """Re-evaluate retirement for a (possibly no longer) idle instance."""
        instance, stamp = event.payload
        now = self.loop.now
        if (instance.retired or instance.stepping or instance.has_work
                or instance.last_busy_at != stamp):
            return   # stale: the instance served (or died) since arming
        policy = self._autoscaler_for(self._model_of(instance))
        if policy is None:
            return
        policy.on_idle_tick(self, instance, now)
        self._maybe_retire(instance, now)

    def _apply_scale_up(self, policy: AutoscalePolicy,
                        model: Optional[str], now: float) -> None:
        """Launch cold instances until the policy's target is met.

        Best-effort: stops at the pool's capacity (``_can_launch``) or
        when the subclass cannot place a launch.  Every proactive launch
        is counted on the policy and marked in the trace.
        """
        target = policy.target_instances(self, model, now)
        if target <= 0:
            return
        while len(self._scope_live(model)) < target \
                and self._can_launch(model):
            instance = self._launch_cold_for(model, now)
            if instance is None:
                return
            policy._decide("scale_up")
            self.loop.trace.mark("autoscale_up", now,
                                 track=_track(instance), policy=policy.name)
