"""Multi-GPU (tensor-parallel) support — the paper's §8 future work.

The paper materializes single-GPU instances and notes that "Medusa's core
concepts remain applicable" to multi-GPU serving, leaving the construction
of per-rank indirect index pointer tables as future work.  This package
implements that extension for tensor parallelism:

- each rank runs its own simulated process with a 1/N shard of the weights
  (per-rank declared sizes), its own KV shard, and its own CUDA graphs;
- the offline phase materializes one artifact *per rank*; ranks are
  structurally identical, which the implementation verifies;
- the online phase restores every rank in its own fresh process and the
  cold start completes when the slowest rank does, plus the distributed
  (NCCL-style) initialization that tensor parallelism adds.
"""

from repro.multigpu.tp import (
    TensorParallelColdStart,
    TensorParallelEngine,
    TensorParallelMedusa,
    rank_config,
)

__all__ = [
    "TensorParallelColdStart",
    "TensorParallelEngine",
    "TensorParallelMedusa",
    "rank_config",
]
