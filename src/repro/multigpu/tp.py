"""Tensor-parallel engines and per-rank Medusa materialization (§8).

Sharding model: tensor parallelism splits every weight matrix across ranks,
so each rank holds ``param_bytes / tp_degree`` and runs the same layer-
structured forwarding; an allreduce follows the attention and MLP blocks.
Per-rank engines therefore reuse the single-GPU machinery on a *rank
config* (same architecture, sharded bytes), and the cross-rank effects are
the cold-start barrier (every stage completes when the slowest rank does),
the one-off distributed-communicator initialization, and the per-step
allreduce latency during serving.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.artifact import MaterializedModel
from repro.core.offline import OfflinePhase, OfflineReport
from repro.core.online import OnlineRestorer, medusa_cold_start
from repro.engine import ColdStartReport, LLMEngine, Strategy
from repro.errors import InvalidValueError, RestorationError
from repro.models.config import ModelConfig
from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel
from repro.simgpu.process import ExecutionMode

#: One-off cost of bringing up the NCCL-style communicator group.  Paid by
#: every strategy — materialization does not (and cannot) remove it.
DIST_INIT_TIME = 0.95

#: Per-decode-step allreduce latency components (ring allreduce over NVLink).
ALLREDUCE_BASE = 12e-6          # per collective launch
ALLREDUCE_PER_BYTE = 1 / 250e9  # effective NVLink allreduce bandwidth


def rank_config(config, tp_degree: int, rank: int) -> ModelConfig:
    """The per-rank view of a model: same structure, sharded weights."""
    if isinstance(config, str):
        config = get_model_config(config)
    if tp_degree < 1:
        raise InvalidValueError(f"tp_degree must be >= 1, got {tp_degree}")
    if not 0 <= rank < tp_degree:
        raise InvalidValueError(f"rank {rank} outside tp_degree {tp_degree}")
    if tp_degree == 1:
        return config
    shard_bytes = config.param_bytes // tp_degree
    return dataclasses.replace(
        config,
        name=f"{config.name}-tp{tp_degree}r{rank}",
        param_bytes=shard_bytes,
    )


def allreduce_time(hidden_size: int, batch_size: int, tp_degree: int,
                   collectives_per_step: int = 2) -> float:
    """Per-decode-step allreduce cost added by tensor parallelism."""
    if tp_degree <= 1:
        return 0.0
    payload = batch_size * hidden_size * 2          # fp16 activations
    ring_factor = 2.0 * (tp_degree - 1) / tp_degree
    per_collective = ALLREDUCE_BASE + payload * ring_factor * ALLREDUCE_PER_BYTE
    return collectives_per_step * per_collective


@dataclass
class TensorParallelColdStart:
    """The composed multi-rank cold start."""

    model: str
    tp_degree: int
    strategy: Strategy
    rank_reports: List[ColdStartReport]
    dist_init_time: float = DIST_INIT_TIME

    @property
    def loading_time(self) -> float:
        """Barrier semantics: the slowest rank gates readiness."""
        return (max(r.loading_time for r in self.rank_reports)
                + self.dist_init_time)

    @property
    def cold_start_time(self) -> float:
        return (max(r.cold_start_time for r in self.rank_reports)
                + self.dist_init_time)


class TensorParallelEngine:
    """N per-rank engines behind one cold-start/serving facade."""

    def __init__(self, config, tp_degree: int,
                 strategy: Strategy = Strategy.VLLM, seed: int = 0,
                 mode: ExecutionMode = ExecutionMode.TIMING,
                 cost_model: Optional[CostModel] = None):
        if isinstance(config, str):
            config = get_model_config(config)
        self.config = config
        self.tp_degree = tp_degree
        self.strategy = strategy
        self.engines = [
            LLMEngine(rank_config(config, tp_degree, rank), strategy,
                      seed=seed * 131 + rank, mode=mode,
                      cost_model=cost_model)
            for rank in range(tp_degree)
        ]

    def cold_start(self, restorers: Optional[List] = None
                   ) -> TensorParallelColdStart:
        reports = []
        for rank, engine in enumerate(self.engines):
            restorer = restorers[rank] if restorers else None
            reports.append(engine.cold_start(restorer=restorer))
        return TensorParallelColdStart(
            model=self.config.name, tp_degree=self.tp_degree,
            strategy=self.strategy, rank_reports=reports,
            dist_init_time=DIST_INIT_TIME if self.tp_degree > 1 else 0.0)

    def decode_step(self, batch_size: int, use_graphs: bool = True) -> float:
        """One TP decode iteration: slowest rank + the allreduces."""
        rank_times = [engine.decode_step(batch_size, use_graphs=use_graphs)
                      for engine in self.engines]
        return max(rank_times) + allreduce_time(
            self.config.hidden_size, batch_size, self.tp_degree)


class TensorParallelMedusa:
    """Per-rank offline materialization + online restore (§8 future work)."""

    def __init__(self, config, tp_degree: int, seed: int = 0,
                 mode: ExecutionMode = ExecutionMode.TIMING,
                 cost_model: Optional[CostModel] = None):
        if isinstance(config, str):
            config = get_model_config(config)
        self.config = config
        self.tp_degree = tp_degree
        self.seed = seed
        self.mode = mode
        self.cost_model = cost_model

    # -- offline ----------------------------------------------------------

    def run_offline(self) -> Tuple[List[MaterializedModel],
                                   List[OfflineReport]]:
        """Materialize every rank; verifies the ranks agree structurally."""
        artifacts: List[MaterializedModel] = []
        reports: List[OfflineReport] = []
        for rank in range(self.tp_degree):
            phase = OfflinePhase(
                rank_config(self.config, self.tp_degree, rank),
                seed=self.seed * 977 + rank, mode=self.mode,
                cost_model=self.cost_model)
            artifact, report = phase.run()
            artifacts.append(artifact)
            reports.append(report)
        self._verify_rank_consistency(artifacts)
        return artifacts, reports

    @staticmethod
    def _verify_rank_consistency(artifacts: List[MaterializedModel]) -> None:
        """All ranks must capture the same graph structure.

        Tensor parallelism shards the weights, not the program: rank
        artifacts differ only in kernel symbols (per-rank model names) and
        sizes, never in node counts, batch coverage, or edge structure.
        """
        reference = artifacts[0]
        for rank, artifact in enumerate(artifacts[1:], start=1):
            if set(artifact.graphs) != set(reference.graphs):
                raise RestorationError(
                    f"rank {rank} captured batch sizes "
                    f"{sorted(artifact.graphs)} != rank 0's "
                    f"{sorted(reference.graphs)}")
            for batch, graph in artifact.graphs.items():
                ref_graph = reference.graph(batch)
                if graph.num_nodes != ref_graph.num_nodes:
                    raise RestorationError(
                        f"rank {rank} batch {batch}: {graph.num_nodes} nodes"
                        f" != rank 0's {ref_graph.num_nodes}")
                if sorted(graph.edges) != sorted(ref_graph.edges):
                    raise RestorationError(
                        f"rank {rank} batch {batch}: edge structure diverged")

    # -- online ---------------------------------------------------------------

    def cold_start(self, artifacts: List[MaterializedModel], seed: int = 1
                   ) -> Tuple[TensorParallelEngine, TensorParallelColdStart]:
        if len(artifacts) != self.tp_degree:
            raise RestorationError(
                f"need {self.tp_degree} rank artifacts, got {len(artifacts)}")
        engine = TensorParallelEngine(
            self.config, self.tp_degree, Strategy.MEDUSA, seed=seed,
            mode=self.mode, cost_model=self.cost_model)
        restorers = [OnlineRestorer(artifact) for artifact in artifacts]
        report = engine.cold_start(restorers=restorers)
        return engine, report
