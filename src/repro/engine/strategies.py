"""The compared cold-start strategies (paper §7) and their LoadPlans.

- ``VLLM``: vanilla vLLM — every loading stage runs synchronously.
- ``VLLM_ASYNC``: vLLM plus naive asynchronous weight loading — the weights
  stage overlaps the tokenizer and KV-init stages (with the measured mutual
  interference), but the capture stage still waits for both.
- ``MEDUSA``: full materialization — KV init and CUDA graphs are restored
  from the offline artifact; only the first layer is warmed up/captured, in
  parallel with the weight loading.
- ``NO_CUDA_GRAPH``: vLLM with the capture stage removed — a cheaper cold
  start that forfeits graph-accelerated decoding (Figure 10's extra baseline).
- ``DEFERRED``: the §2.4 alternative the paper argues is ineffective —
  capture is removed from the cold start and performed lazily, per batch
  size, on the first request batch that needs it.  The capture latency is
  not eliminated, merely delayed and dispersed across serving requests.

Each strategy's *schedule* is a declarative
:class:`repro.engine.loadplan.LoadPlan` registered here: a DAG of stages
with resource lanes and contention declarations, placed by the generic
lane scheduler.  New orderings (e.g. the demonstration
``vllm-eager-tokenizer`` plan below, or future ServerlessLLM/Tangram-style
loading) are pure plan definitions — no engine or scheduler edits.
"""

from __future__ import annotations

import enum
import warnings
from typing import Dict, Optional, Sequence, Union

from repro.analysis.effects import (
    ALLOC_MAP,
    ARTIFACT,
    DRIVER_SYMBOLS,
    GRAPHS,
    KV_STATE,
    PARAMS,
    STRUCTURE_STATE,
    TOKENIZER_STATE,
    WEIGHTS_STATE,
    chunk_resource,
    graph_resource,
)
from repro.engine.lanes import CPU, DISK, GPU_COMPUTE, PCIE, Contention
from repro.engine.loadplan import (
    CAPTURE,
    FETCH_ARTIFACT,
    KV_INIT,
    MEDUSA_RESTORE,
    MEDUSA_WARMUP,
    REPLAY_ALLOC,
    STRUCTURE,
    TOKENIZER,
    WEIGHTS,
    LoadPlan,
    PlanStage,
    fetch_chunk_stage,
    restore_graph_stage,
)
from repro.errors import EngineError


class Strategy(enum.Enum):
    """The compared cold-start strategies (see module docstring)."""

    VLLM = "vLLM"
    VLLM_ASYNC = "vLLM+ASYNC"
    MEDUSA = "Medusa"
    NO_CUDA_GRAPH = "w/o CUDA GRAPH"
    DEFERRED = "Deferred capture"

    @property
    def uses_cuda_graphs(self) -> bool:
        return self is not Strategy.NO_CUDA_GRAPH

    @property
    def captures_at_cold_start(self) -> bool:
        return self in (Strategy.VLLM, Strategy.VLLM_ASYNC)

    @property
    def label(self) -> str:
        return self.value


# ---------------------------------------------------------------------------
# Plan registry
# ---------------------------------------------------------------------------

_PLANS: Dict[str, LoadPlan] = {}
_STRATEGY_PLANS: Dict[Strategy, str] = {}


def register_plan(plan: LoadPlan,
                  strategy: Optional[Strategy] = None) -> LoadPlan:
    """Register ``plan`` by name (and optionally as a strategy's default).

    Registration statically verifies the plan
    (:func:`repro.analysis.planlint.lint_plan`): PLN0xx errors — effect
    races between concurrent stages, unresolvable action/contention
    bindings — reject the plan outright; advisories (dead stages,
    redundant deps, lane bubbles) surface as warnings.
    """
    if plan.name in _PLANS:
        raise EngineError(f"a plan named {plan.name!r} is already registered")
    # Imported lazily: repro.analysis reaches back into repro.core.artifact,
    # which is complete by the time any plan registers, but must not be a
    # module-level import here (strategies loads during repro.core's init).
    from repro.analysis.planlint import lint_plan
    report = lint_plan(plan)
    if report.errors:
        raise EngineError(
            f"plan {plan.name!r} failed static verification:\n"
            + "\n".join(d.render() for d in report.errors))
    for advisory in report.warnings:
        warnings.warn(f"plan {plan.name!r}: {advisory.render()}",
                      stacklevel=2)
    _PLANS[plan.name] = plan
    if strategy is not None:
        _STRATEGY_PLANS[strategy] = plan.name
    return plan


def plan_for(key: Union[Strategy, str]) -> LoadPlan:
    """The registered LoadPlan for a strategy or a plan name."""
    if isinstance(key, Strategy):
        name = _STRATEGY_PLANS.get(key)
        if name is None:
            raise EngineError(f"strategy {key} has no registered LoadPlan")
        return _PLANS[name]
    plan = _PLANS.get(key)
    if plan is None:
        available = ", ".join(sorted(_PLANS)) or "<none>"
        raise EngineError(f"no LoadPlan named {key!r}; available: {available}")
    return plan


def registered_plans() -> Dict[str, LoadPlan]:
    """A copy of the plan registry (name -> LoadPlan)."""
    return dict(_PLANS)


# ---------------------------------------------------------------------------
# The strategies' plans.  Declaration order is both the side-effect
# execution order and a topological order of the DAG.
# ---------------------------------------------------------------------------

def _sequential_plan(name: str, with_capture: bool,
                     description: str) -> LoadPlan:
    """Fully serialized loading: each stage depends on the previous one."""
    order = [
        PlanStage(STRUCTURE, CPU, required=True,
                  writes=(STRUCTURE_STATE,)),
        PlanStage(WEIGHTS, PCIE, deps=(STRUCTURE,), required=True,
                  reads=(STRUCTURE_STATE,), writes=(WEIGHTS_STATE,)),
        PlanStage(TOKENIZER, CPU, deps=(WEIGHTS,), required=True,
                  writes=(TOKENIZER_STATE,)),
        PlanStage(KV_INIT, GPU_COMPUTE, deps=(TOKENIZER,),
                  reads=(STRUCTURE_STATE,), writes=(KV_STATE,)),
    ]
    if with_capture:
        order.append(PlanStage(
            CAPTURE, GPU_COMPUTE, deps=(KV_INIT,),
            reads=(STRUCTURE_STATE, WEIGHTS_STATE, KV_STATE),
            writes=(GRAPHS,)))
    return LoadPlan(name, tuple(order), description=description)


VLLM_PLAN = register_plan(_sequential_plan(
    "vllm", with_capture=True,
    description="Vanilla vLLM: five synchronous stages (§2.1)."),
    strategy=Strategy.VLLM)

NO_CUDA_GRAPH_PLAN = register_plan(_sequential_plan(
    "no-cuda-graph", with_capture=False,
    description="Synchronous loading without the capture stage (Fig. 10)."),
    strategy=Strategy.NO_CUDA_GRAPH)

DEFERRED_PLAN = register_plan(_sequential_plan(
    "deferred", with_capture=False,
    description="§2.4: capture is deferred onto the serving path."),
    strategy=Strategy.DEFERRED)

#: Weights stream over PCIe while the CPU loads the tokenizer and the GPU
#: runs the profiling forwarding; the profiling interferes with the copies
#: (the declared contention), and capture must wait for both branches.
VLLM_ASYNC_PLAN = register_plan(LoadPlan(
    "vllm-async",
    (
        PlanStage(STRUCTURE, CPU, required=True,
                  writes=(STRUCTURE_STATE,)),
        PlanStage(WEIGHTS, PCIE, deps=(STRUCTURE,), required=True,
                  contention=Contention((KV_INIT,),
                                        "weight_kv_interference"),
                  reads=(STRUCTURE_STATE,), writes=(WEIGHTS_STATE,)),
        PlanStage(TOKENIZER, CPU, deps=(STRUCTURE,), required=True,
                  writes=(TOKENIZER_STATE,)),
        # The profiling forwarding only needs parameter *shapes*, so it
        # legitimately overlaps the weight stream: reads structure, not
        # weights (declaring a weights read here would be a PLN002 race).
        PlanStage(KV_INIT, GPU_COMPUTE, deps=(TOKENIZER,),
                  reads=(STRUCTURE_STATE,), writes=(KV_STATE,)),
        PlanStage(CAPTURE, GPU_COMPUTE, deps=(WEIGHTS, KV_INIT),
                  reads=(STRUCTURE_STATE, WEIGHTS_STATE, KV_STATE),
                  writes=(GRAPHS,)),
    ),
    description="vLLM + naive asynchronous weight loading (§7.3)."),
    strategy=Strategy.VLLM_ASYNC)

#: Medusa reorders KV initialization before weight loading (restored, so it
#: no longer profiles or interferes), warms up the first layer during the
#: weight load, and only the restore tail — which reads weights-backed
#: state — is serial after every branch (§7.3).
MEDUSA_PLAN = register_plan(LoadPlan(
    "medusa",
    (
        PlanStage(STRUCTURE, CPU, required=True,
                  writes=(STRUCTURE_STATE,)),
        PlanStage(WEIGHTS, PCIE, deps=(STRUCTURE,), required=True,
                  reads=(STRUCTURE_STATE,), writes=(WEIGHTS_STATE,)),
        PlanStage(TOKENIZER, CPU, deps=(STRUCTURE,), required=True,
                  writes=(TOKENIZER_STATE,)),
        PlanStage(KV_INIT, GPU_COMPUTE, deps=(STRUCTURE,),
                  action="restore_kv",
                  reads=(ARTIFACT, STRUCTURE_STATE),
                  writes=(KV_STATE, ALLOC_MAP)),
        PlanStage(MEDUSA_WARMUP, GPU_COMPUTE, deps=(KV_INIT,),
                  action="restore_warmup",
                  reads=(ARTIFACT, KV_STATE, ALLOC_MAP),
                  writes=(ALLOC_MAP, PARAMS, DRIVER_SYMBOLS)),
        PlanStage(MEDUSA_RESTORE, GPU_COMPUTE,
                  deps=(MEDUSA_WARMUP, WEIGHTS, TOKENIZER),
                  action="restore_tail",
                  reads=(ARTIFACT, WEIGHTS_STATE, TOKENIZER_STATE,
                         ALLOC_MAP, PARAMS),
                  writes=(DRIVER_SYMBOLS, GRAPHS)),
    ),
    description="Materialized restore: KV + graphs from the artifact (§3)."),
    strategy=Strategy.MEDUSA)

def pipelined_medusa_plan(batch_sizes: Sequence[int],
                          name: str = "medusa-pipelined") -> LoadPlan:
    """The pipelined Medusa plan for one artifact's captured batch sizes.

    Splits the monolithic ``medusa_restore`` tail into ``fetch_artifact``
    (DISK lane — opening/indexing the binary artifact overlaps structure
    init), ``replay_alloc`` (CPU — the recorded (de)allocation replay), and
    one ``restore_graph[bs]`` stage per captured batch size.  Only the
    first-request batch size — the *largest*, so every request can pad to
    it — restores in the foreground; the remaining graphs are
    ``background=True`` stages that finish behind the serving-ready
    instant, which is what shortens the critical path
    (``Timeline.ready`` < ``Timeline.total``, §7.3).

    Built per artifact (the stage set depends on its batch sizes), so the
    result is passed to ``LLMEngine(plan=...)`` rather than registered;
    :data:`Strategy.MEDUSA`'s registered default stays the monolithic
    :data:`MEDUSA_PLAN`.
    """
    batches = sorted(set(batch_sizes), reverse=True)
    if not batches:
        raise EngineError("pipelined Medusa plan needs at least one "
                          "captured batch size")
    stages = [
        PlanStage(STRUCTURE, CPU, required=True,
                  writes=(STRUCTURE_STATE,)),
        PlanStage(FETCH_ARTIFACT, DISK, writes=(ARTIFACT,)),
        PlanStage(WEIGHTS, PCIE, deps=(STRUCTURE,), required=True,
                  reads=(STRUCTURE_STATE,), writes=(WEIGHTS_STATE,)),
        PlanStage(TOKENIZER, CPU, deps=(STRUCTURE,), required=True,
                  writes=(TOKENIZER_STATE,)),
        PlanStage(KV_INIT, GPU_COMPUTE, deps=(STRUCTURE, FETCH_ARTIFACT),
                  action="restore_kv",
                  reads=(ARTIFACT, STRUCTURE_STATE),
                  writes=(KV_STATE, ALLOC_MAP)),
        # KV restore already waited on the artifact, so a FETCH_ARTIFACT
        # dep here would be redundant (PLN008).
        PlanStage(REPLAY_ALLOC, CPU, deps=(KV_INIT,),
                  reads=(ARTIFACT, ALLOC_MAP), writes=(ALLOC_MAP,)),
        PlanStage(MEDUSA_WARMUP, GPU_COMPUTE, deps=(REPLAY_ALLOC,),
                  action="restore_warmup",
                  reads=(ARTIFACT, KV_STATE, ALLOC_MAP),
                  writes=(PARAMS, DRIVER_SYMBOLS)),
        PlanStage(restore_graph_stage(batches[0]), GPU_COMPUTE,
                  deps=(MEDUSA_WARMUP, WEIGHTS, TOKENIZER),
                  reads=(ARTIFACT, WEIGHTS_STATE, TOKENIZER_STATE,
                         ALLOC_MAP, PARAMS),
                  writes=(DRIVER_SYMBOLS, graph_resource(batches[0]))),
    ]
    prev = restore_graph_stage(batches[0])
    for batch in batches[1:]:
        stage = restore_graph_stage(batch)
        stages.append(PlanStage(
            stage, GPU_COMPUTE, deps=(prev,), background=True,
            reads=(ARTIFACT, ALLOC_MAP, PARAMS, DRIVER_SYMBOLS),
            writes=(graph_resource(batch),)))
        prev = stage
    return LoadPlan(
        name, tuple(stages),
        description="Pipelined materialized restore: lazy artifact fetch, "
                    "replayed allocations, first graph foreground, the "
                    "rest behind the ready instant.")


def chunked_medusa_plan(manifest, name: str = "medusa-chunked") -> LoadPlan:
    """The chunk-streamed Medusa plan for one artifact's manifest.

    Replaces :data:`FETCH_ARTIFACT` with one ``fetch_chunk[i]`` stage per
    manifest chunk, pipelined on the DISK lane.  Foreground instances
    cover exactly what ``restore_graph[0]`` needs — the kernel table,
    replay shards, permanent dumps, every graph head, and the largest
    batch's tail (``manifest.foreground_chunks()``); the tails of the
    remaining batches stream as ``background=True`` fetches paired with
    their background ``restore_graph`` stages.  The restore stages gate on
    the *latest chunk they read* rather than the end of the stream, so
    allocation replay overlaps the still-arriving tail bytes — the
    foreground fetch cost drops from O(artifact) to O(foreground chunks).

    Like :func:`pipelined_medusa_plan` this is built per artifact and
    passed to ``LLMEngine(plan=...)``, not registered.
    """
    # Imported lazily for the same load-order reason as planlint above.
    from repro.core.chunks import (
        KIND_DUMPS,
        KIND_GRAPH_HEAD,
        KIND_GRAPH_TAIL,
        KIND_KERNELS,
        KIND_REPLAY,
    )
    batches = sorted(set(manifest.batches), reverse=True)
    if not batches:
        raise EngineError("chunked Medusa plan needs at least one "
                          "captured batch size")
    index_of = {ref.name: i for i, ref in enumerate(manifest.chunks)}
    resource = {ref.name: chunk_resource(index_of[ref.name])
                for ref in manifest.chunks}
    foreground = manifest.foreground_chunks()
    replay_reads = tuple(resource[ref.name] for ref in foreground
                         if ref.kind == KIND_REPLAY)
    kernel_reads = tuple(resource[ref.name] for ref in foreground
                         if ref.kind == KIND_KERNELS)
    dump_reads = tuple(resource[ref.name] for ref in foreground
                       if ref.kind == KIND_DUMPS)
    head_of = {ref.batch: ref for ref in manifest.chunks
               if ref.kind == KIND_GRAPH_HEAD}
    tail_of = {ref.batch: ref for ref in manifest.chunks
               if ref.kind == KIND_GRAPH_TAIL}

    stages = [
        PlanStage(STRUCTURE, CPU, required=True,
                  writes=(STRUCTURE_STATE,)),
    ]
    # The foreground chunk stream: a dep chain on the DISK lane, so the
    # stages both serialize (one disk) and expose per-chunk completion
    # instants for the restore stages to gate on.
    prev_fetch = None
    fetch_name = {}
    for ref in foreground:
        stage_name = fetch_chunk_stage(index_of[ref.name])
        fetch_name[ref.name] = stage_name
        stages.append(PlanStage(
            stage_name, DISK,
            deps=(prev_fetch,) if prev_fetch else (),
            writes=(resource[ref.name],)))
        prev_fetch = stage_name
    replay_ready = fetch_name[[ref for ref in foreground
                               if ref.kind == KIND_REPLAY][-1].name]
    heads_ready = fetch_name[head_of[batches[-1]].name]
    largest_tail_ready = fetch_name[tail_of[batches[0]].name]

    stages += [
        PlanStage(WEIGHTS, PCIE, deps=(STRUCTURE,), required=True,
                  reads=(STRUCTURE_STATE,), writes=(WEIGHTS_STATE,)),
        PlanStage(TOKENIZER, CPU, deps=(STRUCTURE,), required=True,
                  writes=(TOKENIZER_STATE,)),
        # Gates on the last replay shard, not the stream's end: the KV
        # replay runs while heads and tails are still arriving.
        PlanStage(KV_INIT, GPU_COMPUTE, deps=(STRUCTURE, replay_ready),
                  action="restore_kv",
                  reads=(STRUCTURE_STATE,) + replay_reads,
                  writes=(KV_STATE, ALLOC_MAP)),
        PlanStage(REPLAY_ALLOC, CPU, deps=(KV_INIT,),
                  reads=replay_reads + (ALLOC_MAP,), writes=(ALLOC_MAP,)),
        PlanStage(MEDUSA_WARMUP, GPU_COMPUTE,
                  deps=(REPLAY_ALLOC, heads_ready),
                  action="restore_warmup",
                  reads=kernel_reads + dump_reads
                  + tuple(resource[head_of[b].name] for b in batches)
                  + (KV_STATE, ALLOC_MAP),
                  writes=(PARAMS, DRIVER_SYMBOLS)),
        PlanStage(restore_graph_stage(batches[0]), GPU_COMPUTE,
                  deps=(MEDUSA_WARMUP, WEIGHTS, TOKENIZER,
                        largest_tail_ready),
                  reads=(WEIGHTS_STATE, TOKENIZER_STATE, ALLOC_MAP, PARAMS,
                         resource[head_of[batches[0]].name],
                         resource[tail_of[batches[0]].name]),
                  writes=(DRIVER_SYMBOLS, graph_resource(batches[0]))),
    ]
    prev_restore = restore_graph_stage(batches[0])
    for batch in batches[1:]:
        tail = tail_of[batch]
        tail_fetch = fetch_chunk_stage(index_of[tail.name])
        stages.append(PlanStage(
            tail_fetch, DISK, deps=(prev_fetch,), background=True,
            writes=(resource[tail.name],)))
        prev_fetch = tail_fetch
        stage = restore_graph_stage(batch)
        stages.append(PlanStage(
            stage, GPU_COMPUTE, deps=(prev_restore, tail_fetch),
            background=True,
            reads=(resource[head_of[batch].name], resource[tail.name],
                   ALLOC_MAP, PARAMS, DRIVER_SYMBOLS),
            writes=(graph_resource(batch),)))
        prev_restore = stage
    return LoadPlan(
        name, tuple(stages),
        description="Chunk-streamed materialized restore: content-"
                    "addressed chunks fetched as a DISK-lane pipeline, "
                    "foreground covering only what the first graph needs.")


#: Demonstration plan (not tied to a Strategy): the tokenizer is a pure
#: disk/CPU-parse stage with no dependency on the model structure, so it
#: can overlap structure initialization — a one-plan addition showing new
#: orderings need no engine, scheduler, or reporting edits.
EAGER_TOKENIZER_PLAN = register_plan(LoadPlan(
    "vllm-eager-tokenizer",
    (
        PlanStage(STRUCTURE, CPU, required=True,
                  writes=(STRUCTURE_STATE,)),
        PlanStage(TOKENIZER, DISK, required=True,
                  writes=(TOKENIZER_STATE,)),
        PlanStage(WEIGHTS, PCIE, deps=(STRUCTURE,), required=True,
                  reads=(STRUCTURE_STATE,), writes=(WEIGHTS_STATE,)),
        PlanStage(KV_INIT, GPU_COMPUTE, deps=(WEIGHTS, TOKENIZER),
                  reads=(STRUCTURE_STATE,), writes=(KV_STATE,)),
        PlanStage(CAPTURE, GPU_COMPUTE, deps=(KV_INIT,),
                  reads=(STRUCTURE_STATE, WEIGHTS_STATE, KV_STATE),
                  writes=(GRAPHS,)),
    ),
    description="vLLM with the tokenizer overlapping structure init."))

#: The canonical pipelined plan, registered so ``repro lint-plan --all``,
#: the CLI, and CI verify it alongside the strategies.  Real cold starts
#: build a per-artifact instance via :func:`pipelined_medusa_plan` (the
#: stage set depends on the artifact's captured batch sizes); this
#: registered default uses a representative small capture ladder.
PIPELINED_MEDUSA_PLAN = register_plan(
    pipelined_medusa_plan((1, 2, 4, 8)))
