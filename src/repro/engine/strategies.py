"""The compared cold-start strategies (paper §7).

- ``VLLM``: vanilla vLLM — every loading stage runs synchronously.
- ``VLLM_ASYNC``: vLLM plus naive asynchronous weight loading — the weights
  stage overlaps the tokenizer and KV-init stages (with the measured mutual
  interference), but the capture stage still waits for both.
- ``MEDUSA``: full materialization — KV init and CUDA graphs are restored
  from the offline artifact; only the first layer is warmed up/captured, in
  parallel with the weight loading.
- ``NO_CUDA_GRAPH``: vLLM with the capture stage removed — a cheaper cold
  start that forfeits graph-accelerated decoding (Figure 10's extra baseline).
- ``DEFERRED``: the §2.4 alternative the paper argues is ineffective —
  capture is removed from the cold start and performed lazily, per batch
  size, on the first request batch that needs it.  The capture latency is
  not eliminated, merely delayed and dispersed across serving requests.
"""

from __future__ import annotations

import enum


class Strategy(enum.Enum):
    """The compared cold-start strategies (see module docstring)."""

    VLLM = "vLLM"
    VLLM_ASYNC = "vLLM+ASYNC"
    MEDUSA = "Medusa"
    NO_CUDA_GRAPH = "w/o CUDA GRAPH"
    DEFERRED = "Deferred capture"

    @property
    def uses_cuda_graphs(self) -> bool:
        return self is not Strategy.NO_CUDA_GRAPH

    @property
    def captures_at_cold_start(self) -> bool:
        return self in (Strategy.VLLM, Strategy.VLLM_ASYNC)

    @property
    def label(self) -> str:
        return self.value
