"""The engine's serving loop: continuous batching on the simulated clock.

Drives a cold-started :class:`repro.engine.engine.LLMEngine` with the
continuous-batching scheduler: each iteration eagerly prefills newly
admitted sequences, then replays the decode graph for the padded batch (or
launches eagerly without graphs).  Generated token ids come from the
substrate's deterministic sampled output, so runs are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.engine.request import SamplingParams, Sequence, SequenceStatus
from repro.engine.scheduler import ContinuousBatchingScheduler
from repro.errors import EngineError
from repro.simgpu.kernels import PAYLOAD_DIM, hash_stable
from repro.simgpu.process import ExecutionMode


@dataclass
class CompletedSequence:
    sequence: Sequence

    @property
    def token_ids(self) -> List[int]:
        return list(self.sequence.output_token_ids)

    @property
    def ttft(self) -> float:
        return self.sequence.ttft or 0.0

    @property
    def latency(self) -> float:
        return self.sequence.latency or 0.0


class ServingLoop:
    """Continuous-batching serving over one cold-started engine."""

    def __init__(self, engine, max_batch_size: int = 16):
        if engine.block_manager is None:
            raise EngineError("engine must cold-start before serving")
        self.engine = engine
        self.scheduler = ContinuousBatchingScheduler(
            engine.block_manager, max_batch_size=max_batch_size)
        self._iteration = 0

    # -- intake -----------------------------------------------------------

    def submit(self, prompt_token_ids: List[int],
               sampling: Optional[SamplingParams] = None) -> Sequence:
        sequence = Sequence(prompt_token_ids=list(prompt_token_ids),
                            sampling=sampling or SamplingParams())
        sequence.arrival_time = self.engine.process.clock.now
        self.scheduler.add(sequence)
        return sequence

    def submit_text(self, text: str,
                    sampling: Optional[SamplingParams] = None) -> Sequence:
        return self.submit(self.engine.tokenizer.encode(text), sampling)

    # -- the loop -----------------------------------------------------------------

    def step(self) -> List[CompletedSequence]:
        """Run one continuous-batching iteration; returns completions."""
        engine = self.engine
        plan = self.scheduler.schedule()
        if plan.is_empty:
            return []
        for sequence in plan.prefill:
            engine.prefill(sequence.num_prompt_tokens)
        use_graphs = engine.strategy.uses_cuda_graphs
        self._write_batch_inputs(plan.decode + plan.prefill)
        engine.decode_step(plan.batch_size, use_graphs=use_graphs)
        now = engine.process.clock.now
        completed: List[CompletedSequence] = []
        for sequence in list(plan.prefill) + list(plan.decode):
            sequence.append_token(self._sample_token(sequence), now)
            if sequence.finished:
                self.scheduler.finish(sequence)
                completed.append(CompletedSequence(sequence))
        self._iteration += 1
        return completed

    def run_until_complete(self, max_iterations: int = 100_000
                           ) -> List[CompletedSequence]:
        completed: List[CompletedSequence] = []
        iterations = 0
        while self.scheduler.has_work:
            iterations += 1
            if iterations > max_iterations:
                raise EngineError(
                    f"serving loop exceeded {max_iterations} iterations")
            completed.extend(self.step())
        return completed

    # -- token production ------------------------------------------------------------

    def _write_batch_inputs(self, batch: List[Sequence]) -> None:
        """Feed the last tokens of the batch into the graph input buffer."""
        if self.engine.process.mode is not ExecutionMode.COMPUTE:
            return
        ids = np.zeros((PAYLOAD_DIM, PAYLOAD_DIM))
        for row, sequence in enumerate(batch[:PAYLOAD_DIM]):
            last = (sequence.output_token_ids or
                    sequence.prompt_token_ids)[-1]
            ids[row, :] = last % PAYLOAD_DIM
        self.engine.serving_context().input_buffer.write(ids)

    def _sample_token(self, sequence: Sequence) -> int:
        """Deterministic greedy token for ``sequence``'s next position.

        In COMPUTE mode the substrate's sampled one-hot output seeds the
        token; the sequence identity keeps streams distinct.
        """
        # Identity from prompt + position (not seq_id, which is process
        # global): the same prompt deterministically yields the same tokens.
        position = len(sequence.output_token_ids)
        seed = hash_stable(f"{sequence.prompt_token_ids}:{position}")
        if self.engine.process.mode is ExecutionMode.COMPUTE:
            output = self.engine.serving_context().output_buffer.payload
            if output is not None:
                seed ^= int(np.argmax(output))
        return seed % self.engine.config.vocab_size
