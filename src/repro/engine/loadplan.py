"""Declarative cold-start stage graphs (LoadPlans) and their scheduler.

The paper's core loading-phase claim (§7.3) is about *reordering and
overlapping* stages.  Instead of hard-coding each strategy's overlap rules
in closed-form timeline math, a strategy is expressed as a **LoadPlan**: a
DAG of :class:`PlanStage` nodes, each declaring its dependencies, the
resource lane it occupies (:class:`repro.engine.lanes.Lane`), and an
optional :class:`repro.engine.lanes.Contention` model.  One generic
scheduler places every plan:

- a stage starts at the later of (its dependencies' completion, its lane's
  availability) — overlap and bubbles *emerge* from lane assignments;
- declared contention extends a stage's duration via a cost-model hook
  (`CostModel.contention_penalty`), replacing the old hard-coded +0.08 s;
- the critical path is recovered by walking blocking predecessors back
  from the makespan, and every placed stage carries its lane and an
  on-critical-path flag — the per-stage trace consumed by
  `repro.reporting.timeline` and the CLI breakdown table.

New strategies (pipelined restore-while-serving, ServerlessLLM-style
locality loading, Tangram-style memory reuse) become plan definitions in
`repro.engine.strategies` — no engine, simulator, or reporting edits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.lanes import Contention, Lane
from repro.errors import EngineError

#: Canonical stage names, in vanilla execution order.
STRUCTURE = "structure_init"
WEIGHTS = "load_weights"
TOKENIZER = "load_tokenizer"
KV_INIT = "kv_init"
CAPTURE = "capture"
#: Medusa-only stages: the overlappable first-layer warm-up and the serial
#: restore tail (alloc replay + node fill + module enumeration + instantiate).
MEDUSA_WARMUP = "medusa_warmup"
MEDUSA_RESTORE = "medusa_restore"
#: Pipelined-restore stages: artifact I/O on the DISK lane, the allocation
#: replay on the CPU lane, and one restore stage per captured batch size.
FETCH_ARTIFACT = "fetch_artifact"
REPLAY_ALLOC = "replay_alloc"


def restore_graph_stage(batch_size: int) -> str:
    """The per-graph restore stage name for one captured batch size."""
    return f"restore_graph[{batch_size}]"


def fetch_chunk_stage(index: int) -> str:
    """The per-chunk fetch stage name for one manifest chunk index.

    Chunk-streamed plans replace the single ``fetch_artifact`` DISK stage
    with one of these per chunk; foreground instances cover only the
    chunks ``restore_graph[0]`` needs (see
    ``repro.engine.strategies.chunked_medusa_plan``).
    """
    return f"fetch_chunk[{index}]"


#: Matches chunk-streamed fetch stage names (both for effect defaults and
#: for the serving layer's foreground-fetch accounting).
FETCH_CHUNK_PATTERN = re.compile(r"^fetch_chunk\[(\d+)\]$")

#: Numerical slack for "these instants coincide" on the critical-path walk.
_EPS = 1e-9


@dataclass(frozen=True)
class PlanStage:
    """One node of a cold-start stage graph.

    ``action`` names the engine-side callable that executes the stage's
    side effects (defaults to the stage name); Medusa's plan binds its
    ``kv_init`` stage to the restorer's ``restore_kv`` action, for example.
    ``required`` stages must have a measured duration; optional stages
    default to zero and still occupy a timeline slot (matching the legacy
    composition's behavior for absent KV/capture durations).
    ``background`` stages run after the instance is already able to serve
    (pipelined restore of non-first batch sizes): they extend
    ``Timeline.total`` but not ``Timeline.ready``, and are excluded from
    the critical path, which is walked back from the ready instant.
    ``reads``/``writes`` declare the stage's effect sets over the named
    engine-state resources of :mod:`repro.analysis.effects`; when absent,
    the verifier falls back to the action's default effect table.
    """

    name: str
    lane: Lane
    deps: Tuple[str, ...] = ()
    action: str = ""
    required: bool = False
    contention: Optional[Contention] = None
    background: bool = False
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise EngineError("plan stage needs a non-empty name")
        if not isinstance(self.lane, Lane):
            raise EngineError(
                f"stage {self.name!r}: lane must be a Lane, "
                f"got {self.lane!r}")

    @property
    def action_name(self) -> str:
        """The engine action executing this stage (default: the name)."""
        return self.action or self.name


@dataclass(frozen=True)
class ScheduledStage:
    """One stage placed on the strategy's timeline."""

    name: str
    start: float
    end: float
    lane: str = ""
    critical: bool = False
    background: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """The composed loading-phase schedule of one cold start."""

    strategy: Optional[object]
    stages: List[ScheduledStage]
    plan: str = ""
    #: Declared dependency edges of the scheduled plan (stage -> deps);
    #: empty for hand-built timelines, which then use legacy heuristics.
    deps: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    _index: Dict[str, ScheduledStage] = field(
        init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._index = {stage.name: stage for stage in self.stages}

    @property
    def total(self) -> float:
        return max((stage.end for stage in self.stages), default=0.0)

    @property
    def ready(self) -> float:
        """When the instance can serve its first request.

        The makespan over *foreground* stages only: background stages
        (pipelined restore of non-first batch sizes) finish behind the
        serving-ready instant.  Equals :attr:`total` for plans without
        background stages.
        """
        foreground = [s.end for s in self.stages if not s.background]
        if not foreground:
            return self.total
        return max(foreground)

    @property
    def has_background(self) -> bool:
        """True when any stage runs behind the ready instant.

        Pipelined plans restore non-first graphs *after* serving starts;
        the cluster simulator uses this to decide whether an instance's
        early steps contend with a restore tail (``ready < total``).
        """
        return any(stage.background for stage in self.stages)

    def stage_events(self) -> List[ScheduledStage]:
        """The stages a discrete-event cold start dispatches, end-ordered.

        Zero-duration stages occupy no simulated time and produce no
        event; the rest are returned sorted by completion instant — the
        order a cluster event loop observes their boundaries in.
        """
        return sorted((stage for stage in self.stages
                       if stage.duration > 0),
                      key=lambda stage: (stage.end, stage.start))

    def stage(self, name: str) -> ScheduledStage:
        """O(1) lookup by stage name (stages are indexed once)."""
        stage = self._index.get(name)
        if stage is None:
            available = ", ".join(sorted(self._index)) or "<none>"
            raise EngineError(
                f"timeline has no stage {name!r}; available: {available}")
        return stage

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def bubble(self) -> float:
        """Idle time on the critical path between overlapped branches.

        The time between the weight load finishing and its dependent
        *join* stage starting: the branches overlapping the weight
        stream are whatever the scheduled DAG says they are (derived
        from the plan's declared deps), so pipelined plans report
        bubbles the same way the fixed-shape strategies do.  Timelines
        built without dependency metadata fall back to the legacy
        fixed branch-stage list.
        """
        try:
            weights = self.stage(WEIGHTS)
        except EngineError:
            return 0.0
        if not self.deps:
            branch_end = max((s.end for s in self.stages
                              if s.name in (TOKENIZER, KV_INIT,
                                            MEDUSA_WARMUP)),
                             default=weights.end)
            return max(0.0, branch_end - weights.end)
        joins = [self._index[name] for name, deps in self.deps.items()
                 if WEIGHTS in deps and name in self._index
                 and not self._index[name].background]
        if not joins:
            return 0.0
        return max(0.0, max(s.start for s in joins) - weights.end)

    def critical_path(self) -> List[ScheduledStage]:
        """The critical stages, in start-time order."""
        return sorted((s for s in self.stages if s.critical),
                      key=lambda s: (s.start, s.end))


PenaltySource = Union[Mapping[str, float], object]


def _resolve_penalty(penalties: Optional[PenaltySource], key: str) -> float:
    """Resolve a contention penalty key against a cost model or mapping."""
    if penalties is not None:
        resolver = getattr(penalties, "contention_penalty", None)
        if callable(resolver):
            return float(resolver(key))
        if isinstance(penalties, Mapping) and key in penalties:
            return float(penalties[key])
    raise EngineError(
        f"no contention penalty available for key {key!r} "
        f"(pass a CostModel or a mapping containing it)")


@dataclass(frozen=True)
class LoadPlan:
    """A declarative cold-start stage graph for one loading strategy."""

    name: str
    stages: Tuple[PlanStage, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise EngineError(f"plan {self.name!r} declares no stages")
        seen: Dict[str, PlanStage] = {}
        for stage in self.stages:
            if stage.name in seen:
                raise EngineError(
                    f"plan {self.name!r}: duplicate stage {stage.name!r}")
            for dep in stage.deps:
                if dep == stage.name:
                    raise EngineError(
                        f"plan {self.name!r}: stage {stage.name!r} depends "
                        f"on itself")
                if dep not in seen:
                    raise EngineError(
                        f"plan {self.name!r}: stage {stage.name!r} depends "
                        f"on {dep!r}, which is not declared before it — "
                        f"stages must be listed in a topological (and "
                        f"execution) order")
            seen[stage.name] = stage

    # -- introspection ------------------------------------------------------

    def stage(self, name: str) -> PlanStage:
        """The declared stage named ``name``."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        available = ", ".join(s.name for s in self.stages)
        raise EngineError(
            f"plan {self.name!r} has no stage {name!r}; "
            f"available: {available}")

    def __contains__(self, name: str) -> bool:
        return any(stage.name == name for stage in self.stages)

    def execution_order(self) -> Tuple[PlanStage, ...]:
        """Stages in side-effect execution order (= declaration order).

        Declaration order is validated to be topological, so executing
        stages in this order never runs a stage before its dependencies.
        """
        return self.stages

    # -- scheduling ---------------------------------------------------------

    def schedule(self, durations: Mapping[str, float],
                 penalties: Optional[PenaltySource] = None,
                 strategy: Optional[object] = None) -> Timeline:
        """Place measured stage ``durations`` on the wall clock.

        List-schedules the DAG: each stage starts at the later of its
        dependencies' completion and its lane's availability, so each lane
        runs one stage at a time and overlap is derived, never asserted.
        Contention declarations extend the affected stage's duration via
        ``penalties`` (a ``CostModel`` or a plain mapping).  Returns a
        :class:`Timeline` whose stages carry lane and critical-path flags.
        """
        missing = [stage.name for stage in self.stages
                   if stage.required and stage.name not in durations]
        if missing:
            raise EngineError(f"missing stage durations: {missing}")

        finished: Dict[str, float] = {}
        lane_free: Dict[Lane, float] = {}
        placed: List[ScheduledStage] = []
        blockers: Dict[str, Tuple[str, ...]] = {}
        lane_prev: Dict[Lane, str] = {}
        for stage in self.stages:
            duration = float(durations.get(stage.name, 0.0))
            if duration < 0:
                raise EngineError(
                    f"stage {stage.name!r} has negative duration {duration}")
            if stage.contention is not None \
                    and stage.contention.applies(durations):
                duration += _resolve_penalty(penalties,
                                             stage.contention.penalty_key)
            start = max((finished[dep] for dep in stage.deps), default=0.0)
            start = max(start, lane_free.get(stage.lane, 0.0))
            end = start + duration
            finished[stage.name] = end
            preds = list(stage.deps)
            if stage.lane in lane_prev:
                preds.append(lane_prev[stage.lane])
            blockers[stage.name] = tuple(preds)
            lane_free[stage.lane] = end
            lane_prev[stage.lane] = stage.name
            placed.append(ScheduledStage(stage.name, start, end,
                                         lane=stage.lane.label,
                                         background=stage.background))
        return Timeline(strategy, _mark_critical(placed, blockers),
                        plan=self.name,
                        deps={stage.name: stage.deps
                              for stage in self.stages})


def append_stages(plan: LoadPlan, names: Sequence[str],
                  lane: Lane, suffix: str = "+degraded") -> LoadPlan:
    """A copy of ``plan`` with serial stages chained after its ready frontier.

    Used by the degradation ladder: fallback work (re-profiling, recapture,
    eager capture) lands on the timeline as its own stages, in order, after
    the last *foreground* stage — so the breakdown table and Chrome trace
    show exactly what degraded and what it cost.  Chaining after the ready
    frontier (not ``stages[-1]``) matters on pipelined plans: degradation
    gates serving readiness, so it must not serialize behind background
    restore tails — those queue up behind the fallback work instead.
    """
    if not names:
        return plan
    stages = list(plan.stages)
    anchor = max((index for index, stage in enumerate(stages)
                  if not stage.background), default=len(stages) - 1)
    prev = stages[anchor].name
    extra: List[PlanStage] = []
    for name in names:
        extra.append(PlanStage(name, lane, deps=(prev,)))
        prev = name
    stages[anchor + 1:anchor + 1] = extra
    return LoadPlan(plan.name + suffix, tuple(stages),
                    description=plan.description)


def retime_stage(timeline: Timeline, name: str,
                 duration: float) -> Timeline:
    """A copy of ``timeline`` with one stage's duration replaced.

    The locality placement layer uses this to rewrite ``fetch_artifact``:
    the tier an artifact is served from changes how long the fetch stage
    takes, and every stage scheduled after it moves accordingly.  For
    timelines that carry their plan's dependency metadata the whole DAG
    is re-list-scheduled exactly as :meth:`LoadPlan.schedule` would (lane
    serialization included), so overlap structure is preserved rather
    than approximated.  Hand-built timelines (no ``deps``) fall back to a
    rigid shift: the retimed stage stretches or shrinks in place and
    every stage starting at or after its old end slides by the delta.
    """
    if duration < 0:
        raise EngineError(
            f"stage {name!r} cannot be retimed to negative "
            f"duration {duration}")
    old = timeline.stage(name)
    if abs(duration - old.duration) <= _EPS:
        return timeline
    if timeline.deps:
        return _reschedule(timeline, {name: duration})
    delta = duration - old.duration
    stages: List[ScheduledStage] = []
    for stage in timeline.stages:
        if stage.name == name:
            stages.append(ScheduledStage(
                stage.name, stage.start, stage.start + duration,
                lane=stage.lane, critical=stage.critical,
                background=stage.background))
        elif stage.start >= old.end - _EPS:
            stages.append(ScheduledStage(
                stage.name, stage.start + delta, stage.end + delta,
                lane=stage.lane, critical=stage.critical,
                background=stage.background))
        else:
            stages.append(stage)
    return Timeline(timeline.strategy, stages, plan=timeline.plan)


def retime_stages(timeline: Timeline,
                  durations: Mapping[str, float]) -> Timeline:
    """A copy of ``timeline`` with several stages' durations replaced.

    The chunk-streamed fetch path needs this: a tier-resolved fetch
    rewrites *every* ``fetch_chunk[i]`` stage at once, and re-list-
    scheduling once is both cheaper and more faithful than chaining
    single-stage retimes (intermediate schedules never exist on the
    simulated machine).  Semantics per stage match :func:`retime_stage`,
    including the rigid-shift fallback for timelines without dependency
    metadata.
    """
    overrides: Dict[str, float] = {}
    for name, duration in durations.items():
        if duration < 0:
            raise EngineError(
                f"stage {name!r} cannot be retimed to negative "
                f"duration {duration}")
        if abs(duration - timeline.stage(name).duration) > _EPS:
            overrides[name] = duration
    if not overrides:
        return timeline
    if timeline.deps:
        return _reschedule(timeline, overrides)
    result = timeline
    for stage in timeline.stages:    # rigid shifts, in schedule order
        if stage.name in overrides:
            result = retime_stage(result, stage.name, overrides[stage.name])
    return result


def _reschedule(timeline: Timeline,
                overrides: Mapping[str, float]) -> Timeline:
    """List-schedule a timeline afresh with stage durations replaced."""
    durations = {stage.name: stage.duration for stage in timeline.stages}
    durations.update(overrides)
    finished: Dict[str, float] = {}
    lane_free: Dict[str, float] = {}
    lane_prev: Dict[str, str] = {}
    blockers: Dict[str, Tuple[str, ...]] = {}
    placed: List[ScheduledStage] = []
    for stage in timeline.stages:   # declaration (topological) order
        deps = timeline.deps.get(stage.name, ())
        start = max((finished[dep] for dep in deps), default=0.0)
        start = max(start, lane_free.get(stage.lane, 0.0))
        end = start + durations[stage.name]
        finished[stage.name] = end
        preds = list(deps)
        if stage.lane in lane_prev:
            preds.append(lane_prev[stage.lane])
        blockers[stage.name] = tuple(preds)
        lane_free[stage.lane] = end
        lane_prev[stage.lane] = stage.name
        placed.append(ScheduledStage(stage.name, start, end,
                                     lane=stage.lane,
                                     background=stage.background))
    return Timeline(timeline.strategy, _mark_critical(placed, blockers),
                    plan=timeline.plan, deps=dict(timeline.deps))


def _mark_critical(placed: Sequence[ScheduledStage],
                   blockers: Mapping[str, Tuple[str, ...]]
                   ) -> List[ScheduledStage]:
    """Flag every stage lying on a zero-slack chain ending at the makespan.

    A stage's start always equals some blocking predecessor's end (a
    dependency or the previous stage on its lane) or zero, so walking those
    exact-coincidence links backward from the stages that end at the
    makespan recovers the critical path(s), whose summed durations equal
    the timeline total by construction.

    Background stages (pipelined restore of non-first batch sizes) are
    neither seeds nor ever critical: the makespan that matters is the
    *ready* instant — the latest foreground end — since everything behind
    it happens while the instance already serves.
    """
    if not placed:
        return []
    by_name = {stage.name: stage for stage in placed}
    foreground = [stage for stage in placed if not stage.background]
    makespan = max(stage.end for stage in foreground) if foreground \
        else max(stage.end for stage in placed)
    critical = {stage.name for stage in foreground
                if abs(stage.end - makespan) <= _EPS}
    frontier = list(critical)
    while frontier:
        name = frontier.pop()
        stage = by_name[name]
        for pred_name in blockers.get(name, ()):
            pred = by_name[pred_name]
            if pred_name not in critical and not pred.background \
                    and abs(pred.end - stage.start) <= _EPS:
                critical.add(pred_name)
                frontier.append(pred_name)
    return [ScheduledStage(s.name, s.start, s.end, lane=s.lane,
                           critical=s.name in critical,
                           background=s.background) for s in placed]
