"""The CUDA-graph capturing stage: warm-up + capture per batch size (§2.1 ❺).

vLLM captures decode graphs for 35 batch sizes, largest first, each preceded
by a warm-up forwarding (capture would fail otherwise — library init, module
loads, and workspace setup all synchronize).  The persistent graph I/O
buffers are allocated *before* the first capture, which is why their contents
never need materializing (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.engine.kvcache import KVCacheRegion
from repro.models.config import ModelConfig
from repro.models.model import ForwardContext, Model
from repro.simgpu.graph import CudaGraph, CudaGraphExec, GraphExecMeta
from repro.simgpu.kernels import PAYLOAD_DIM
from repro.simgpu.memory import Buffer
from repro.simgpu.process import CudaProcess


@dataclass
class CaptureArtifacts:
    """Everything the capture stage leaves behind inside the process."""

    graph_input: Buffer
    graph_output: Buffer
    capture_marker: int                      # alloc index where capturing began
    graphs: Dict[int, CudaGraph] = field(default_factory=dict)
    execs: Dict[int, CudaGraphExec] = field(default_factory=dict)

    def context(self, kv_region: KVCacheRegion) -> ForwardContext:
        return ForwardContext(
            input_buffer=self.graph_input,
            output_buffer=self.graph_output,
            kv_buffer=kv_region.buffer,
            kv_layer_stride=kv_region.layer_stride,
        )


def allocate_graph_io(process: CudaProcess, config: ModelConfig) -> tuple:
    """The persistent input/output buffers every captured graph uses."""
    max_batch = max(config.capture_batch_sizes)
    io_bytes = max(256, max_batch * config.hidden_size * 2)
    graph_input = process.malloc(
        io_bytes, tag="graph_input",
        payload=np.zeros((PAYLOAD_DIM, PAYLOAD_DIM)))
    graph_output = process.malloc(
        io_bytes, tag="graph_output",
        payload=np.zeros((PAYLOAD_DIM, PAYLOAD_DIM)))
    return graph_input, graph_output


def prepare_capture_stage(process: CudaProcess, model: Model) -> CaptureArtifacts:
    """Allocate persistent graph I/O and open a fresh workspace epoch.

    Opening a fresh per-kernel workspace epoch mirrors PyTorch allocating a
    fresh cuBLAS workspace for graph capture: the warm-ups re-acquire the
    permanent magic buffers *inside* the capture window (§4.3).
    """
    graph_input, graph_output = allocate_graph_io(process, model.config)
    process.reset_magic_workspaces()
    return CaptureArtifacts(
        graph_input=graph_input,
        graph_output=graph_output,
        capture_marker=process.allocator.num_allocations,
    )


def capture_one(process: CudaProcess, model: Model,
                artifacts: CaptureArtifacts, kv_region: KVCacheRegion,
                batch_size: int, instantiate: bool = True) -> None:
    """Warm up and capture the decode graph of one batch size.

    All capture-stage transients live in the private graph memory pool, as
    under PyTorch: ordinary serving allocations can never claim (and later
    corrupt) blocks the captured graphs still execute through.
    """
    config = model.config
    ctx = artifacts.context(kv_region)
    with process.memory_pool("graph"):
        model.forward(batch_size, batch_size, ctx)          # warm-up
        process.default_stream.begin_capture(GraphExecMeta(
            param_bytes=config.param_bytes,
            num_tokens=batch_size,
            batch_size=batch_size))
        model.forward(batch_size, batch_size, ctx)          # capturing
        graph = process.default_stream.end_capture()
        artifacts.graphs[batch_size] = graph
        if instantiate:
            artifacts.execs[batch_size] = graph.instantiate(process)


def run_capture_stage(process: CudaProcess, model: Model,
                      kv_region: KVCacheRegion,
                      batch_sizes: Optional[List[int]] = None,
                      instantiate: bool = True) -> CaptureArtifacts:
    """Warm up and capture one decode graph per batch size (largest first)."""
    artifacts = prepare_capture_stage(process, model)
    sizes = batch_sizes if batch_sizes is not None else \
        sorted(model.config.capture_batch_sizes, reverse=True)
    for batch_size in sizes:
        capture_one(process, model, artifacts, kv_region, batch_size,
                    instantiate=instantiate)
    return artifacts
