"""The serverless LLM inference engine: cold start + serving.

``LLMEngine.cold_start()`` runs the five loading-phase stages with real side
effects on a fresh simulated process, measures each stage's simulated
duration, and composes the strategy-specific timeline (sequential for vLLM,
overlapped for vLLM+ASYNC, restore-based for Medusa).  After a cold start
the engine serves: eager prefill, and graph-replayed (or eager) decode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.engine.capture_runner import (
    CaptureArtifacts,
    allocate_graph_io,
    run_capture_stage,
)
from repro.engine.kvcache import (
    BlockManager,
    KVCacheConfig,
    KVCacheRegion,
    allocate_kv_region,
)
from repro.engine.lanes import Lane
from repro.engine.loadplan import (
    CAPTURE,
    KV_INIT,
    STRUCTURE,
    TOKENIZER,
    WEIGHTS,
    LoadPlan,
    Timeline,
    append_stages,
)
from repro.engine.strategies import Strategy, plan_for
from repro.errors import EngineError
from repro.models.config import ModelConfig
from repro.models.kernels_catalog import build_catalog
from repro.models.model import ForwardContext, Model
from repro.models.tokenizer import Tokenizer
from repro.models.weights import CheckpointStore
from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel
from repro.simgpu.kernels import PAYLOAD_DIM
from repro.simgpu.process import CudaProcess, ExecutionMode

#: Stage action names :meth:`LLMEngine._stage_actions` registers itself
#: (a restorer's ``stage_actions`` extends/overrides these).  The static
#: plan verifier (`repro.analysis.planlint`) resolves PLN004 bindings —
#: and `repro.analysis.effects` keys its per-action effect defaults —
#: against this registry.
ENGINE_STAGE_ACTIONS = (STRUCTURE, WEIGHTS, TOKENIZER, KV_INIT, CAPTURE)


@dataclass
class ColdStartReport:
    """Everything the benchmarks need about one cold start."""

    model: str
    strategy: Strategy
    stage_durations: Dict[str, float]
    timeline: Timeline
    runtime_init_time: float
    first_token_time: float
    #: repro.faults.DegradationReport when the restore degraded; None on a
    #: clean cold start (every pre-ladder consumer keeps working unchanged).
    degradation: Optional[object] = None

    @property
    def loading_time(self) -> float:
        return self.timeline.total

    @property
    def ready_time(self) -> float:
        """Loading time until the instance can serve (foreground stages).

        With a pipelined plan the background ``restore_graph`` stages
        finish behind this instant (``ready_time < loading_time``); equal
        to :attr:`loading_time` for plans without background stages.
        """
        return self.timeline.ready

    @property
    def cold_start_time(self) -> float:
        """Full cold start: runtime init + loading + generating first token."""
        return self.runtime_init_time + self.loading_time + self.first_token_time


class LLMEngine:
    """One inference-serving instance over one simulated process."""

    def __init__(self, config, strategy: Strategy = Strategy.VLLM,
                 seed: int = 0,
                 mode: ExecutionMode = ExecutionMode.TIMING,
                 cost_model: Optional[CostModel] = None,
                 kv_config: Optional[KVCacheConfig] = None,
                 checkpoints: Optional[CheckpointStore] = None,
                 capture_batch_sizes=None,
                 plan: Optional[LoadPlan] = None,
                 injector=None):
        """``capture_batch_sizes``: override the batch sizes the capture
        stage covers (a subset of the config's list); None captures all.
        ``plan``: override the strategy's registered LoadPlan (e.g. a
        demonstration ordering from ``repro.engine.strategies``).
        ``injector``: optional ``repro.faults.FaultInjector`` threaded into
        the simulated process/driver (chaos testing)."""
        if isinstance(config, str):
            config = get_model_config(config)
        self.config: ModelConfig = config
        self.capture_batch_sizes = tuple(sorted(capture_batch_sizes)) \
            if capture_batch_sizes is not None else None
        self.strategy = strategy
        self.plan = plan
        self.injector = injector
        self.cost_model = cost_model or CostModel()
        self.kv_config = kv_config or KVCacheConfig()
        self.checkpoints = checkpoints or CheckpointStore()
        self.catalog = build_catalog(config)
        self.process = CudaProcess(seed=seed, catalog=self.catalog,
                                   cost_model=self.cost_model, mode=mode,
                                   name=f"{config.name}/{strategy.value}",
                                   injector=injector)
        self.model = Model(config, self.process)
        self.tokenizer = Tokenizer(config)
        self.kv_region: Optional[KVCacheRegion] = None
        self.kv_bytes: Optional[int] = None
        self.block_manager: Optional[BlockManager] = None
        self.capture_artifacts: Optional[CaptureArtifacts] = None
        self._serving_ctx: Optional[ForwardContext] = None
        self._report: Optional[ColdStartReport] = None

    # ------------------------------------------------------------------
    # Cold start
    # ------------------------------------------------------------------

    def cold_start(self, restorer=None) -> ColdStartReport:
        """Run the loading phase under this engine's LoadPlan.

        The strategy's registered plan (or the constructor's ``plan``
        override) determines which stage actions run, in which order, and
        how they are placed on the timeline — the engine holds no
        per-strategy branching.  ``restorer`` (Medusa only): an object with
        ``stage_actions(engine)`` — provided by :mod:`repro.core.online`,
        which layers on top of the engine.
        """
        if self._report is not None:
            raise EngineError("cold_start() ran already on this engine")
        plan = self.plan or plan_for(self.strategy)
        actions = self._stage_actions(restorer)
        missing = [stage.action_name for stage in plan.stages
                   if stage.action_name not in actions]
        if missing:
            if restorer is None:
                raise EngineError(
                    f"plan {plan.name!r} requires a restorer for stage "
                    f"action(s) {missing} "
                    f"(see repro.core.online.medusa_cold_start)")
            raise EngineError(
                f"plan {plan.name!r} names unknown stage action(s) "
                f"{missing}; available: {sorted(actions)}")
        durations: Dict[str, float] = {}
        for stage in plan.execution_order():
            durations[stage.name] = actions[stage.action_name]()
        degradation = getattr(restorer, "degradation", None)
        if degradation is not None and (degradation.steps
                                        or degradation.failures):
            # Ladder fallbacks (and verification passes) become their own
            # serial timeline stages, so the breakdown/trace name each rung
            # and its latency cost.
            extras = degradation.extra_stages()
            plan = append_stages(plan, [name for name, _ in extras],
                                 Lane.GPU_COMPUTE)
            for name, duration in extras:
                durations[name] = duration
        else:
            degradation = None
        timeline = plan.schedule(durations, self.cost_model,
                                 strategy=self.strategy)
        self.process.clock.advance_to(timeline.total)
        self._report = ColdStartReport(
            model=self.config.name,
            strategy=self.strategy,
            stage_durations=durations,
            timeline=timeline,
            runtime_init_time=self.cost_model.runtime_init_time,
            first_token_time=self.cost_model.first_token_extra,
            degradation=degradation,
        )
        return self._report

    @property
    def report(self) -> ColdStartReport:
        if self._report is None:
            raise EngineError("engine has not cold-started yet")
        return self._report

    def _timed(self, stage_fn: Callable[[], None]) -> float:
        start = self.process.clock.now
        stage_fn()
        return self.process.clock.now - start

    def _stage_actions(self, restorer) -> Dict[str, Callable[[], float]]:
        """Action name -> side-effecting callable returning its duration.

        Plans reference these by ``PlanStage.action_name``; a restorer
        contributes its restore actions on top of the engine's own.
        """
        actions: Dict[str, Callable[[], float]] = {
            STRUCTURE: lambda: self._timed(self._stage_structure_init),
            WEIGHTS: lambda: self._timed(self._stage_load_weights),
            TOKENIZER: lambda: self._timed(self._stage_load_tokenizer),
            KV_INIT: lambda: self._timed(self._stage_kv_init),
            CAPTURE: lambda: self._timed(self._stage_capture),
        }
        if restorer is not None:
            actions.update(restorer.stage_actions(self))
        return actions

    # -- stage implementations ------------------------------------------------

    def _stage_structure_init(self) -> None:
        self.process.clock.advance(
            self.cost_model.structure_init_time(self.config.param_bytes))
        self.model.initialize_structure()

    def _stage_load_weights(self) -> None:
        # Per-tensor H2D copies advance the clock; the stage duration is
        # their mechanical sum (= param_bytes / h2d_bandwidth).
        self.model.load_weights(self.checkpoints)

    def _stage_load_tokenizer(self) -> None:
        self.process.clock.advance(
            self.cost_model.tokenizer_load_time(self.config.vocab_size))
        self.tokenizer.load()

    def _stage_kv_init(self) -> None:
        """Profiling forwarding, then allocate the KV region (§2.1 ❹)."""
        kv_bytes = self.profile_available_kv_bytes()
        self.adopt_kv_bytes(kv_bytes)

    def profile_available_kv_bytes(self) -> int:
        """Run the profiling forwarding and measure residual free memory.

        Launches a forwarding with the maximum batched tokens against a dummy
        KV region, releases the transient pool, and returns
        ``utilization * total - peak`` — vLLM's sizing rule.
        """
        process = self.process
        max_batch = max(self.config.capture_batch_sizes)
        profile_bytes = max(
            256,
            self.cost_model.kv_profile_tokens * self.config.hidden_size * 2)
        zeros = np.zeros((PAYLOAD_DIM, PAYLOAD_DIM))
        profile_input = process.malloc(profile_bytes, tag="profile_input",
                                       payload=zeros)
        profile_output = process.malloc(profile_bytes, tag="profile_output",
                                        payload=zeros)
        dummy_kv = process.malloc(profile_bytes, tag="profile_kv",
                                  payload=zeros)
        ctx = ForwardContext(profile_input, profile_output, dummy_kv,
                             kv_layer_stride=0)
        self.model.forward(max_batch, self.cost_model.kv_profile_tokens, ctx)
        for buffer in (profile_input, profile_output, dummy_kv):
            process.pool_free(buffer.address)
        process.empty_cache()
        total = self.cost_model.gpu.total_memory_bytes
        usable = int(total * self.kv_config.gpu_memory_utilization)
        kv_bytes = usable - process.allocator.peak_bytes
        if kv_bytes <= 0:
            raise EngineError(
                f"{self.config.name}: no memory left for KV cache "
                f"(peak {process.allocator.peak_bytes} of {usable} usable)")
        return kv_bytes

    def adopt_kv_bytes(self, kv_bytes: int) -> None:
        """Allocate the KV region and block manager for ``kv_bytes``."""
        self.process.clock.advance(self.cost_model.kv_block_alloc_time)
        self.kv_bytes = kv_bytes
        self.kv_region = allocate_kv_region(
            self.process, self.config, self.kv_config, kv_bytes)
        self.block_manager = BlockManager(
            self.kv_region.num_blocks, self.kv_config.block_size_tokens)

    def reset_kv_state(self) -> None:
        """Zero the KV region's payload (tests compare fixed-state outputs)."""
        if self.kv_region is None:
            raise EngineError("engine has no KV cache; cold start first")
        self.kv_region.buffer.write(np.zeros((PAYLOAD_DIM, PAYLOAD_DIM)))

    def _stage_capture(self) -> None:
        if self.kv_region is None:
            raise EngineError("capture requires KV cache initialization first")
        sizes = sorted(self.capture_batch_sizes, reverse=True) \
            if self.capture_batch_sizes is not None else None
        self.capture_artifacts = run_capture_stage(
            self.process, self.model, self.kv_region, batch_sizes=sizes)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serving_context(self) -> ForwardContext:
        if self.kv_region is None:
            raise EngineError("engine has no KV cache; cold start first")
        if self.capture_artifacts is not None:
            return self.capture_artifacts.context(self.kv_region)
        if self._serving_ctx is None:
            graph_input, graph_output = allocate_graph_io(
                self.process, self.config)
            self._serving_ctx = ForwardContext(
                graph_input, graph_output, self.kv_region.buffer,
                self.kv_region.layer_stride)
        return self._serving_ctx

    def padded_batch(self, batch_size: int) -> int:
        """The smallest captured batch size covering ``batch_size``.

        Consults the actually-captured (or restored) graph set when one
        exists — a partially materialized engine may hold fewer batch sizes
        than the config's default capture list.  Under ``DEFERRED`` the
        target is always the configured ladder: uncaptured sizes are
        captured on demand, not padded away.
        """
        if (self.strategy is not Strategy.DEFERRED
                and self.capture_artifacts is not None
                and self.capture_artifacts.execs):
            available = sorted(self.capture_artifacts.execs)
        elif self.capture_batch_sizes is not None:
            available = sorted(self.capture_batch_sizes)
        else:
            available = sorted(self.config.capture_batch_sizes)
        candidates = [b for b in available if b >= batch_size]
        return min(candidates) if candidates else max(available)

    def prefill(self, num_prompt_tokens: int, batch_size: int = 1) -> float:
        """Eager prefill; returns the simulated duration."""
        start = self.process.clock.now
        self.model.forward(batch_size, num_prompt_tokens,
                           self.serving_context())
        return self.process.clock.now - start

    def decode_step(self, batch_size: int, use_graphs: bool = True) -> float:
        """One decode iteration; graph replay when available.

        Under ``Strategy.DEFERRED`` the graph for an uncaptured batch size is
        warmed up and captured *now*, on the serving path — the §2.4
        alternative whose dispersed latency this models.
        """
        start = self.process.clock.now
        padded = self.padded_batch(batch_size)
        if (use_graphs and self.strategy is Strategy.DEFERRED
                and (self.capture_artifacts is None
                     or padded not in self.capture_artifacts.execs)):
            self._deferred_capture(padded)
        graphs_ready = (self.capture_artifacts is not None
                        and padded in self.capture_artifacts.execs)
        if use_graphs and graphs_ready:
            self.capture_artifacts.execs[padded].replay()
        else:
            self.model.forward(batch_size, batch_size, self.serving_context())
        return self.process.clock.now - start

    def _deferred_capture(self, batch_size: int) -> None:
        from repro.engine.capture_runner import (
            capture_one,
            prepare_capture_stage,
        )
        if self.kv_region is None:
            raise EngineError("deferred capture requires KV initialization")
        if self.capture_artifacts is None:
            self.capture_artifacts = prepare_capture_stage(
                self.process, self.model)
        capture_one(self.process, self.model, self.capture_artifacts,
                    self.kv_region, batch_size)

    def generate(self, prompt_tokens: int, output_tokens: int,
                 batch_size: int = 1, use_graphs: bool = True) -> Dict[str, float]:
        """Serve one request batch end to end; returns latency components."""
        ttft = self.prefill(prompt_tokens, batch_size)
        decode_time = 0.0
        for _step in range(max(0, output_tokens - 1)):
            decode_time += self.decode_step(batch_size, use_graphs=use_graphs)
        return {
            "ttft": ttft,
            "decode": decode_time,
            "total": ttft + decode_time,
        }
