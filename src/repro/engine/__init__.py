"""The vLLM-like inference engine.

Implements the five loading-phase stages the paper breaks down (§2.1):
model structure initialization, model weights loading, tokenizer loading,
KV cache initialization (profiling forwarding + block allocation), and CUDA
graph capturing (warm-up + capture for 35 batch sizes) — plus the serving
paths with and without CUDA graphs, and the stage-overlap timeline model
that distinguishes vLLM, vLLM+ASYNC, and Medusa (Figures 1, 2, 7, 8).
"""

from repro.engine.engine import ColdStartReport, LLMEngine
from repro.engine.kvcache import BlockManager, KVCacheConfig, KVCacheRegion
from repro.engine.lanes import Contention, Lane
from repro.engine.loadplan import LoadPlan, PlanStage
from repro.engine.pipeline import ScheduledStage, StageTiming, Timeline
from repro.engine.request import SamplingParams, Sequence, SequenceStatus
from repro.engine.scheduler import ContinuousBatchingScheduler
from repro.engine.serving import ServingLoop
from repro.engine.strategies import (
    Strategy,
    plan_for,
    register_plan,
    registered_plans,
)

__all__ = [
    "BlockManager",
    "ColdStartReport",
    "Contention",
    "ContinuousBatchingScheduler",
    "KVCacheConfig",
    "KVCacheRegion",
    "LLMEngine",
    "Lane",
    "LoadPlan",
    "PlanStage",
    "SamplingParams",
    "ScheduledStage",
    "Sequence",
    "SequenceStatus",
    "ServingLoop",
    "StageTiming",
    "Strategy",
    "Timeline",
    "plan_for",
    "register_plan",
    "registered_plans",
]
