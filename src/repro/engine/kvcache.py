"""KV cache: block-granular management over one continuous device region.

Mirrors vLLM's PagedAttention memory management (§6): the KV cache is one
continuous GPU buffer sized from the *residual free memory after a profiling
forwarding*, internally divided into fixed-size blocks handed out to
sequences.  The block count is the quantity Medusa materializes — it is
invariant per <GPU type, model type> because the profiling peak is
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import InvalidValueError, KVCacheExhaustedError
from repro.models.config import ModelConfig
from repro.simgpu.kernels import PAYLOAD_DIM
from repro.simgpu.memory import Buffer
from repro.simgpu.process import CudaProcess


@dataclass(frozen=True)
class KVCacheConfig:
    """Sizing policy, matching vLLM's defaults."""

    block_size_tokens: int = 16
    gpu_memory_utilization: float = 0.90
    dtype_bytes: int = 2          # fp16 K and V entries
    max_blocks: int = 1 << 16     # engine-level cap (ample for every model)

    def block_bytes(self, model: ModelConfig) -> int:
        """Bytes of one KV block: K+V, block tokens, hidden, all layers."""
        return (2 * self.block_size_tokens * model.hidden_size
                * self.dtype_bytes * model.num_layers)

    def num_blocks_for(self, model: ModelConfig, kv_bytes: int) -> int:
        block = self.block_bytes(model)
        if kv_bytes < block:
            raise InvalidValueError(
                f"{model.name}: {kv_bytes} bytes cannot hold one KV block "
                f"of {block} bytes")
        return min(self.max_blocks, kv_bytes // block)


@dataclass
class KVCacheRegion:
    """The allocated continuous KV region inside one process."""

    buffer: Buffer
    num_blocks: int
    block_bytes: int
    layer_stride: int

    @property
    def total_bytes(self) -> int:
        return self.num_blocks * self.block_bytes


def allocate_kv_region(process: CudaProcess, model: ModelConfig,
                       kv_config: KVCacheConfig, kv_bytes: int) -> KVCacheRegion:
    """Allocate the continuous KV cache buffer from ``kv_bytes`` of free memory."""
    num_blocks = kv_config.num_blocks_for(model, kv_bytes)
    total = num_blocks * kv_config.block_bytes(model)
    buffer = process.malloc(
        total, tag="kv",
        payload=np.zeros((PAYLOAD_DIM, PAYLOAD_DIM)))
    return KVCacheRegion(
        buffer=buffer,
        num_blocks=num_blocks,
        block_bytes=kv_config.block_bytes(model),
        layer_stride=max(1, total // max(1, model.num_layers)),
    )


class BlockManager:
    """Hands out KV blocks to sequences (vLLM's block tables, simplified)."""

    def __init__(self, num_blocks: int, block_size_tokens: int):
        if num_blocks <= 0:
            raise InvalidValueError(f"need at least one KV block, got {num_blocks}")
        self.num_blocks = num_blocks
        self.block_size_tokens = block_size_tokens
        self._free: List[int] = list(range(num_blocks))
        self._tables: Dict[str, List[int]] = {}

    # -- capacity ---------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def blocks_needed(self, num_tokens: int) -> int:
        return -(-num_tokens // self.block_size_tokens)   # ceil division

    def can_allocate(self, num_tokens: int) -> bool:
        return self.blocks_needed(num_tokens) <= self.free_blocks

    # -- sequence lifecycle ---------------------------------------------------

    def allocate(self, seq_id: str, num_tokens: int) -> List[int]:
        if seq_id in self._tables:
            raise InvalidValueError(f"sequence {seq_id} already has a block table")
        needed = self.blocks_needed(num_tokens)
        if needed > self.free_blocks:
            raise KVCacheExhaustedError(
                f"sequence {seq_id} needs {needed} blocks, "
                f"only {self.free_blocks} free")
        blocks = [self._free.pop() for _ in range(needed)]
        self._tables[seq_id] = blocks
        return list(blocks)

    def extend(self, seq_id: str, total_tokens: int) -> List[int]:
        """Grow a sequence's table to cover ``total_tokens`` (decode growth)."""
        table = self._tables.get(seq_id)
        if table is None:
            raise InvalidValueError(f"unknown sequence {seq_id}")
        needed = self.blocks_needed(total_tokens)
        added: List[int] = []
        while len(table) < needed:
            if not self._free:
                raise KVCacheExhaustedError(
                    f"sequence {seq_id}: out of KV blocks while extending")
            block = self._free.pop()
            table.append(block)
            added.append(block)
        return added

    def release(self, seq_id: str) -> None:
        table = self._tables.pop(seq_id, None)
        if table is None:
            raise InvalidValueError(f"unknown sequence {seq_id}")
        self._free.extend(table)

    def block_table(self, seq_id: str) -> List[int]:
        table = self._tables.get(seq_id)
        if table is None:
            raise InvalidValueError(f"unknown sequence {seq_id}")
        return list(table)
