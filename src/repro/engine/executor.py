"""A deterministic resource-lane task executor for loading-phase schedules.

:mod:`repro.engine.pipeline` composes each strategy's stage timeline in
closed form.  This module provides the general mechanism those closed forms
are special cases of: tasks with durations, dependencies, and a *resource
lane* (CPU / IO / GPU), executed by a list scheduler where each lane runs
one task at a time.  Tests cross-validate the closed-form timelines against
this executor, so the analytic composition cannot silently drift from the
semantics it claims to model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import EngineError

CPU = "cpu"
IO = "io"
GPU = "gpu"


@dataclass(frozen=True)
class Task:
    """One schedulable unit of loading-phase work."""

    name: str
    duration: float
    resource: str
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise EngineError(f"task {self.name} has negative duration")


@dataclass(frozen=True)
class ScheduledTask:
    name: str
    resource: str
    start: float
    end: float


@dataclass
class Schedule:
    """The executed plan: per-task placement plus the makespan."""

    tasks: List[ScheduledTask]

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks), default=0.0)

    def task(self, name: str) -> ScheduledTask:
        for scheduled in self.tasks:
            if scheduled.name == name:
                return scheduled
        raise EngineError(f"schedule has no task {name!r}")

    def overlap(self, first: str, second: str) -> float:
        """Seconds during which both tasks were running."""
        a, b = self.task(first), self.task(second)
        return max(0.0, min(a.end, b.end) - max(a.start, b.start))


def execute(tasks: Sequence[Task]) -> Schedule:
    """List-schedule ``tasks`` over their resource lanes.

    Each resource lane executes one task at a time; a task starts at the
    later of (its dependencies' completion, its lane's availability).  Ties
    are broken by task order, making the schedule deterministic.
    """
    by_name: Dict[str, Task] = {}
    for task in tasks:
        if task.name in by_name:
            raise EngineError(f"duplicate task {task.name!r}")
        by_name[task.name] = task
    for task in tasks:
        for dep in task.deps:
            if dep not in by_name:
                raise EngineError(
                    f"task {task.name!r} depends on unknown {dep!r}")

    finished: Dict[str, float] = {}
    lane_free: Dict[str, float] = {}
    placed: List[ScheduledTask] = []
    remaining = list(tasks)
    while remaining:
        progressed = False
        for task in list(remaining):
            if any(dep not in finished for dep in task.deps):
                continue
            ready_at = max((finished[dep] for dep in task.deps), default=0.0)
            start = max(ready_at, lane_free.get(task.resource, 0.0))
            end = start + task.duration
            finished[task.name] = end
            lane_free[task.resource] = end
            placed.append(ScheduledTask(task.name, task.resource, start, end))
            remaining.remove(task)
            progressed = True
        if not progressed:
            cycle = ", ".join(t.name for t in remaining)
            raise EngineError(f"dependency cycle among: {cycle}")
    return Schedule(placed)


def strategy_tasks(strategy, durations: Dict[str, float],
                   interference_penalty: float) -> List[Task]:
    """The task graph a strategy's LoadPlan describes, as executor tasks.

    Derived from the plan registered in :mod:`repro.engine.strategies`
    (sequential plans chain their stages through dependencies, so the
    single-lane projection is faithful).  Used by tests to cross-validate
    the plan scheduler against this independent executor implementation.
    """
    from repro.engine.lanes import Lane
    from repro.engine.strategies import plan_for

    lane_map = {Lane.CPU: CPU, Lane.PCIE: IO, Lane.DISK: IO,
                Lane.GPU_COMPUTE: GPU}
    tasks: List[Task] = []
    for stage in plan_for(strategy).stages:
        duration = durations.get(stage.name, 0.0)
        if stage.contention is not None and stage.contention.applies(durations):
            duration += interference_penalty
        tasks.append(Task(stage.name, duration, lane_map[stage.lane],
                          deps=stage.deps))
    return tasks
