"""A deterministic resource-lane task executor for loading-phase schedules.

:mod:`repro.engine.pipeline` composes each strategy's stage timeline in
closed form.  This module provides the general mechanism those closed forms
are special cases of: tasks with durations, dependencies, and a *resource
lane* (CPU / IO / GPU), executed by a list scheduler where each lane runs
one task at a time.  Tests cross-validate the closed-form timelines against
this executor, so the analytic composition cannot silently drift from the
semantics it claims to model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import EngineError

CPU = "cpu"
IO = "io"
GPU = "gpu"


@dataclass(frozen=True)
class Task:
    """One schedulable unit of loading-phase work."""

    name: str
    duration: float
    resource: str
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise EngineError(f"task {self.name} has negative duration")


@dataclass(frozen=True)
class ScheduledTask:
    name: str
    resource: str
    start: float
    end: float


@dataclass
class Schedule:
    """The executed plan: per-task placement plus the makespan."""

    tasks: List[ScheduledTask]

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks), default=0.0)

    def task(self, name: str) -> ScheduledTask:
        for scheduled in self.tasks:
            if scheduled.name == name:
                return scheduled
        raise EngineError(f"schedule has no task {name!r}")

    def overlap(self, first: str, second: str) -> float:
        """Seconds during which both tasks were running."""
        a, b = self.task(first), self.task(second)
        return max(0.0, min(a.end, b.end) - max(a.start, b.start))


def execute(tasks: Sequence[Task]) -> Schedule:
    """List-schedule ``tasks`` over their resource lanes.

    Each resource lane executes one task at a time; a task starts at the
    later of (its dependencies' completion, its lane's availability).  Ties
    are broken by task order, making the schedule deterministic.
    """
    by_name: Dict[str, Task] = {}
    for task in tasks:
        if task.name in by_name:
            raise EngineError(f"duplicate task {task.name!r}")
        by_name[task.name] = task
    for task in tasks:
        for dep in task.deps:
            if dep not in by_name:
                raise EngineError(
                    f"task {task.name!r} depends on unknown {dep!r}")

    finished: Dict[str, float] = {}
    lane_free: Dict[str, float] = {}
    placed: List[ScheduledTask] = []
    remaining = list(tasks)
    while remaining:
        progressed = False
        for task in list(remaining):
            if any(dep not in finished for dep in task.deps):
                continue
            ready_at = max((finished[dep] for dep in task.deps), default=0.0)
            start = max(ready_at, lane_free.get(task.resource, 0.0))
            end = start + task.duration
            finished[task.name] = end
            lane_free[task.resource] = end
            placed.append(ScheduledTask(task.name, task.resource, start, end))
            remaining.remove(task)
            progressed = True
        if not progressed:
            cycle = ", ".join(t.name for t in remaining)
            raise EngineError(f"dependency cycle among: {cycle}")
    return Schedule(placed)


def strategy_tasks(strategy, durations: Dict[str, float],
                   interference_penalty: float) -> List[Task]:
    """The task graph each strategy's closed-form timeline models.

    Used by tests to check :func:`repro.engine.pipeline.compose_timeline`
    against the general executor.
    """
    from repro.engine.pipeline import (
        CAPTURE,
        KV_INIT,
        MEDUSA_RESTORE,
        MEDUSA_WARMUP,
        STRUCTURE,
        TOKENIZER,
        WEIGHTS,
    )
    from repro.engine.strategies import Strategy

    def dur(name: str) -> float:
        return durations.get(name, 0.0)

    if strategy in (Strategy.VLLM, Strategy.NO_CUDA_GRAPH, Strategy.DEFERRED):
        # Synchronous vLLM: one lane, strict order.
        order = [STRUCTURE, WEIGHTS, TOKENIZER, KV_INIT]
        if strategy is Strategy.VLLM:
            order.append(CAPTURE)
        tasks = []
        previous: Tuple[str, ...] = ()
        for name in order:
            tasks.append(Task(name, dur(name), CPU, deps=previous))
            previous = (name,)
        return tasks
    if strategy is Strategy.VLLM_ASYNC:
        weights = dur(WEIGHTS)
        if dur(KV_INIT) > 0:
            weights += interference_penalty
        return [
            Task(STRUCTURE, dur(STRUCTURE), CPU),
            Task(WEIGHTS, weights, IO, deps=(STRUCTURE,)),
            Task(TOKENIZER, dur(TOKENIZER), CPU, deps=(STRUCTURE,)),
            Task(KV_INIT, dur(KV_INIT), GPU, deps=(TOKENIZER,)),
            Task(CAPTURE, dur(CAPTURE), GPU, deps=(WEIGHTS, KV_INIT)),
        ]
    if strategy is Strategy.MEDUSA:
        return [
            Task(STRUCTURE, dur(STRUCTURE), CPU),
            Task(WEIGHTS, dur(WEIGHTS), IO, deps=(STRUCTURE,)),
            Task(TOKENIZER, dur(TOKENIZER), CPU, deps=(STRUCTURE,)),
            Task(KV_INIT, dur(KV_INIT), GPU, deps=(STRUCTURE,)),
            Task(MEDUSA_WARMUP, dur(MEDUSA_WARMUP), GPU, deps=(KV_INIT,)),
            Task(MEDUSA_RESTORE, dur(MEDUSA_RESTORE), GPU,
                 deps=(MEDUSA_WARMUP, WEIGHTS, TOKENIZER)),
        ]
    raise EngineError(f"no task graph for strategy {strategy}")
