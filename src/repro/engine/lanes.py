"""Resource lanes and contention declarations for cold-start plans.

The loading-phase stages compete for four physical resources (§2.1, §7.3):
the host CPU (python-side initialization, tokenizer construction), the GPU
compute engine (profiling forwarding, warm-up, capture), the PCIe copy path
(weight H2D streaming), and the SSD/disk read path.  A
:class:`repro.engine.loadplan.LoadPlan` assigns every stage to one lane;
the scheduler serializes stages sharing a lane and overlaps stages on
different lanes, so each strategy's overlap structure follows from lane
assignments and dependencies instead of hand-written timeline math.

Cross-lane *interference* — e.g. the KV profiling forwarding blocking part
of the asynchronous H2D weight copies (§7.3's measured +0.08 s) — is
declared per stage with :class:`Contention` and resolved against the cost
model (`CostModel.contention_penalty`), not hard-coded in the scheduler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Lane(enum.Enum):
    """One serially-executing physical resource of the loading phase."""

    CPU = "cpu"
    GPU_COMPUTE = "gpu_compute"
    PCIE = "pcie"
    DISK = "disk"

    @property
    def label(self) -> str:
        """The lane's stable string identity (used in traces/tables)."""
        return self.value


#: Convenience aliases so plan definitions read like schedules.
CPU = Lane.CPU
GPU_COMPUTE = Lane.GPU_COMPUTE
PCIE = Lane.PCIE
DISK = Lane.DISK


@dataclass(frozen=True)
class Contention:
    """Declared interference between one stage and a set of partner stages.

    Semantics (matching §7.3's measurement methodology): if *any* partner
    stage is admitted to the timeline with a nonzero measured duration, the
    declaring stage's duration is extended once by the penalty resolved
    from ``penalty_key`` — a pessimistic admission-time model of the
    average slowdown the paper measured, not a cycle-accurate one.
    """

    with_stages: Tuple[str, ...]
    penalty_key: str = "weight_kv_interference"

    def applies(self, durations) -> bool:
        """Whether any partner stage was admitted with nonzero duration."""
        return any(durations.get(name, 0.0) > 0 for name in self.with_stages)
