"""Request/sequence abstractions for the engine's serving loop."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import InvalidValueError


@dataclass(frozen=True)
class SamplingParams:
    """Generation controls (greedy decoding; the substrate is deterministic)."""

    max_tokens: int = 16
    stop_token: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_tokens <= 0:
            raise InvalidValueError("max_tokens must be positive")


class SequenceStatus(enum.Enum):
    """Lifecycle of a sequence inside the scheduler."""

    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"
    PREEMPTED = "preempted"


@dataclass
class Sequence:
    """One request's generation state inside the engine."""

    _ids = itertools.count()

    prompt_token_ids: List[int]
    sampling: SamplingParams = field(default_factory=SamplingParams)
    seq_id: str = field(default_factory=lambda: f"seq-{next(Sequence._ids)}")
    output_token_ids: List[int] = field(default_factory=list)
    status: SequenceStatus = SequenceStatus.WAITING
    arrival_time: float = 0.0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.prompt_token_ids:
            raise InvalidValueError("prompt must contain at least one token")

    @property
    def num_prompt_tokens(self) -> int:
        return len(self.prompt_token_ids)

    @property
    def num_total_tokens(self) -> int:
        return self.num_prompt_tokens + len(self.output_token_ids)

    @property
    def finished(self) -> bool:
        return self.status is SequenceStatus.FINISHED

    def append_token(self, token_id: int, now: float) -> None:
        if self.finished:
            raise InvalidValueError(f"{self.seq_id} is already finished")
        self.output_token_ids.append(token_id)
        if self.first_token_time is None:
            self.first_token_time = now
        done = len(self.output_token_ids) >= self.sampling.max_tokens
        if self.sampling.stop_token is not None and \
                token_id == self.sampling.stop_token:
            done = True
        if done:
            self.status = SequenceStatus.FINISHED
            self.finish_time = now

    @property
    def ttft(self) -> Optional[float]:
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time
