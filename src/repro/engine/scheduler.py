"""Iteration-level continuous batching over KV cache blocks.

A simplified vLLM scheduler: every iteration it admits waiting sequences
while KV blocks and batch slots last, grows running sequences' block tables
by one decode token, and — when blocks run out mid-decode — preempts the
youngest running sequence back to the waiting queue (releasing its blocks),
vLLM's recompute-style preemption.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List

from repro.engine.kvcache import BlockManager
from repro.errors import KVCacheExhaustedError, SchedulingError
from repro.engine.request import Sequence, SequenceStatus


@dataclass
class SchedulerOutput:
    """What one iteration should execute."""

    prefill: List[Sequence] = field(default_factory=list)
    decode: List[Sequence] = field(default_factory=list)
    preempted: List[Sequence] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.prefill) + len(self.decode)

    @property
    def is_empty(self) -> bool:
        return self.batch_size == 0


class ContinuousBatchingScheduler:
    """Admission + block management for one serving instance."""

    def __init__(self, block_manager: BlockManager, max_batch_size: int = 16):
        if max_batch_size <= 0:
            raise SchedulingError("max_batch_size must be positive")
        self.block_manager = block_manager
        self.max_batch_size = max_batch_size
        self.waiting: Deque[Sequence] = deque()
        self.running: List[Sequence] = []

    # -- intake ---------------------------------------------------------------

    def add(self, sequence: Sequence) -> None:
        if sequence.status is not SequenceStatus.WAITING:
            raise SchedulingError(
                f"{sequence.seq_id} is {sequence.status.value}, not waiting")
        self.waiting.append(sequence)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)

    # -- one iteration ---------------------------------------------------------

    def schedule(self) -> SchedulerOutput:
        """Plan one iteration: grow running sequences, then admit new ones.

        Progress guarantee: block tables grow oldest-first, and on
        exhaustion the *youngest* running sequence is preempted
        (recompute-style) and the older one retried.  The oldest running
        sequence therefore always advances, which rules out the
        preempt/readmit livelock naive victim selection suffers under
        sustained KV pressure.  A sequence that cannot grow even while
        running alone needs more KV than the cache holds at all — that is
        surfaced as an error, not retried forever.
        """
        output = SchedulerOutput()

        # Each retry preempts exactly one victim, so a correct loop retries
        # at most len(running) - 1 times; the budget turns any violation of
        # that invariant (e.g. a block manager that releases nothing on
        # preemption) into an error instead of an unbounded spin.
        retry_budget = len(self.running)
        index = 0
        while index < len(self.running):
            sequence = self.running[index]
            try:
                self.block_manager.extend(sequence.seq_id,
                                          sequence.num_total_tokens + 1)
            except KVCacheExhaustedError:
                if len(self.running) == 1:
                    raise KVCacheExhaustedError(
                        f"{sequence.seq_id} needs "
                        f"{self.block_manager.blocks_needed(sequence.num_total_tokens + 1)} "
                        f"blocks but the cache holds only "
                        f"{self.block_manager.num_blocks} in total")
                if retry_budget <= 0:
                    raise SchedulingError(
                        f"scheduler made no progress after preempting every "
                        f"candidate victim for {sequence.seq_id} — block "
                        f"accounting is broken")
                retry_budget -= 1
                victim = self.running.pop()        # youngest
                self._preempt(victim, output)
                if victim is sequence:
                    break                          # we preempted ourselves
                continue                           # retry the same sequence
            index += 1
        output.decode.extend(self.running)

        # Admit waiting sequences while slots and blocks last — but never in
        # a round that preempted (readmitting immediately would thrash).
        while (not output.preempted and self.waiting
               and len(self.running) + len(output.prefill)
               < self.max_batch_size):
            candidate = self.waiting[0]
            if not self.block_manager.can_allocate(
                    candidate.num_prompt_tokens + 1):
                # A prompt larger than the whole cache can never be
                # admitted: every later iteration would break here again
                # with the same head-of-queue candidate, spinning the
                # serving loop forever on a sequence that never fits.
                if (self.block_manager.blocks_needed(
                        candidate.num_prompt_tokens + 1)
                        > self.block_manager.num_blocks):
                    self.waiting.popleft()
                    candidate.status = SequenceStatus.FINISHED
                    raise KVCacheExhaustedError(
                        f"{candidate.seq_id} needs "
                        f"{self.block_manager.blocks_needed(candidate.num_prompt_tokens + 1)} "
                        f"blocks for its prompt but the cache holds only "
                        f"{self.block_manager.num_blocks} in total — it can "
                        f"never be scheduled")
                break
            self.waiting.popleft()
            self.block_manager.allocate(candidate.seq_id,
                                        candidate.num_prompt_tokens + 1)
            candidate.status = SequenceStatus.RUNNING
            output.prefill.append(candidate)
        self.running.extend(output.prefill)
        return output

    def _preempt(self, sequence: Sequence, output: SchedulerOutput) -> None:
        """vLLM recompute preemption: drop KV, requeue at the front."""
        self.block_manager.release(sequence.seq_id)
        sequence.status = SequenceStatus.WAITING
        sequence.output_token_ids.clear()
        self.waiting.appendleft(sequence)
        output.preempted.append(sequence)

    # -- completion ---------------------------------------------------------------

    def finish(self, sequence: Sequence) -> None:
        if sequence not in self.running:
            raise SchedulingError(f"{sequence.seq_id} is not running")
        self.running.remove(sequence)
        self.block_manager.release(sequence.seq_id)
