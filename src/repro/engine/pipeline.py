"""Loading-phase timeline names and the legacy composition entry point.

The bespoke per-strategy timeline math that used to live here (closed-form
sequential/async/Medusa composition with a hard-coded interference
constant) is **replaced** by the declarative stage graphs in
:mod:`repro.engine.loadplan` and the per-strategy plans registered in
:mod:`repro.engine.strategies`.  This module keeps the canonical stage
names, the :class:`Timeline`/:class:`ScheduledStage` types (now defined in
``loadplan``), and :func:`compose_timeline` as a thin compatibility shim
that schedules the strategy's registered LoadPlan — so historical callers
and tests keep working while producing placements through the one generic
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.engine.loadplan import (   # noqa: F401  (re-exported names)
    CAPTURE,
    FETCH_ARTIFACT,
    KV_INIT,
    MEDUSA_RESTORE,
    MEDUSA_WARMUP,
    REPLAY_ALLOC,
    STRUCTURE,
    TOKENIZER,
    WEIGHTS,
    LoadPlan,
    PlanStage,
    ScheduledStage,
    restore_graph_stage,
    Timeline,
)
from repro.engine.strategies import Strategy, plan_for


@dataclass(frozen=True)
class StageTiming:
    """Measured duration of one stage (execution-order independent)."""

    name: str
    duration: float


def compose_timeline(strategy: Strategy, durations: Dict[str, float],
                     interference_penalty: float) -> Timeline:
    """Place stage durations on the wall clock according to ``strategy``.

    .. deprecated:: replaced by ``plan_for(strategy).schedule(...)`` — this
       shim resolves the strategy's registered LoadPlan and schedules it
       with ``interference_penalty`` as the only contention penalty, which
       reproduces the legacy closed-form placements exactly.
    """
    plan = plan_for(strategy)
    return plan.schedule(
        durations, {"weight_kv_interference": interference_penalty},
        strategy=strategy)
