"""Loading-phase stage timeline: sequential, async-overlapped, or Medusa.

The engine *executes* stages sequentially (Python has one thread of side
effects) while measuring each stage's simulated duration; this module then
composes those durations into the wall-clock timeline each strategy would
produce, including:

- the mutual interference between asynchronous weight loading and the KV
  profiling forwarding (+0.08 s on the weights stage, §7.3);
- the "bubble" left when the weights stage cannot cover the tokenizer and
  KV-init stages (§2.4, §7.3);
- Medusa's reordering, where the first-layer warm-up runs in parallel with
  weight loading and only the restore tail is serial (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import EngineError
from repro.engine.strategies import Strategy

#: Canonical stage names, in vanilla execution order.
STRUCTURE = "structure_init"
WEIGHTS = "load_weights"
TOKENIZER = "load_tokenizer"
KV_INIT = "kv_init"
CAPTURE = "capture"
#: Medusa-only stages: the overlappable first-layer warm-up and the serial
#: restore tail (alloc replay + node fill + module enumeration + instantiate).
MEDUSA_WARMUP = "medusa_warmup"
MEDUSA_RESTORE = "medusa_restore"


@dataclass(frozen=True)
class StageTiming:
    """Measured duration of one stage (execution-order independent)."""

    name: str
    duration: float


@dataclass(frozen=True)
class ScheduledStage:
    """One stage placed on the strategy's timeline."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """The composed loading-phase schedule of one cold start."""

    strategy: Strategy
    stages: List[ScheduledStage]

    @property
    def total(self) -> float:
        return max((stage.end for stage in self.stages), default=0.0)

    def stage(self, name: str) -> ScheduledStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise EngineError(f"timeline has no stage {name!r}")

    def bubble(self) -> float:
        """Idle time on the critical path between overlapped branches."""
        try:
            weights = self.stage(WEIGHTS)
        except EngineError:
            return 0.0
        branch_end = max((s.end for s in self.stages
                          if s.name in (TOKENIZER, KV_INIT, MEDUSA_WARMUP)),
                         default=weights.end)
        return max(0.0, branch_end - weights.end)


def compose_timeline(strategy: Strategy, durations: Dict[str, float],
                     interference_penalty: float) -> Timeline:
    """Place stage durations on the wall clock according to ``strategy``."""
    missing = [name for name in (STRUCTURE, WEIGHTS, TOKENIZER)
               if name not in durations]
    if missing:
        raise EngineError(f"missing stage durations: {missing}")

    if strategy in (Strategy.VLLM, Strategy.NO_CUDA_GRAPH,
                    Strategy.DEFERRED):
        return _compose_sequential(strategy, durations)
    if strategy is Strategy.VLLM_ASYNC:
        return _compose_async(strategy, durations, interference_penalty)
    if strategy is Strategy.MEDUSA:
        return _compose_medusa(strategy, durations)
    raise EngineError(f"unknown strategy {strategy}")


def _compose_sequential(strategy: Strategy,
                        durations: Dict[str, float]) -> Timeline:
    order = [STRUCTURE, WEIGHTS, TOKENIZER, KV_INIT]
    if strategy.captures_at_cold_start:
        order.append(CAPTURE)
    stages: List[ScheduledStage] = []
    clock = 0.0
    for name in order:
        duration = durations.get(name, 0.0)
        stages.append(ScheduledStage(name, clock, clock + duration))
        clock += duration
    return Timeline(strategy, stages)


def _compose_async(strategy: Strategy, durations: Dict[str, float],
                   interference_penalty: float) -> Timeline:
    """Weights (IO) overlap tokenizer (CPU) then KV init (CPU+GPU)."""
    t0 = durations[STRUCTURE]
    stages = [ScheduledStage(STRUCTURE, 0.0, t0)]
    tokenizer_end = t0 + durations[TOKENIZER]
    stages.append(ScheduledStage(TOKENIZER, t0, tokenizer_end))
    kv_end = tokenizer_end + durations.get(KV_INIT, 0.0)
    stages.append(ScheduledStage(KV_INIT, tokenizer_end, kv_end))
    # The profiling forwarding blocks some of the async H2D copies (§7.3):
    # the weights stage pays the measured penalty whenever a KV profiling
    # stage runs concurrently with it at all.
    weights_duration = durations[WEIGHTS]
    if durations.get(KV_INIT, 0.0) > 0:
        weights_duration += interference_penalty
    weights_end = t0 + weights_duration
    stages.append(ScheduledStage(WEIGHTS, t0, weights_end))
    capture_start = max(weights_end, kv_end)
    capture_end = capture_start + durations.get(CAPTURE, 0.0)
    stages.append(ScheduledStage(CAPTURE, capture_start, capture_end))
    return Timeline(strategy, stages)


def _compose_medusa(strategy: Strategy,
                    durations: Dict[str, float]) -> Timeline:
    """KV restore + first-layer warm-up overlap weights; restore tail serial.

    Medusa reorders KV initialization before weight loading (it no longer
    profiles, so it does not interfere with the H2D copies), letting the
    capture-stage warm-up run during the weight load; the restore tail (the
    part that reads weights-backed state) runs after both finish.
    """
    t0 = durations[STRUCTURE]
    stages = [ScheduledStage(STRUCTURE, 0.0, t0)]
    kv_end = t0 + durations.get(KV_INIT, 0.0)
    stages.append(ScheduledStage(KV_INIT, t0, kv_end))
    warmup_end = kv_end + durations.get(MEDUSA_WARMUP, 0.0)
    stages.append(ScheduledStage(MEDUSA_WARMUP, kv_end, warmup_end))
    weights_end = t0 + durations[WEIGHTS]
    stages.append(ScheduledStage(WEIGHTS, t0, weights_end))
    tokenizer_end = t0 + durations[TOKENIZER]
    stages.append(ScheduledStage(TOKENIZER, t0, tokenizer_end))
    restore_start = max(warmup_end, weights_end, tokenizer_end)
    restore_end = restore_start + durations.get(MEDUSA_RESTORE, 0.0)
    stages.append(ScheduledStage(MEDUSA_RESTORE, restore_start, restore_end))
    return Timeline(strategy, stages)
