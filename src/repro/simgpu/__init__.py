"""Simulated CUDA substrate.

This package stands in for the CUDA driver + GPU hardware the paper runs on.
It reproduces, as first-class mechanisms, every property Medusa's
materialization must contend with:

- ``memory``: device allocation with non-deterministic base addresses and
  LIFO free-list reuse (the source of pointer aliasing / false positives);
- ``libraries`` / ``modules`` / ``driver``: per-process ASLR, lazy
  module-granularity kernel loading, symbol tables with *hidden* kernels
  (cuBLAS-like), ``dlsym``/``cudaGetFuncBySymbol``/
  ``cuModuleEnumerateFunctions``/``cuFuncGetName`` equivalents;
- ``stream`` / ``capture`` / ``graph``: stream capture with the real capture
  restrictions (synchronization is prohibited, first-touch library
  initialization synchronizes → warm-up is mandatory), and graph replay that
  executes through the *raw addresses* recorded in the nodes;
- ``costmodel`` / ``clock``: an analytic timing model calibrated against the
  paper's measured numbers, driving a simulated clock.

Kernels carry real (small) numpy compute, so a wrongly restored pointer or
kernel address produces an observably wrong output or an illegal-access
fault — the exact failure modes the paper's validation step (§4) guards
against.
"""

from repro.simgpu.clock import SimClock
from repro.simgpu.costmodel import CostModel, GpuProperties
from repro.simgpu.graph import CudaGraph, CudaGraphExec, CudaGraphNode
from repro.simgpu.kernels import KernelParam, KernelSpec, ParamKind, ParamSpec
from repro.simgpu.libraries import DynamicLibrary
from repro.simgpu.memory import Buffer, DeviceAllocator
from repro.simgpu.modules import CudaModule
from repro.simgpu.process import CudaProcess, ExecutionMode
from repro.simgpu.stream import CudaEvent, Stream

__all__ = [
    "Buffer",
    "CostModel",
    "CudaGraph",
    "CudaGraphExec",
    "CudaEvent",
    "CudaGraphNode",
    "CudaModule",
    "CudaProcess",
    "Stream",
    "DeviceAllocator",
    "DynamicLibrary",
    "ExecutionMode",
    "GpuProperties",
    "KernelParam",
    "KernelSpec",
    "ParamKind",
    "ParamSpec",
    "SimClock",
]
