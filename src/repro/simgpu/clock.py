"""Simulated wall clock.

All latencies in this reproduction are *simulated* seconds advanced through
this clock; nothing sleeps.  The clock also keeps a labelled span log so the
engine can report per-stage breakdowns (Figures 1, 2, 8) without re-deriving
them from constants.

The clock is a thin veneer over the discrete-event kernel's timing
primitives: its :class:`Span` type *is* :class:`repro.sim.Span`, and
:meth:`SimClock.advance` routes through the kernel's shared
time-monotonicity check (:func:`repro.sim.kernel.check_advance`), so an
attempt to move time backwards raises the repository's
:class:`repro.errors.InvalidValueError` — not a bare ``ValueError`` — from
every timing substrate alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional
import contextlib

from repro.sim.kernel import Span, check_advance

__all__ = ["Span", "SimClock"]


@dataclass
class SimClock:
    """Monotonically advancing simulated clock with span recording."""

    now: float = 0.0
    spans: List[Span] = field(default_factory=list)

    def advance(self, seconds: float) -> float:
        """Advance simulated time by ``seconds`` (must be non-negative)."""
        self.now = check_advance(self.now, seconds)
        return self.now

    def advance_to(self, deadline: float) -> float:
        """Advance to an absolute time, never moving backwards."""
        if deadline > self.now:
            self.now = deadline
        return self.now

    @contextlib.contextmanager
    def span(self, label: str) -> Iterator[Span]:
        """Record the simulated time spent inside the context as a span."""
        record = Span(label=label, start=self.now, end=self.now)
        yield record
        record.end = self.now
        self.spans.append(record)

    def spans_named(self, label: str) -> List[Span]:
        """Every recorded span carrying ``label``, in record order."""
        return [s for s in self.spans if s.label == label]

    def total(self, label: str) -> float:
        """Summed duration of every span named ``label``."""
        return sum(s.duration for s in self.spans_named(label))

    def last(self, label: str) -> Optional[Span]:
        """The most recently recorded span named ``label``, if any."""
        named = self.spans_named(label)
        return named[-1] if named else None
