"""Simulated wall clock.

All latencies in this reproduction are *simulated* seconds advanced through
this clock; nothing sleeps.  The clock also keeps a labelled span log so the
engine can report per-stage breakdowns (Figures 1, 2, 8) without re-deriving
them from constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional
import contextlib


@dataclass
class Span:
    """A labelled, closed interval of simulated time."""

    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimClock:
    """Monotonically advancing simulated clock with span recording."""

    now: float = 0.0
    spans: List[Span] = field(default_factory=list)

    def advance(self, seconds: float) -> float:
        """Advance simulated time by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        return self.now

    def advance_to(self, deadline: float) -> float:
        """Advance to an absolute time, never moving backwards."""
        if deadline > self.now:
            self.now = deadline
        return self.now

    @contextlib.contextmanager
    def span(self, label: str) -> Iterator[Span]:
        """Record the simulated time spent inside the context as a span."""
        record = Span(label=label, start=self.now, end=self.now)
        yield record
        record.end = self.now
        self.spans.append(record)

    def spans_named(self, label: str) -> List[Span]:
        return [s for s in self.spans if s.label == label]

    def total(self, label: str) -> float:
        return sum(s.duration for s in self.spans_named(label))

    def last(self, label: str) -> Optional[Span]:
        named = self.spans_named(label)
        return named[-1] if named else None
