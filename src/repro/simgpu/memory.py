"""Simulated device memory: cudaMalloc/cudaFree with realistic hazards.

Two properties of real ``cudaMalloc`` matter to Medusa and are reproduced
faithfully here:

1. **Non-deterministic addresses across process launches.**  The heap base is
   randomized per process (see :class:`repro.simgpu.process.CudaProcess`), so
   raw pointers recorded in a CUDA graph are invalid in the next cold start —
   Challenge I of the paper (§2.5).
2. **Address reuse within a launch.**  Freed regions are recycled LIFO, so a
   later allocation of a compatible size returns an address that an *earlier,
   already-freed* allocation also returned.  Naively matching a kernel
   parameter against "all addresses ever returned" then finds multiple
   candidates — the false-positive scenario of Figure 6 that motivates
   trace-based backward matching (§4.1).

Buffers additionally carry a small numpy *payload* decoupled from their
*declared* byte size: declared sizes drive memory accounting at real-model
scale (a 40 GB device "filling up" exactly as in the paper), payloads keep
kernel compute cheap while remaining real data whose corruption is
observable.  Freed buffers keep a poisoned payload: a stale pointer that
sneaks through restoration produces visibly corrupt output, never a silent
pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import IllegalMemoryAccessError, InvalidValueError, OutOfMemoryError

#: Allocation granularity, mirroring the CUDA allocator's 256-byte alignment.
ALIGNMENT = 256

#: Value poured into a buffer's payload when it is freed.
POISON_VALUE = float("nan")

#: Buffers above this size are indexed for interior-pointer resolution.
_LARGE_THRESHOLD = 64 * 1024


def _align(size: int) -> int:
    return (size + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass
class Buffer:
    """One live (or historical) device allocation."""

    address: int
    size: int                      # declared bytes (drives memory accounting)
    alloc_index: int               # position in this process's allocation sequence
    tag: str = ""                  # provenance label: weight/activation/workspace/kv/...
    pool: str = "default"          # memory pool (PyTorch keeps graph pools private)
    payload: Optional[np.ndarray] = None
    live: bool = True
    freed_at_index: Optional[int] = None   # event index of the free, if freed

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end

    def write(self, data: np.ndarray) -> None:
        """Set payload contents (a device-side memcpy destination)."""
        if not self.live:
            raise IllegalMemoryAccessError(
                f"write to freed buffer at 0x{self.address:x}")
        self.payload = np.array(data, dtype=np.float64, copy=True)

    def read(self) -> np.ndarray:
        """Read payload contents (raises on a dangling pointer)."""
        if not self.live:
            raise IllegalMemoryAccessError(
                f"read from freed buffer at 0x{self.address:x}")
        if self.payload is None:
            raise IllegalMemoryAccessError(
                f"read from uninitialized buffer at 0x{self.address:x}")
        return self.payload


@dataclass
class AllocationEvent:
    """One entry of the (de)allocation sequence Medusa replays (§4.2)."""

    kind: str                      # "alloc" | "free"
    address: int
    size: int                      # bytes for alloc; 0 for free
    alloc_index: Optional[int]     # sequence index of the allocation (both kinds)
    tag: str = ""
    pooled: bool = False           # free kind: caching-allocator free vs cudaFree
    pool: str = "default"          # memory pool the block belongs to


class DeviceAllocator:
    """cudaMalloc/cudaFree over a randomized heap with LIFO reuse.

    ``base`` is the randomized heap start supplied by the owning process.
    The allocator is a bump allocator with per-size free lists; freeing and
    re-allocating the same size returns the most recently freed address,
    exactly the aliasing behaviour the paper's Figure 6 illustrates.
    """

    def __init__(self, base: int, capacity_bytes: int):
        if base % ALIGNMENT:
            raise InvalidValueError(f"heap base 0x{base:x} is not aligned")
        self.base = base
        self.capacity_bytes = capacity_bytes
        self._cursor = base
        self._free_lists: Dict[int, List[int]] = {}
        self._live: Dict[int, Buffer] = {}
        self._history: List[Buffer] = []        # every buffer ever allocated
        self.events: List[AllocationEvent] = []  # the replayable sequence
        self.bytes_in_use = 0
        self.peak_bytes = 0
        self._alloc_counter = 0
        self._pending: set = set()            # addresses sitting on free lists
        self._large_live: Dict[int, Buffer] = {}   # interior-pointer targets

    # -- core API -----------------------------------------------------------

    def malloc(self, size: int, tag: str = "",
               payload: Optional[np.ndarray] = None,
               pool: str = "default") -> Buffer:
        """Allocate ``size`` declared bytes; optionally seed a payload.

        ``pool`` namespaces the free lists: blocks freed in one pool are
        never handed to allocations from another.  This mirrors PyTorch's
        private CUDA-graph memory pools — the property that keeps ordinary
        eager allocations from claiming (and later corrupting) memory that
        captured graphs still execute through.
        """
        if size <= 0:
            raise InvalidValueError(f"cudaMalloc of non-positive size {size}")
        aligned = _align(size)
        if self.bytes_in_use + aligned > self.capacity_bytes:
            raise OutOfMemoryError(
                f"device OOM: in use {self.bytes_in_use} + request {aligned} "
                f"> capacity {self.capacity_bytes}")
        free_list = self._free_lists.get((pool, aligned))
        carried_payload: Optional[np.ndarray] = None
        if free_list:
            address, pooled, carried_payload = free_list.pop()  # LIFO reuse
            self._pending.discard(address)
            if pooled:
                # A pool-freed block handed out again: the old Buffer object
                # stops resolving, but the memory (and its stale contents)
                # carries over to the new owner — exactly how the caching
                # allocator behaves on real GPUs.  bytes_in_use was never
                # decremented by the pooled free, so it does not grow here.
                superseded = self._live.pop(address, None)
                if superseded is not None:
                    superseded.live = False
            else:
                self.bytes_in_use += aligned
        else:
            address = self._cursor
            self._cursor += aligned
            self.bytes_in_use += aligned
        index = self._alloc_counter
        self._alloc_counter += 1
        buffer = Buffer(address=address, size=aligned, alloc_index=index,
                        tag=tag, pool=pool)
        if carried_payload is not None:
            buffer.payload = carried_payload
        if payload is not None:
            buffer.write(payload)
        self._live[address] = buffer
        self._history.append(buffer)
        if aligned > _LARGE_THRESHOLD:
            self._large_live[address] = buffer
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        self.events.append(
            AllocationEvent("alloc", address, aligned, index, tag, pool=pool))
        return buffer

    def map_fixed(self, address: int, size: int, tag: str = "",
                  pool: str = "default",
                  payload: Optional[np.ndarray] = None) -> Buffer:
        """Map a buffer at a *fixed* address (CRIU-style snapshot restore).

        Checkpoint/restore systems reconstruct an address space verbatim so
        raw pointers inside driver objects stay valid; this is the primitive
        that makes the §9 baseline implementable.  The address must not
        overlap any live allocation.
        """
        if address % ALIGNMENT:
            raise InvalidValueError(
                f"fixed mapping at unaligned address 0x{address:x}")
        aligned = _align(size)
        if self.bytes_in_use + aligned > self.capacity_bytes:
            raise OutOfMemoryError(
                f"device OOM mapping 0x{address:x} (+{aligned})")
        for live in self._live.values():
            if address < live.end and live.address < address + aligned:
                raise IllegalMemoryAccessError(
                    f"fixed mapping 0x{address:x}..+{aligned} overlaps live "
                    f"buffer 0x{live.address:x}..+{live.size}")
        index = self._alloc_counter
        self._alloc_counter += 1
        buffer = Buffer(address=address, size=aligned, alloc_index=index,
                        tag=tag, pool=pool)
        if payload is not None:
            buffer.write(payload)
        self._live[address] = buffer
        self._history.append(buffer)
        if aligned > _LARGE_THRESHOLD:
            self._large_live[address] = buffer
        self.bytes_in_use += aligned
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        self._cursor = max(self._cursor, address + aligned)
        self.events.append(
            AllocationEvent("alloc", address, aligned, index, tag, pool=pool))
        return buffer

    def is_live(self, address: int) -> bool:
        """Whether ``address`` resolves and is not sitting on a free list."""
        return address in self._live and address not in self._pending

    def reset_peak(self) -> None:
        """Collapse the high-water mark to current usage.

        Used after rolling back an aborted restore replay: the leaked
        allocations are gone, and profiling-based KV sizing (which reads
        ``peak_bytes``) must not keep charging for them.
        """
        self.peak_bytes = self.bytes_in_use

    def free(self, address: int) -> None:
        """``cudaFree``: return memory to the driver.

        The payload is poisoned and the address stops resolving — a graph
        that still references it faults on replay (the hazard PyTorch avoids
        by never cudaFree-ing capture-referenced memory, §2.2).
        """
        buffer = self._live.pop(address, None)
        if buffer is None or self._pending_pool_reuse(address):
            raise IllegalMemoryAccessError(
                f"cudaFree of unknown or already-freed address 0x{address:x}")
        buffer.live = False
        buffer.freed_at_index = len(self.events)
        if buffer.payload is not None:
            buffer.payload = np.full_like(buffer.payload, POISON_VALUE)
        self._free_lists.setdefault((buffer.pool, buffer.size), []).append(
            (address, False, None))
        self._pending.add(address)
        self._large_live.pop(address, None)
        self.bytes_in_use -= buffer.size
        self.events.append(
            AllocationEvent("free", address, 0, buffer.alloc_index, buffer.tag))

    def pool_free(self, address: int) -> None:
        """Caching-allocator free (the PyTorch CUDA allocator's ``free``).

        The block returns to the allocator's free list for LIFO reuse, but
        the memory stays mapped: the buffer keeps resolving and its stale
        contents stay readable until another allocation claims the block.
        This is what makes replaying a graph whose "temporary" buffers were
        freed both possible and safe (paper §4.3) — and what creates the
        address-reuse false positives of Figure 6.
        """
        buffer = self._live.get(address)
        if buffer is None or self._pending_pool_reuse(address):
            raise IllegalMemoryAccessError(
                f"pool free of unknown or already-freed address 0x{address:x}")
        buffer.freed_at_index = len(self.events)
        self._free_lists.setdefault((buffer.pool, buffer.size), []).append(
            (address, True, buffer.payload))
        self._pending.add(address)
        self.events.append(
            AllocationEvent("free", address, 0, buffer.alloc_index, buffer.tag,
                            pooled=True))

    def empty_cache(self) -> int:
        """``torch.cuda.empty_cache()``: cudaFree every cached free block.

        Pool-freed blocks are truly released (they stop resolving, their
        contents are poisoned, and the device's free memory grows); blocks
        that were already cudaFree'd simply leave the free lists.  Returns
        the number of bytes released.  Recorded as a single replayable event.
        """
        released = 0
        for entries in self._free_lists.values():
            for address, pooled, _payload in entries:
                if not pooled:
                    continue
                buffer = self._live.pop(address, None)
                if buffer is None:
                    continue
                buffer.live = False
                self._large_live.pop(address, None)
                if buffer.payload is not None:
                    buffer.payload = np.full_like(buffer.payload, POISON_VALUE)
                self.bytes_in_use -= buffer.size
                released += buffer.size
        self._free_lists.clear()
        self._pending.clear()
        self.events.append(AllocationEvent("empty_cache", 0, 0, None))
        return released

    def _pending_pool_reuse(self, address: int) -> bool:
        """True if ``address`` already sits on a free list awaiting reuse."""
        return address in self._pending

    @property
    def reserved_bytes(self) -> int:
        """Bytes sitting on free lists awaiting reuse (pool-freed only)."""
        total = 0
        for (_pool, size), entries in self._free_lists.items():
            total += sum(size for _addr, pooled, _payload in entries if pooled)
        return total

    # -- lookups -------------------------------------------------------------

    def resolve(self, address: int) -> Buffer:
        """Map a raw pointer to the live buffer containing it.

        Pointers may land inside a buffer, not only at its start (§4.1:
        "matched when the addresses are identical or within the range of the
        allocated buffer").
        """
        buffer = self._live.get(address)
        if buffer is not None:
            return buffer
        for candidate in self._large_live.values():
            if candidate.contains(address):
                return candidate
        for candidate in self._live.values():
            if candidate.contains(address):
                return candidate
        raise IllegalMemoryAccessError(
            f"pointer 0x{address:x} maps to no live allocation")

    def try_resolve(self, address: int) -> Optional[Buffer]:
        try:
            return self.resolve(address)
        except IllegalMemoryAccessError:
            return None

    def buffer_by_alloc_index(self, index: int) -> Buffer:
        """The buffer returned by the ``index``-th allocation of this process."""
        if not 0 <= index < len(self._history):
            raise InvalidValueError(
                f"allocation index {index} out of range "
                f"(process performed {len(self._history)} allocations)")
        return self._history[index]

    @property
    def live_buffers(self) -> Tuple[Buffer, ...]:
        return tuple(self._live.values())

    @property
    def history(self) -> Tuple[Buffer, ...]:
        return tuple(self._history)

    @property
    def num_allocations(self) -> int:
        return self._alloc_counter

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.bytes_in_use
