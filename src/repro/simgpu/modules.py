"""CUDA modules: the load granularity of device kernels.

The CUDA driver loads kernels per *module*: touching any kernel of a module
makes every kernel in that module resolvable (paper §5).  Medusa's
triggering-kernels technique exists precisely because of this granularity —
executing one visible kernel of a module surfaces the hidden ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import InvalidValueError
from repro.simgpu.kernels import KernelSpec


@dataclass(frozen=True)
class CudaModule:
    """An immutable set of kernels that load together."""

    name: str
    library: str
    kernels: Tuple[KernelSpec, ...]

    def __post_init__(self) -> None:
        for spec in self.kernels:
            if spec.module != self.name:
                raise InvalidValueError(
                    f"kernel {spec.name} claims module {spec.module}, "
                    f"placed in {self.name}")
            if spec.library != self.library:
                raise InvalidValueError(
                    f"kernel {spec.name} claims library {spec.library}, "
                    f"module belongs to {self.library}")

    def kernel_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.kernels)

    def find(self, kernel_name: str) -> KernelSpec:
        for spec in self.kernels:
            if spec.name == kernel_name:
                return spec
        raise InvalidValueError(
            f"module {self.name} contains no kernel {kernel_name}")
