"""Kernel execution shared by eager launches and graph replay.

Both paths go through :func:`execute_params`: resolve the raw parameter array
against the kernel's spec and the *live* allocation table, run the numpy op,
write the output payload.  Nothing is looked up by convenient side channels —
a graph node executes purely from its recorded address and parameter values,
so restoration mistakes surface as faults or corrupt data.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import IllegalMemoryAccessError, InvalidValueError
from repro.simgpu.graph import CudaGraphNode
from repro.simgpu.kernels import KernelParam, KernelSpec, ParamKind, run_op


def execute_params(process, spec: KernelSpec,
                   params: Sequence[KernelParam]) -> None:
    """Execute one kernel given its spec and a raw parameter array."""
    if len(params) != len(spec.params):
        raise InvalidValueError(
            f"kernel {spec.name}: expected {len(spec.params)} params, "
            f"got {len(params)}")
    buffers: Dict[str, np.ndarray] = {}
    consts: Dict[str, int] = {}
    output_buffer = None
    for slot, param in zip(spec.params, params):
        if param.size != slot.size:
            raise InvalidValueError(
                f"kernel {spec.name} param {slot.role!r}: size {param.size} "
                f"does not match spec size {slot.size}")
        if slot.kind is ParamKind.POINTER:
            buffer = process.allocator.resolve(param.value)
            if slot.role == "output":
                output_buffer = buffer
            else:
                if buffer.payload is None:
                    raise IllegalMemoryAccessError(
                        f"kernel {spec.name} reads uninitialized buffer "
                        f"0x{param.value:x} (role {slot.role!r})")
                buffers[slot.role] = buffer.read()
        else:
            consts[slot.role] = param.value
    if output_buffer is None:
        raise InvalidValueError(f"kernel {spec.name} has no output pointer")
    result = run_op(spec, buffers, consts)
    output_buffer.write(result)


def execute_node(process, node: CudaGraphNode) -> None:
    """Execute a graph node through its raw recorded kernel address."""
    spec = process.driver.resolve_executable(node.kernel_address)
    execute_params(process, spec, node.params)
