"""The simulated process: one cold start = one fresh ``CudaProcess``.

Each process launch draws a new seed-derived address layout: the device heap
base and every library's load address are randomized, so *nothing* recorded
as a raw address in a previous process is valid here.  This is the
non-determinism Medusa's materialization has to survive (paper §2.5).
"""

from __future__ import annotations

import contextlib
import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidValueError
from repro.simgpu.clock import SimClock
from repro.simgpu.costmodel import CostModel
from repro.simgpu.kernels import (
    CONST32_SIZE,
    KernelParam,
    KernelSpec,
    ParamKind,
    magic_values,
)
from repro.simgpu.libraries import LibraryCatalog
from repro.simgpu.driver import CudaDriver
from repro.simgpu.memory import ALIGNMENT, Buffer, DeviceAllocator
from repro.simgpu.stream import LaunchRecord, Stream
from repro.utils.rng import SeedSequence

#: Device heap region (above the library text region, see driver.py).
_HEAP_REGION_BASE = 0x7F00_0000_0000
_HEAP_REGION_SPAN = 0x0040_0000_0000


class ExecutionMode(enum.Enum):
    """COMPUTE executes kernel numpy ops; TIMING only advances the clock."""

    COMPUTE = "compute"
    TIMING = "timing"


class Interceptor:
    """Base class for Medusa's offline hooks (allocation + launch trace).

    ``adds_overhead`` controls whether the process charges the per-event
    interception cost while this hook is attached; Medusa's offline tracer
    pays it, a passive profiler does not.
    """

    adds_overhead = True

    def on_alloc(self, buffer: Buffer) -> None:  # pragma: no cover - interface
        pass

    def on_free(self, buffer: Buffer) -> None:  # pragma: no cover - interface
        pass

    def on_launch(self, record: LaunchRecord) -> None:  # pragma: no cover
        pass

    def on_empty_cache(self) -> None:  # pragma: no cover - interface
        pass


class CudaProcess:
    """One simulated process: clock + allocator + driver + streams."""

    def __init__(self, seed: int, catalog: LibraryCatalog,
                 cost_model: Optional[CostModel] = None,
                 mode: ExecutionMode = ExecutionMode.COMPUTE,
                 name: str = "proc", injector=None):
        self.seed = int(seed)
        self.name = name
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.mode = mode
        self.clock = SimClock()
        #: Optional repro.faults.FaultInjector (chaos testing); forwarded to
        #: the driver so symbol-resolution faults fire at the driver layer.
        self.injector = injector
        seeds = SeedSequence(self.seed).child("process", name)
        heap_offset = int(seeds.generator("heap").integers(
            0, _HEAP_REGION_SPAN // ALIGNMENT))
        self.allocator = DeviceAllocator(
            base=_HEAP_REGION_BASE + heap_offset * ALIGNMENT,
            capacity_bytes=self.cost_model.gpu.total_memory_bytes)
        self.driver = CudaDriver(catalog, seeds.child("aslr"),
                                 injector=injector)
        self.default_stream = Stream(self, name="stream0")
        self._interceptors: List[Interceptor] = []
        self._magic: Dict[str, Tuple[int, int]] = {}   # kernel -> (addr_a, addr_b)
        self._current_pool = "default"

    # -- interception ---------------------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    @property
    def intercepted(self) -> bool:
        return bool(self._interceptors)

    def _charge_interception(self) -> None:
        if any(i.adds_overhead for i in self._interceptors):
            self.clock.advance(self.cost_model.interception_per_event)

    def notify_launch(self, record: LaunchRecord) -> None:
        if not self._interceptors:
            return
        self._charge_interception()
        for interceptor in self._interceptors:
            interceptor.on_launch(record)

    # -- memory ---------------------------------------------------------------

    @contextlib.contextmanager
    def memory_pool(self, pool: str):
        """Route allocations to a named pool (PyTorch's graph-pool analogue)."""
        previous = self._current_pool
        self._current_pool = pool
        try:
            yield
        finally:
            self._current_pool = previous

    def malloc(self, size: int, tag: str = "",
               payload: Optional[np.ndarray] = None,
               pool: Optional[str] = None) -> Buffer:
        buffer = self.allocator.malloc(size, tag=tag, payload=payload,
                                       pool=pool or self._current_pool)
        if self._interceptors:
            self._charge_interception()
            for interceptor in self._interceptors:
                interceptor.on_alloc(buffer)
        return buffer

    def free(self, address: int) -> None:
        buffer = self.allocator.resolve(address)
        self.allocator.free(address)
        if self._interceptors:
            self._charge_interception()
            for interceptor in self._interceptors:
                interceptor.on_free(buffer)

    def pool_free(self, address: int) -> None:
        """Caching-allocator free (see DeviceAllocator.pool_free)."""
        buffer = self.allocator.resolve(address)
        self.allocator.pool_free(address)
        if self._interceptors:
            self._charge_interception()
            for interceptor in self._interceptors:
                interceptor.on_free(buffer)

    def memcpy_h2d(self, buffer: Buffer, host_data: np.ndarray) -> None:
        """``cudaMemcpyAsync`` host->device: write payload, pay bandwidth.

        Time is charged per copy from the buffer's *declared* size, so a
        whole-model weight load mechanically sums to
        ``param_bytes / h2d_bandwidth`` — the loading-stage formula.
        """
        self.clock.advance(buffer.size / self.cost_model.gpu.h2d_bandwidth)
        buffer.write(host_data)

    def empty_cache(self) -> int:
        """``torch.cuda.empty_cache()`` — releases cached pool blocks."""
        released = self.allocator.empty_cache()
        if self._interceptors:
            self._charge_interception()
            for interceptor in self._interceptors:
                interceptor.on_empty_cache()
        return released

    # -- cuBLAS-style permanent workspace ("magic") buffers ---------------------

    def has_magic(self, kernel_name: str) -> bool:
        return kernel_name in self._magic

    def setup_magic(self, spec: KernelSpec) -> Tuple[int, int]:
        """First-touch workspace setup: allocate + write the magic scalars.

        These are the paper's *permanent buffers*: allocated during warm-up,
        never freed, each holding a 4-byte magic value the kernel checks at
        every launch (§4.3).
        """
        value_a, value_b = magic_values(spec.name)
        buf_a = self.malloc(CONST32_SIZE, tag="magic",
                            payload=np.full((1, 1), float(value_a)))
        buf_b = self.malloc(CONST32_SIZE, tag="magic",
                            payload=np.full((1, 1), float(value_b)))
        self._magic[spec.name] = (buf_a.address, buf_b.address)
        return buf_a.address, buf_b.address

    def register_magic(self, kernel_name: str,
                       addr_a: int, addr_b: int) -> None:
        """Adopt pre-existing magic buffers (restoration/plan-launch path)."""
        self._magic[kernel_name] = (addr_a, addr_b)

    def reset_magic_workspaces(self) -> None:
        """Drop all per-kernel magic workspaces (pool-freeing their buffers).

        Mirrors PyTorch allocating a *fresh* cuBLAS workspace for graph
        capture: the capture-stage warm-up re-acquires per-kernel workspace
        buffers inside the capture window, which is what makes them land in
        the "permanent" contents class Medusa must dump and restore (§4.3).
        """
        for addr_a, addr_b in self._magic.values():
            self.pool_free(addr_a)
            self.pool_free(addr_b)
        self._magic.clear()

    def patch_magic_params(self, spec: KernelSpec,
                           params: Sequence[KernelParam]) -> List[KernelParam]:
        """Substitute the registered magic buffer addresses into ``params``."""
        addr_a, addr_b = self._magic[spec.name]
        patched = list(params)
        for index, slot in enumerate(spec.params):
            if slot.kind is not ParamKind.POINTER:
                continue
            if slot.role == "magic_a":
                patched[index] = KernelParam(slot.size, addr_a)
            elif slot.role == "magic_b":
                patched[index] = KernelParam(slot.size, addr_b)
        return patched

    # -- launching & capture -----------------------------------------------------

    def launch(self, spec: KernelSpec, params: Sequence[KernelParam],
               launch_dims: Optional[Dict[str, int]] = None,
               preset_magic: bool = False) -> None:
        self.default_stream.launch_kernel(spec, params, launch_dims,
                                          preset_magic=preset_magic)

    def synchronize(self) -> None:
        self.default_stream.synchronize()

    # -- payload snapshots (validation support, §4) --------------------------------

    def snapshot_payloads(self) -> Dict[int, Optional[np.ndarray]]:
        return {
            buffer.address:
                None if buffer.payload is None else buffer.payload.copy()
            for buffer in self.allocator.live_buffers
        }

    def restore_payloads(self, snapshot: Dict[int, Optional[np.ndarray]]) -> None:
        for buffer in self.allocator.live_buffers:
            if buffer.address in snapshot:
                saved = snapshot[buffer.address]
                buffer.payload = None if saved is None else saved.copy()
