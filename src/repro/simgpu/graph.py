"""CUDA graphs: nodes, edges, instantiation, and self-replaying.

A captured graph is *low-level and ready-to-execute* (paper §2.5): each node
stores the raw kernel address and a flat parameter array whose entries are
known only by byte size.  Replay executes straight through those raw values —
via :meth:`repro.simgpu.driver.CudaDriver.resolve_executable` and the live
allocation table — so a stale pointer or an unloaded module fails exactly the
way it would on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidValueError
from repro.simgpu.kernels import KernelParam


@dataclass
class CudaGraphNode:
    """One kernel node: address + parameter array + launch dimensions.

    Mirrors Figure 4(d): the kernel address, the parameter array (with each
    entry's size), and the launch configuration recorded at capture.  Both
    the address and the parameters are mutable, as with
    ``cudaGraphExecKernelNodeSetParams`` — restoration rewrites them in place.
    """

    kernel_address: int
    params: List[KernelParam]
    launch_dims: Dict[str, int] = field(default_factory=dict)

    def param_sizes(self) -> Tuple[int, ...]:
        return tuple(p.size for p in self.params)

    def set_param(self, index: int, value: int) -> None:
        old = self.params[index]
        self.params[index] = KernelParam(size=old.size, value=value)


@dataclass
class GraphExecMeta:
    """Timing metadata attached at capture (not part of the CUDA ABI)."""

    param_bytes: int = 0        # model weight bytes read per forwarding
    num_tokens: int = 1         # batched tokens of the captured forwarding
    batch_size: int = 1


class CudaGraph:
    """A captured (or restored) graph of kernel nodes with dependency edges."""

    def __init__(self, nodes: Optional[List[CudaGraphNode]] = None,
                 edges: Optional[Set[Tuple[int, int]]] = None,
                 exec_meta: Optional[GraphExecMeta] = None):
        self.nodes: List[CudaGraphNode] = nodes if nodes is not None else []
        self.edges: Set[Tuple[int, int]] = edges if edges is not None else set()
        self.exec_meta = exec_meta or GraphExecMeta()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def add_node(self, node: CudaGraphNode) -> int:
        self.nodes.append(node)
        return len(self.nodes) - 1

    def add_edge(self, src: int, dst: int) -> None:
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise InvalidValueError(f"edge ({src}, {dst}) out of node range")
        if src == dst:
            raise InvalidValueError(f"self-edge on node {src}")
        self.edges.add((src, dst))

    def topological_order(self) -> List[int]:
        """Kahn's algorithm with node-index tie-breaking (deterministic)."""
        indegree = [0] * len(self.nodes)
        successors: Dict[int, List[int]] = {}
        for src, dst in sorted(self.edges):
            indegree[dst] += 1
            successors.setdefault(src, []).append(dst)
        import heapq
        ready = [i for i, d in enumerate(indegree) if d == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            node = heapq.heappop(ready)
            order.append(node)
            for succ in successors.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, succ)
        if len(order) != len(self.nodes):
            raise InvalidValueError("graph dependencies contain a cycle")
        return order

    def instantiate(self, process) -> "CudaGraphExec":
        """``cudaGraphInstantiate``: build the executable form (costs time)."""
        process.clock.advance(
            process.cost_model.instantiate_time(self.num_nodes))
        return CudaGraphExec(graph=self, process=process)


class CudaGraphExec:
    """The instantiated, launchable form of a graph ("self-replaying", §2.2)."""

    def __init__(self, graph: CudaGraph, process):
        self.graph = graph
        self._process = process
        self._order: Optional[List[int]] = None

    def replay(self) -> None:
        """Launch the whole graph with a single CPU submission.

        Advances simulated time by the graph-step cost; in COMPUTE mode also
        executes every node's kernel through its *recorded raw addresses*.
        """
        from repro.simgpu.executor import execute_node  # local: avoid cycle
        from repro.simgpu.process import ExecutionMode

        process = self._process
        meta = self.graph.exec_meta
        if meta.param_bytes:
            step = process.cost_model.graph_step_time(
                meta.param_bytes, meta.num_tokens)
        else:
            step = (process.cost_model.graph_launch_overhead
                    + self.graph.num_nodes * process.cost_model.kernel_min_time)
        process.clock.advance(step)

        if process.mode is ExecutionMode.COMPUTE:
            if self._order is None:
                self._order = self.graph.topological_order()
            for index in self._order:
                execute_node(process, self.graph.nodes[index])

    def invalidate_order_cache(self) -> None:
        """Call after mutating edges (restoration does this once)."""
        self._order = None
