"""Analytic timing model — the single source of truth for simulated latency.

Every constant here is calibrated so the Qwen1.5-4B loading-phase breakdown
matches the paper's measured numbers (Figure 8: 0.85 s structure init,
0.39 s weight loading, 0.21 s tokenizer, 0.50 s KV-cache initialization,
0.90 s capturing; 2.85 s total), and the up-to-2.4x CUDA-graph speedup
(Figure 3) falls where the paper observed it.  All other models scale
through the same formulas, which reproduces the cross-model shape of
Figures 2 and 7.  See DESIGN.md §5.

The decode-step model deserves a word.  A decode iteration on a resident
model is memory-bandwidth bound on the GPU side; the CPU adds a
*non-overlapped* per-kernel launch gap when kernels are launched one by one:

    eager decode step  = t_gpu(batch) + n_kernels * launch_gap
    graph  decode step = t_gpu(batch) + graph_launch_overhead

so the CUDA-graph speedup is  1 + n_kernels * launch_gap / t_gpu, largest
for small models at small batch — matching the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidValueError


@dataclass(frozen=True)
class GpuProperties:
    """Static properties of the simulated device (default: A100-40GB SXM4)."""

    name: str = "A100-SXM4-40GB"
    total_memory_bytes: int = 40 * 1024**3
    # Effective sustained throughput, not peak datasheet numbers.
    effective_flops: float = 1.52e14          # ~150 TFLOP/s fp16 w/ good MFU
    effective_mem_bandwidth: float = 1.55e12  # ~80% of 1.94 TB/s HBM2e
    h2d_bandwidth: float = 20.4e9             # pipelined SSD->host->device path


#: The paper's testbed GPU (the default everywhere).
A100_40GB = GpuProperties()

#: A newer-generation profile, for cross-GPU-type experiments: more memory,
#: higher sustained compute/bandwidth.  Artifacts are keyed per GPU type
#: (§3), so materializations from one profile never restore on the other.
H100_80GB = GpuProperties(
    name="H100-SXM5-80GB",
    total_memory_bytes=80 * 1024**3,
    effective_flops=4.0e14,
    effective_mem_bandwidth=2.8e12,
    h2d_bandwidth=25e9,
)


@dataclass(frozen=True)
class CostModel:
    """All timing constants and derived cost formulas (simulated seconds)."""

    gpu: GpuProperties = field(default_factory=GpuProperties)

    # --- kernel launching -------------------------------------------------
    launch_gap: float = 14.5e-6        # non-overlapped CPU cost per eager launch
    graph_launch_overhead: float = 30e-6   # one CPU launch for a whole graph
    kernel_min_time: float = 1.5e-6    # floor for a single kernel's GPU time
    library_init_time: float = 45e-3   # first-touch init (e.g. cuBLAS handle)

    # --- stream capture / graph construction ------------------------------
    capture_record_per_node: float = 6.8e-6  # driver records one node
    instantiate_per_node: float = 3.5e-6     # cudaGraphInstantiate, per node

    # --- loading-phase stages ---------------------------------------------
    structure_init_base: float = 0.30        # python module instantiation
    structure_init_per_byte: float = 6.92e-11  # tensor construction + cudaMalloc
    tokenizer_base: float = 0.06
    tokenizer_per_vocab_entry: float = 1.0e-6
    kv_profile_tokens: int = 8192            # max_num_batched_tokens profiled
    kv_block_alloc_time: float = 0.02        # allocate KV blocks given free mem
    weight_kv_interference: float = 0.08     # async H2D blocked by profiling (§7.3)
    runtime_init_time: float = 0.83          # container/python start (Fig. 1: ~22%)
    first_token_extra: float = 0.07          # "generate first token" tail (Fig. 1)

    # --- Medusa online restoration ----------------------------------------
    artifact_load_base: float = 0.05         # open + index the artifact store
    artifact_deserialize_per_node: float = 10e-6
    restore_fill_per_node: float = 7e-6      # fill pointers/kernel addr into node
    alloc_replay_per_event: float = 1.5e-6   # replay one (de)allocation
    module_enumerate_per_kernel: float = 3e-6
    kv_restore_time: float = 0.02            # read materialized free-mem value
    trigger_timeout_seconds: float = 0.25    # watchdog budget per trigger launch

    # --- Medusa offline phase ----------------------------------------------
    interception_per_event: float = 40e-6    # hooked allocation/launch overhead
    graph_dump_per_node: float = 150e-6      # inspect + serialize one node
    analysis_per_node: float = 2.05e-3       # trace-based backward matching
    artifact_write_base: float = 0.35

    # ----------------------------------------------------------------------
    # Derived formulas
    # ----------------------------------------------------------------------

    def contention_penalty(self, key: str) -> float:
        """Resolve a LoadPlan contention-penalty key to its constant.

        Cold-start plans declare cross-lane interference symbolically
        (e.g. ``"weight_kv_interference"``); the scheduler resolves the
        key through this hook so the penalty stays a calibrated cost-model
        constant rather than a number baked into a plan.
        """
        value = getattr(self, key, None)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InvalidValueError(
                f"cost model has no contention penalty named {key!r}")
        return float(value)

    def structure_init_time(self, param_bytes: int) -> float:
        """Stage 1: instantiate model structure + allocate weight tensors."""
        return self.structure_init_base + self.structure_init_per_byte * param_bytes

    def weight_load_time(self, param_bytes: int) -> float:
        """Stage 2: stream weights from SSDs into the pre-allocated tensors."""
        return param_bytes / self.gpu.h2d_bandwidth

    def tokenizer_load_time(self, vocab_size: int) -> float:
        """Stage 3: load and build the tokenizer."""
        return self.tokenizer_base + self.tokenizer_per_vocab_entry * vocab_size

    def forward_gpu_time(self, param_bytes: int, num_tokens: int) -> float:
        """GPU time of one forwarding over ``num_tokens`` total batched tokens.

        max(memory-bound weight read, compute-bound GEMM time).  ``num_tokens``
        is batch_size for a decode step, or the full prompt length for prefill.
        """
        num_params = param_bytes / 2  # fp16
        compute = 2.0 * num_params * num_tokens / self.gpu.effective_flops
        memory = param_bytes / self.gpu.effective_mem_bandwidth
        return max(compute, memory)

    def kv_profile_time(self, param_bytes: int) -> float:
        """Stage 4's profiling forwarding (max seq len x max batch)."""
        return self.forward_gpu_time(param_bytes, self.kv_profile_tokens)

    def eager_step_time(self, param_bytes: int, num_tokens: int,
                        num_kernels: int) -> float:
        """One forwarding launched kernel-by-kernel (no CUDA graph)."""
        return (self.forward_gpu_time(param_bytes, num_tokens)
                + num_kernels * self.launch_gap)

    def graph_step_time(self, param_bytes: int, num_tokens: int) -> float:
        """One forwarding replayed as a CUDA graph."""
        return (self.forward_gpu_time(param_bytes, num_tokens)
                + self.graph_launch_overhead)

    def capture_forward_time(self, num_kernels: int) -> float:
        """Capturing forwarding: kernels are recorded, not executed."""
        return num_kernels * (self.launch_gap + self.capture_record_per_node)

    def instantiate_time(self, num_kernels: int) -> float:
        return num_kernels * self.instantiate_per_node
