"""Dynamic-link libraries with partial symbol tables.

A :class:`DynamicLibrary` owns modules of kernels.  Its *export table* lists
only the non-hidden kernels: ``dlsym`` resolves those, while hidden kernels
(cuBLAS-style) are invisible — they can only be reached by loading their
module and enumerating it (paper §5).  Libraries also expose *host entries*
(e.g. the ``cublasGemmEx`` C API): always-callable host functions that launch
hidden device kernels internally, which is how real frameworks execute
closed-source kernels and how our warm-up forwarding triggers module loads.

Libraries require one-time initialization on first use in a process; the
initialization performs an implicit device synchronization, which is
*prohibited during stream capture* — this reproduces why warm-up forwarding
must precede capturing (paper §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import InvalidValueError, SymbolNotFoundError
from repro.simgpu.kernels import KernelSpec
from repro.simgpu.modules import CudaModule


@dataclass(frozen=True)
class DynamicLibrary:
    """An immutable shared library: modules + export table + host entries."""

    name: str
    modules: Tuple[CudaModule, ...]
    requires_init: bool = True   # first use synchronizes the device

    def __post_init__(self) -> None:
        seen: Dict[str, str] = {}
        for module in self.modules:
            if module.library != self.name:
                raise InvalidValueError(
                    f"module {module.name} belongs to {module.library}, "
                    f"not {self.name}")
            for spec in module.kernels:
                if spec.name in seen:
                    raise InvalidValueError(
                        f"duplicate kernel {spec.name} in library {self.name}")
                seen[spec.name] = module.name

    def iter_kernels(self) -> Iterator[KernelSpec]:
        for module in self.modules:
            yield from module.kernels

    def exported_symbols(self) -> Tuple[str, ...]:
        """The symbol table: mangled names of all *visible* kernels."""
        return tuple(s.name for s in self.iter_kernels() if not s.hidden)

    def host_entries(self) -> Tuple[str, ...]:
        """Always-exported host APIs that launch kernels internally."""
        return tuple(sorted({s.host_entry for s in self.iter_kernels()
                             if s.host_entry}))

    def find_kernel(self, kernel_name: str) -> KernelSpec:
        for spec in self.iter_kernels():
            if spec.name == kernel_name:
                return spec
        raise SymbolNotFoundError(
            f"library {self.name} has no kernel {kernel_name}")

    def module_of(self, kernel_name: str) -> CudaModule:
        for module in self.modules:
            if any(s.name == kernel_name for s in module.kernels):
                return module
        raise SymbolNotFoundError(
            f"library {self.name} has no kernel {kernel_name}")


class LibraryCatalog:
    """The set of libraries installed on the simulated machine.

    Shared, immutable configuration — per-process state (load addresses,
    init status, loaded modules) lives in :class:`repro.simgpu.driver.CudaDriver`.
    """

    def __init__(self, libraries: Tuple[DynamicLibrary, ...] = ()):
        self._libraries: Dict[str, DynamicLibrary] = {}
        self._kernel_index: Dict[str, KernelSpec] = {}
        for library in libraries:
            self.add(library)

    def add(self, library: DynamicLibrary) -> None:
        if library.name in self._libraries:
            raise InvalidValueError(f"duplicate library {library.name}")
        for spec in library.iter_kernels():
            if spec.name in self._kernel_index:
                raise InvalidValueError(
                    f"kernel {spec.name} defined in both "
                    f"{self._kernel_index[spec.name].library} and {library.name}")
            self._kernel_index[spec.name] = spec
        self._libraries[library.name] = library

    def library(self, name: str) -> DynamicLibrary:
        library = self._libraries.get(name)
        if library is None:
            raise SymbolNotFoundError(f"no such library: {name}")
        return library

    def kernel(self, kernel_name: str) -> KernelSpec:
        spec = self._kernel_index.get(kernel_name)
        if spec is None:
            raise SymbolNotFoundError(f"no such kernel anywhere: {kernel_name}")
        return spec

    def libraries(self) -> Tuple[DynamicLibrary, ...]:
        return tuple(self._libraries.values())

    def __contains__(self, kernel_name: str) -> bool:
        return kernel_name in self._kernel_index
