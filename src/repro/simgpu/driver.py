"""Per-process CUDA driver state: ASLR, module loading, symbol resolution.

This is where the paper's Challenge II lives.  Kernel addresses are
``library base + stable offset``; the base is randomized per process launch
(ASLR), so addresses recorded in an offline CUDA graph are meaningless
online.  Visible kernels can be re-resolved through the
``dlopen → dlsym → cudaGetFuncBySymbol`` path; hidden kernels only become
addressable after their *module* loads, at which point
``cuModuleEnumerateFunctions``/``cuFuncGetName`` expose them (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import (
    InvalidValueError,
    ModuleNotLoadedError,
    SymbolNotFoundError,
)
from repro.simgpu.kernels import KernelSpec, hash_stable
from repro.simgpu.libraries import DynamicLibrary, LibraryCatalog
from repro.simgpu.modules import CudaModule

#: Region where library text segments land (distinct from the device heap
#: region, so pointer classification heuristics can tell them apart).
_LIBRARY_REGION_BASE = 0x5500_0000_0000
_LIBRARY_REGION_SPAN = 0x0080_0000_0000


@dataclass(frozen=True)
class HostSymbol:
    """The result of a successful ``dlsym``: a host-side function handle."""

    library: str
    kernel_name: str
    handle: int


class CudaDriver:
    """Process-local driver state over a shared :class:`LibraryCatalog`."""

    def __init__(self, catalog: LibraryCatalog, aslr_seeds, injector=None):
        self.catalog = catalog
        self._aslr_seeds = aslr_seeds     # SeedSequence: per-library bases
        #: Optional repro.faults.FaultInjector: lets chaos tests make
        #: symbol resolution fail the way a driver/library skew would.
        self.injector = injector
        self._lib_bases: Dict[str, int] = {}
        self._initialized_libs: Set[str] = set()
        self._loaded_modules: Set[Tuple[str, str]] = set()   # (library, module)
        self._addr_to_kernel: Dict[int, KernelSpec] = {}
        self._kernel_to_addr: Dict[str, int] = {}

    # -- ASLR ----------------------------------------------------------------

    def dlopen(self, library_name: str) -> DynamicLibrary:
        """Map a library into this process (assigns its randomized base)."""
        library = self.catalog.library(library_name)
        if library_name not in self._lib_bases:
            # Per-(process, library) base: independent of dlopen order, so a
            # checkpoint restored into a same-seed process sees identical
            # kernel addresses regardless of its library-loading order.
            rng = self._aslr_seeds.generator("lib", library_name)
            offset = int(rng.integers(0, _LIBRARY_REGION_SPAN // 0x1000))
            self._lib_bases[library_name] = _LIBRARY_REGION_BASE + offset * 0x1000
            # Addresses become *defined* at dlopen, but kernels are not
            # launchable/enumerable until their module loads.
            for spec in library.iter_kernels():
                address = self._compute_address(library_name, spec)
                self._kernel_to_addr[spec.name] = address
        return library

    def _compute_address(self, library_name: str, spec: KernelSpec) -> int:
        base = self._lib_bases[library_name]
        offset = (hash_stable(f"{spec.module}/{spec.name}") & 0xFFFFFF) * 0x40
        address = base + offset
        while address in self._addr_to_kernel and \
                self._addr_to_kernel[address].name != spec.name:
            address += 0x40   # deterministic collision bump
        self._addr_to_kernel.setdefault(address, spec)
        return address

    # -- library initialization (the warm-up requirement) ---------------------

    def library_initialized(self, library_name: str) -> bool:
        return library_name in self._initialized_libs

    def mark_library_initialized(self, library_name: str) -> None:
        self._initialized_libs.add(library_name)

    # -- module loading --------------------------------------------------------

    def module_loaded(self, library_name: str, module_name: str) -> bool:
        return (library_name, module_name) in self._loaded_modules

    def load_module_for(self, spec: KernelSpec) -> CudaModule:
        """Load the module containing ``spec`` (idempotent); returns it."""
        library = self.dlopen(spec.library)
        module = library.module_of(spec.name)
        self._loaded_modules.add((spec.library, module.name))
        return module

    def loaded_modules(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted(self._loaded_modules))

    # -- symbol resolution (the dlsym path, §5) ---------------------------------

    def dlsym(self, library_name: str, mangled_name: str) -> HostSymbol:
        """Resolve a *visible* kernel symbol; hidden kernels raise."""
        library = self.dlopen(library_name)
        if self.injector is not None \
                and self.injector.symbol_blocked(mangled_name):
            raise SymbolNotFoundError(
                f"dlsym: {mangled_name} is not in the symbol table of "
                f"{library_name} (fault injection)")
        spec = library.find_kernel(mangled_name)
        if spec.hidden:
            raise SymbolNotFoundError(
                f"dlsym: {mangled_name} is not in the symbol table of "
                f"{library_name} (hidden kernel)")
        handle = hash_stable(f"host:{library_name}:{mangled_name}")
        return HostSymbol(library=library_name, kernel_name=mangled_name,
                          handle=handle)

    def cuda_get_func_by_symbol(self, symbol: HostSymbol) -> int:
        """``cudaGetFuncBySymbol``: host symbol → device address.

        Loads the containing module as a side effect, as the real driver does.
        """
        spec = self.catalog.kernel(symbol.kernel_name)
        self.load_module_for(spec)
        return self._kernel_to_addr[spec.name]

    # -- module enumeration (the triggering-kernels path, §5) --------------------

    def cu_module_enumerate_functions(self, library_name: str,
                                      module_name: str) -> Tuple[int, ...]:
        """All kernel addresses in a *loaded* module, hidden ones included."""
        if not self.module_loaded(library_name, module_name):
            raise ModuleNotLoadedError(
                f"module {library_name}/{module_name} is not loaded; "
                f"execute one of its kernels first")
        library = self.catalog.library(library_name)
        for module in library.modules:
            if module.name == module_name:
                return tuple(self._kernel_to_addr[s.name]
                             for s in module.kernels
                             if self.injector is None
                             or not self.injector.symbol_blocked(s.name))
        raise InvalidValueError(f"{library_name} has no module {module_name}")

    def cu_func_get_name(self, address: int) -> str:
        """``cuFuncGetName``: device address → mangled name."""
        spec = self._addr_to_kernel.get(address)
        if spec is None:
            raise InvalidValueError(f"0x{address:x} is not a kernel address")
        return spec.name

    # -- address↔spec lookups used by launch/replay ------------------------------

    def kernel_address(self, kernel_name: str) -> int:
        """The address of a kernel whose library has been mapped."""
        address = self._kernel_to_addr.get(kernel_name)
        if address is None:
            raise SymbolNotFoundError(
                f"kernel {kernel_name}: library not dlopen()ed in this process")
        return address

    def resolve_executable(self, address: int) -> KernelSpec:
        """Map a raw device address to an *executable* kernel.

        Launching through an address whose module was never loaded is an
        invalid device function — the failure mode of blindly restoring a
        materialized graph without triggering module loads.
        """
        spec = self._addr_to_kernel.get(address)
        if spec is None:
            raise InvalidValueError(
                f"launch through invalid kernel address 0x{address:x}")
        module = self.catalog.library(spec.library).module_of(spec.name)
        if not self.module_loaded(spec.library, module.name):
            raise ModuleNotLoadedError(
                f"kernel {spec.name} at 0x{address:x}: module "
                f"{spec.library}/{module.name} not loaded (invalid device function)")
        return spec
