"""Kernel-level launch profiling (the per-kernel Nsight view).

Attach a :class:`KernelProfiler` to a process to count every kernel launch
— eager vs captured, per kernel, per library — and summarize where a cold
start's launches go.  Used by tests to assert launch counts and available
to users debugging their own model definitions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simgpu.process import CudaProcess, Interceptor
from repro.simgpu.stream import LaunchRecord


@dataclass
class LaunchSample:
    """One observed launch."""

    time: float
    kernel_name: str
    library: str
    captured: bool
    batch_size: int


class KernelProfiler(Interceptor):
    """Counts and timestamps kernel launches on one process."""

    adds_overhead = False   # a passive observer: no interception cost

    def __init__(self, process: CudaProcess, keep_samples: bool = False):
        self._process = process
        self._keep_samples = keep_samples
        self.samples: List[LaunchSample] = []
        self.per_kernel: Counter = Counter()
        self.per_library: Counter = Counter()
        self.eager_launches = 0
        self.captured_launches = 0

    # NOTE: the profiler deliberately does NOT advance the clock; unlike
    # Medusa's offline interception it models a zero-overhead observer.

    def on_launch(self, record: LaunchRecord) -> None:
        self.per_kernel[record.kernel_name] += 1
        self.per_library[record.library] += 1
        if record.captured:
            self.captured_launches += 1
        else:
            self.eager_launches += 1
        if self._keep_samples:
            self.samples.append(LaunchSample(
                time=self._process.clock.now,
                kernel_name=record.kernel_name,
                library=record.library,
                captured=record.captured,
                batch_size=record.launch_dims.get("batch_size", 0),
            ))

    # -- reporting ---------------------------------------------------------

    @property
    def total_launches(self) -> int:
        return self.eager_launches + self.captured_launches

    def top_kernels(self, count: int = 10) -> List:
        return self.per_kernel.most_common(count)

    def summary(self) -> Dict[str, float]:
        return {
            "total_launches": float(self.total_launches),
            "eager_launches": float(self.eager_launches),
            "captured_launches": float(self.captured_launches),
            "distinct_kernels": float(len(self.per_kernel)),
            "libraries": float(len(self.per_library)),
        }


def profile(process: CudaProcess, keep_samples: bool = False) -> KernelProfiler:
    """Attach a profiler to ``process`` and return it."""
    profiler = KernelProfiler(process, keep_samples=keep_samples)
    process.add_interceptor(profiler)
    return profiler
