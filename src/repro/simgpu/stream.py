"""Streams, kernel launching, and stream capture.

Stream capture reproduces the real driver's behaviour and restrictions
(paper §2.2–2.3):

- while capturing, launched kernels are *recorded, not executed*;
- device/stream synchronization during capture is a capture violation;
- the first use of a library, the first launch of a kernel's module, and a
  cuBLAS-style kernel's one-time workspace setup all imply synchronization —
  so capture fails unless a warm-up forwarding ran first;
- dependencies are recorded from stream order plus producer→consumer buffer
  relationships, yielding the edge set Medusa materializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import CaptureViolationError, InvalidValueError
from repro.simgpu.graph import CudaGraph, CudaGraphNode, GraphExecMeta
from repro.simgpu.kernels import KernelParam, KernelSpec, ParamKind


@dataclass
class LaunchRecord:
    """One intercepted ``cudaLaunchKernel`` (Medusa's offline trace unit)."""

    kernel_name: str
    library: str
    params: List[KernelParam]
    launch_dims: Dict[str, int]
    captured: bool      # True if this launch was recorded into a graph


class CudaEvent:
    """A CUDA event: the fork/join primitive of multi-stream capture.

    Recording an event on a capturing stream remembers the stream's last
    node; a second stream that waits on that event *joins* the capture and
    its subsequent launches depend on the recorded node — how real stream
    capture propagates across streams (cudaStreamWaitEvent).
    """

    def __init__(self, name: str = "event"):
        self.name = name
        self.recorded = False
        self.capture: Optional["_CaptureBuilder"] = None
        self.capture_node: Optional[int] = None


class _CaptureBuilder:
    """Accumulates nodes/edges between begin_capture and end_capture."""

    def __init__(self, meta: GraphExecMeta, origin: "Stream"):
        self.graph = CudaGraph(exec_meta=meta)
        self.origin = origin
        self.joined: List["Stream"] = [origin]
        self._last_stream_node: Dict[str, Optional[int]] = {origin.name: None}
        self._pending_deps: Dict[str, List[int]] = {}
        self._last_writer: Dict[int, int] = {}   # buffer base addr -> node idx

    def join(self, stream: "Stream", dependency_node: Optional[int]) -> None:
        """A stream enters the capture via cudaStreamWaitEvent."""
        if stream not in self.joined:
            self.joined.append(stream)
            self._last_stream_node[stream.name] = None
        if dependency_node is not None:
            self._pending_deps.setdefault(stream.name, []).append(
                dependency_node)

    def last_node(self, stream: "Stream") -> Optional[int]:
        return self._last_stream_node.get(stream.name)

    def record(self, process, spec: KernelSpec, address: int,
               params: Sequence[KernelParam],
               launch_dims: Dict[str, int],
               stream: Optional["Stream"] = None) -> None:
        stream = stream or self.origin
        node = CudaGraphNode(kernel_address=address,
                             params=list(params),
                             launch_dims=dict(launch_dims))
        index = self.graph.add_node(node)
        previous = self._last_stream_node.get(stream.name)
        if previous is not None:
            self.graph.add_edge(previous, index)
        for dependency in self._pending_deps.pop(stream.name, ()):
            if dependency != index:
                self.graph.add_edge(dependency, index)
        reads: List[int] = []
        writes: List[int] = []
        for slot, param in zip(spec.params, params):
            if slot.kind is not ParamKind.POINTER:
                continue
            buffer = process.allocator.resolve(param.value)
            if slot.role == "output":
                writes.append(buffer.address)
            elif slot.role == "kv":
                reads.append(buffer.address)
                writes.append(buffer.address)
            else:
                reads.append(buffer.address)
        for base in reads:
            writer = self._last_writer.get(base)
            if writer is not None and writer != index:
                self.graph.add_edge(writer, index)
        for base in writes:
            self._last_writer[base] = index
        self._last_stream_node[stream.name] = index


class Stream:
    """A CUDA stream bound to one simulated process."""

    def __init__(self, process, name: str = "stream0"):
        self.process = process
        self.name = name
        self._capture: Optional[_CaptureBuilder] = None

    # -- capture lifecycle ------------------------------------------------

    @property
    def is_capturing(self) -> bool:
        return self._capture is not None

    def begin_capture(self, meta: Optional[GraphExecMeta] = None) -> None:
        if self._capture is not None:
            raise CaptureViolationError(
                f"stream {self.name} is already capturing; graphs must be "
                f"captured one by one (§2.2)")
        self._capture = _CaptureBuilder(meta or GraphExecMeta(), origin=self)

    def end_capture(self) -> CudaGraph:
        if self._capture is None:
            raise CaptureViolationError(
                f"end_capture on stream {self.name} without begin_capture")
        if self._capture.origin is not self:
            raise CaptureViolationError(
                f"stream {self.name} joined the capture via an event; only "
                f"the originating stream {self._capture.origin.name} may end "
                f"it")
        graph = self._capture.graph
        for stream in self._capture.joined:
            stream._capture = None
        cm = self.process.cost_model
        self.process.clock.advance(cm.capture_forward_time(graph.num_nodes))
        return graph

    def abort_capture(self) -> None:
        """Drop an in-flight capture after a violation."""
        if self._capture is not None:
            for stream in self._capture.joined:
                stream._capture = None
        self._capture = None

    # -- events (fork/join across streams) ------------------------------

    def record_event(self, event: CudaEvent) -> None:
        """``cudaEventRecord``: snapshot this stream's position."""
        event.recorded = True
        if self._capture is not None:
            event.capture = self._capture
            event.capture_node = self._capture.last_node(self)
        else:
            event.capture = None
            event.capture_node = None

    def wait_event(self, event: CudaEvent) -> None:
        """``cudaStreamWaitEvent``: order after the event; joins captures."""
        if not event.recorded:
            raise InvalidValueError(
                f"stream {self.name} waits on unrecorded event {event.name}")
        if event.capture is not None:
            if self._capture is not None and self._capture is not event.capture:
                self.abort_capture()
                raise CaptureViolationError(
                    f"stream {self.name} is capturing a different graph "
                    f"than event {event.name} belongs to")
            self._capture = event.capture
            event.capture.join(self, event.capture_node)
        elif self._capture is not None:
            self.abort_capture()
            raise CaptureViolationError(
                f"waiting on a non-captured event during capture "
                f"(synchronization, §2.3)")

    # -- synchronization ----------------------------------------------------

    def synchronize(self) -> None:
        if self._capture is not None:
            self.abort_capture()
            raise CaptureViolationError(
                "stream synchronization is prohibited during capture")
        self.process.clock.advance(5e-6)

    # -- launching ------------------------------------------------------------

    def launch_kernel(self, spec: KernelSpec,
                      params: Sequence[KernelParam],
                      launch_dims: Optional[Dict[str, int]] = None,
                      preset_magic: bool = False) -> None:
        """Launch one kernel (eagerly, or recorded into an ongoing capture).

        ``preset_magic``: the caller guarantees the magic workspace buffers
        referenced by ``params`` already exist (the restoration/plan-launch
        path); first-touch workspace setup is skipped.
        """
        from repro.simgpu.executor import execute_params  # avoid cycle
        from repro.simgpu.process import ExecutionMode

        process = self.process
        driver = process.driver
        driver.dlopen(spec.library)

        library = driver.catalog.library(spec.library)
        if library.requires_init and not driver.library_initialized(spec.library):
            if self._capture is not None:
                self.abort_capture()
                raise CaptureViolationError(
                    f"first call into {spec.library} initializes the library "
                    f"(implicit synchronization) during capture — warm up first")
            process.clock.advance(process.cost_model.library_init_time)
            driver.mark_library_initialized(spec.library)

        module = library.module_of(spec.name)
        if not driver.module_loaded(spec.library, module.name):
            if self._capture is not None:
                self.abort_capture()
                raise CaptureViolationError(
                    f"first launch of module {spec.library}/{module.name} "
                    f"loads it (implicit synchronization) during capture — "
                    f"warm up first")
            driver.load_module_for(spec)

        if spec.needs_magic and not preset_magic:
            if not process.has_magic(spec.name):
                if self._capture is not None:
                    self.abort_capture()
                    raise CaptureViolationError(
                        f"one-time workspace setup of {spec.name} during "
                        f"capture — warm up first")
                process.setup_magic(spec)
            params = process.patch_magic_params(spec, params)

        address = driver.kernel_address(spec.name)
        capturing = self._capture is not None
        process.notify_launch(LaunchRecord(
            kernel_name=spec.name, library=spec.library,
            params=list(params), launch_dims=dict(launch_dims or {}),
            captured=capturing))

        if capturing:
            self._capture.record(process, spec, address, params,
                                 launch_dims or {}, stream=self)
            return
        if process.mode is ExecutionMode.COMPUTE:
            execute_params(process, spec, params)
