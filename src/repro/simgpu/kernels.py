"""Kernel specifications and their (small but real) compute.

A :class:`KernelSpec` is the device-side identity of a kernel: its mangled
name, the library/module it lives in, whether it is *hidden* from the
library's export table (cuBLAS-like, §5), and its parameter layout.  The
parameter layout is what Medusa inspects inside CUDA graph nodes: a flat
array of values whose only metadata is each entry's byte size — 4-byte
constants vs 8-byte values that *may* be device pointers (§4).

Every kernel has an executable numpy ``op`` over fixed-size payload matrices.
This keeps restoration honest: a graph node restored with a wrong pointer or
wrong kernel address produces an observably wrong output (or an
illegal-access fault), which is exactly what the paper's validation step
catches.

Payload convention: every buffer payload is a ``(PAYLOAD_DIM, PAYLOAD_DIM)``
float64 matrix (except 4-byte "magic" scalars, see below).  "cuBLAS-style"
kernels additionally read two *permanent* 4-byte magic buffers written during
library warm-up; if the magic values are wrong the kernel produces silently
corrupted output, modelling the paper's observation that ~9% of kernels need
two 4-byte permanent buffers holding magic numbers (§4.3).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidValueError

#: Side of the square payload matrices kernels compute on.
PAYLOAD_DIM = 4

#: Byte sizes that identify parameter kinds inside a raw node (paper §4:
#: "the pointers are 8 bytes long and usually begin with a high address
#: prefix").
CONST32_SIZE = 4
WORD64_SIZE = 8


class ParamKind(enum.Enum):
    """Semantic kind of a kernel parameter (known to the kernel author).

    Medusa does *not* see this; it must re-derive pointer-ness from the raw
    (size, value) pairs in the node.  The spec-side kind exists so the
    substrate can execute kernels and so tests can check Medusa's
    classification against ground truth.
    """

    CONST32 = "const32"     # 4-byte scalar constant
    CONST64 = "const64"     # 8-byte scalar constant (a potential false positive)
    POINTER = "pointer"     # 8-byte device pointer


@dataclass(frozen=True)
class ParamSpec:
    """One slot in a kernel's parameter layout."""

    kind: ParamKind
    role: str   # e.g. "input", "weight", "output", "kv", "magic_a", "seed", ...

    @property
    def size(self) -> int:
        return CONST32_SIZE if self.kind is ParamKind.CONST32 else WORD64_SIZE


@dataclass(frozen=True)
class KernelParam:
    """A concrete parameter value as recorded in a launch or a graph node."""

    size: int     # 4 or 8 bytes — the only metadata a raw node exposes
    value: int    # constant value, or raw device address for pointers

    def __post_init__(self) -> None:
        if self.size not in (CONST32_SIZE, WORD64_SIZE):
            raise InvalidValueError(f"unsupported parameter size {self.size}")


@dataclass(frozen=True)
class KernelSpec:
    """Device-side identity and behaviour of one kernel."""

    name: str                    # mangled name, unique across all libraries
    library: str                 # owning dynamic-link library
    module: str                  # owning CUDA module (load granularity, §5)
    op: str                      # compute op key in OPS
    params: Tuple[ParamSpec, ...]
    hidden: bool = False         # absent from the library's export table
    host_entry: Optional[str] = None  # exported host API that launches it
    needs_magic: bool = False    # requires the two permanent magic buffers
    flops_share: float = 1.0     # relative share of a layer's FLOPs (timing)

    def pointer_roles(self) -> List[str]:
        return [p.role for p in self.params if p.kind is ParamKind.POINTER]

    def param_index(self, role: str) -> int:
        for i, p in enumerate(self.params):
            if p.role == role:
                return i
        raise InvalidValueError(f"kernel {self.name} has no param role {role!r}")


def magic_values(kernel_name: str) -> Tuple[int, int]:
    """The two per-kernel magic numbers a cuBLAS-style kernel requires.

    Derived deterministically from the kernel name so the offline and online
    phases agree on ground truth, while remaining distinct per kernel.
    """
    h = abs(hash_stable(kernel_name))
    return (h & 0x7FFFFFFF) or 1, ((h >> 31) & 0x7FFFFFFF) or 2


def hash_stable(text: str) -> int:
    """A stable (non-salted) 62-bit string hash."""
    value = 1469598103934665603
    for ch in text.encode():
        value = ((value ^ ch) * 1099511628211) & ((1 << 62) - 1)
    return value


# ---------------------------------------------------------------------------
# Compute ops
#
# Each op receives the resolved payload matrices by role plus the constant
# values by role, and returns the new contents for the "output" role (and
# optionally mutates stateful roles such as "kv").
# ---------------------------------------------------------------------------

OpFunc = Callable[[Mapping[str, np.ndarray], Mapping[str, int]], np.ndarray]

OPS: Dict[str, OpFunc] = {}


def _register(name: str) -> Callable[[OpFunc], OpFunc]:
    def decorator(fn: OpFunc) -> OpFunc:
        OPS[name] = fn
        return fn
    return decorator


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


@_register("embed")
def _op_embed(bufs, consts):
    """Token embedding: rows of the weight matrix gathered by input ids."""
    ids = np.abs(bufs["input"]).astype(np.int64) % PAYLOAD_DIM
    return bufs["weight"][ids[:, 0]]


@_register("layernorm")
def _op_layernorm(bufs, consts):
    x = bufs["input"]
    mu = x.mean(axis=-1, keepdims=True)
    sigma = x.std(axis=-1, keepdims=True) + 1e-5
    return (x - mu) / sigma * bufs["weight"]


@_register("gemm")
def _op_gemm(bufs, consts):
    """Plain GEMM (visible kernel)."""
    return bufs["input"] @ bufs["weight"]


@_register("gemm_magic")
def _op_gemm_magic(bufs, consts):
    """cuBLAS-style GEMM gated on two permanent magic buffers.

    The magic buffers hold one scalar each; if either does not match the
    expected constants baked into the node, the output is scaled by the
    mismatch — silent corruption, detectable only by output validation (§4).
    """
    out = bufs["input"] @ bufs["weight"]
    got_a = float(bufs["magic_a"][0, 0])
    got_b = float(bufs["magic_b"][0, 0])
    want_a = float(consts["magic_a_expected"])
    want_b = float(consts["magic_b_expected"])
    if got_a != want_a or got_b != want_b:
        drift = 1.0 + abs(got_a - want_a) + abs(got_b - want_b)
        out = out * drift + 1.0
    return out


@_register("rotary")
def _op_rotary(bufs, consts):
    theta = (consts.get("rot_steps", 1) % 16) * (math.pi / 16.0)
    x = bufs["input"]
    return x * math.cos(theta) + np.roll(x, 1, axis=-1) * math.sin(theta)


@_register("attention")
def _op_attention(bufs, consts):
    """Paged-attention stand-in: mixes input with (and updates) the KV state."""
    x = bufs["input"]
    kv = bufs["kv"]
    kv_new = 0.9 * kv + 0.1 * x
    bufs["kv"][...] = kv_new          # in-place: KV cache is stateful
    scores = _softmax(x @ x.T / math.sqrt(PAYLOAD_DIM))
    return scores @ kv_new


@_register("silu_mul")
def _op_silu_mul(bufs, consts):
    gate = bufs["input"]
    up = bufs["input_b"]
    return gate / (1.0 + np.exp(-np.clip(gate, -30, 30))) * up


@_register("residual_add")
def _op_residual_add(bufs, consts):
    return bufs["input"] + bufs["input_b"]


@_register("copy")
def _op_copy(bufs, consts):
    return np.array(bufs["input"], copy=True)


@_register("sample")
def _op_sample(bufs, consts):
    """Greedy sampling: one-hot of the argmax of each row."""
    x = bufs["input"]
    out = np.zeros_like(x)
    out[np.arange(x.shape[0]), np.argmax(x, axis=-1)] = 1.0
    return out


def run_op(spec: KernelSpec, buffers: Mapping[str, np.ndarray],
           consts: Mapping[str, int]) -> np.ndarray:
    """Execute a kernel's compute given resolved payloads and constants."""
    op = OPS.get(spec.op)
    if op is None:
        raise InvalidValueError(f"kernel {spec.name} has unknown op {spec.op!r}")
    return op(buffers, consts)
