"""Command-line interface: the paper's workflow as subcommands.

Mirrors the original artifact's scripts (`scripts/serverless_llm.py
--offline`, `scripts/overall.py`, ...) as one CLI::

    python -m repro models
    python -m repro coldstart --model Qwen1.5-4B --strategy vllm
    python -m repro offline   --model Qwen1.5-4B --output qwen4b.medusa.json
    python -m repro lint      qwen4b.medusa.json
    python -m repro lint-plan --all --format json
    python -m repro validate  --artifact qwen4b.medusa.json
    python -m repro restore   --model Qwen1.5-4B --artifact qwen4b.medusa.json --validate
    python -m repro simulate  --model Llama2-7B  --rps 10 --strategy medusa

Artifact paths ending in ``.npz`` select the binary format: ``offline``
writes via :func:`repro.core.binfmt.save_binary`, and the consuming
commands open them lazily (:class:`repro.core.binfmt.LazyArtifact`),
which puts ``coldstart --strategy medusa``/``restore``/``validate`` on
the pipelined vectorized fast path.

``lint``, ``lint-plan``, and ``validate`` share the CI-friendly
exit-code convention:
0 = clean/passed, 1 = diagnostics found or outputs diverged, 2 = the
artifact could not be read at all.  With ``validate --degraded-ok`` a
restore that walked the degradation ladder but still serves correct
outputs exits 3 — distinguishable from both a clean pass and a hard
failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.artifact import MaterializedModel
from repro.core.binfmt import LazyArtifact, save_binary
from repro.core.offline import run_offline
from repro.core.online import cold_start_for
from repro.core.validation import validate_restoration
from repro.engine import Strategy
from repro.models.zoo import PAPER_MODELS, get_model_config
from repro.reporting import format_stage_breakdown, format_table
from repro.serverless import (
    ClusterSimulator,
    ServingCostModel,
    ShareGPTWorkload,
    SimulationConfig,
    autoscaler_names,
    policy_names,
    shape_names,
)

_STRATEGY_NAMES = {
    "vllm": Strategy.VLLM,
    "vllm-async": Strategy.VLLM_ASYNC,
    "medusa": Strategy.MEDUSA,
    "no-cuda-graph": Strategy.NO_CUDA_GRAPH,
    "deferred": Strategy.DEFERRED,
}


def _strategy(name: str) -> Strategy:
    strategy = _STRATEGY_NAMES.get(name.lower())
    if strategy is None:
        raise argparse.ArgumentTypeError(
            f"unknown strategy {name!r}; choose from "
            f"{', '.join(_STRATEGY_NAMES)}")
    return strategy


def _load_artifact(path: str):
    """Open an artifact path: ``.npz`` lazily, anything else as JSON.

    Binary artifacts come back as :class:`repro.core.binfmt.LazyArtifact`,
    which routes ``coldstart``/``restore``/``validate`` onto the pipelined
    fast path (`medusa_cold_start(fast=...)` auto-detects it).
    """
    if str(path).endswith(".npz"):
        return LazyArtifact(path)
    return MaterializedModel.load(path)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Medusa (ASPLOS '25) reproduction on a simulated GPU")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo (Table 1)")

    cold = sub.add_parser("coldstart", help="run one cold start")
    cold.add_argument("--model", required=True)
    cold.add_argument("--strategy", type=_strategy, default=Strategy.VLLM)
    cold.add_argument("--artifact", help="Medusa artifact path "
                                         "(required for --strategy medusa)")
    cold.add_argument("--seed", type=int, default=0)

    save_tensor = sub.add_parser(
        "save-tensor", help="write a model's weights to disk "
                            "(the artifact's --save_tensor step)")
    save_tensor.add_argument("--model", required=True)
    save_tensor.add_argument("--dir", required=True,
                             help="checkpoint directory")

    offline = sub.add_parser("offline", help="materialize a model (offline phase)")
    offline.add_argument("--model", required=True)
    offline.add_argument("--output", required=True,
                         help="artifact JSON output path")
    offline.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="statically verify an artifact (no execution)")
    lint.add_argument("artifact", help="artifact JSON path")
    lint.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")

    lint_plan = sub.add_parser(
        "lint-plan",
        help="statically verify cold-start load plans (PLN0xx codes)")
    lint_plan.add_argument("plan", nargs="?",
                           help="a registered plan name (repro.engine."
                                "strategies); omit with --all")
    lint_plan.add_argument("--all", action="store_true",
                           help="lint every registered plan, including "
                                "degraded-ladder variants")
    lint_plan.add_argument("--format", choices=("text", "json"),
                           default="text", help="report format")

    validate = sub.add_parser(
        "validate", help="full restore + output validation of an artifact")
    validate.add_argument("--artifact", required=True)
    validate.add_argument("--model",
                          help="engine model (default: the artifact's)")
    validate.add_argument("--json", action="store_true",
                          help="emit the result as JSON")
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--degraded-ok", action="store_true",
                          help="tolerate restore faults via the degradation "
                               "ladder; exit 3 when the engine serves on a "
                               "lower rung instead of failing with 1")

    restore = sub.add_parser("restore", help="Medusa online cold start")
    restore.add_argument("--model", required=True)
    restore.add_argument("--artifact", required=True)
    restore.add_argument("--validate", action="store_true",
                         help="also run cross-process output validation "
                              "(COMPUTE mode; tiny models only in practice)")
    restore.add_argument("--seed", type=int, default=0)

    simulate = sub.add_parser("simulate", help="serverless trace simulation")
    simulate.add_argument("--model", required=True)
    simulate.add_argument("--strategy", type=_strategy, default=Strategy.VLLM)
    simulate.add_argument("--rps", type=float, default=2.0)
    simulate.add_argument("--duration", type=float, default=300.0)
    simulate.add_argument("--gpus", type=int, default=4)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument(
        "--placement", choices=policy_names(), default="locality",
        help="artifact placement across nodes: 'flat' reproduces the "
             "pre-placement simulator; 'locality' routes cold starts to "
             "the node caching the artifact in the warmest tier; "
             "'affinity' adds residency-history fallback")
    simulate.add_argument(
        "--autoscale", choices=autoscaler_names(), default="keep-alive",
        help="autoscaling policy: 'keep-alive' is the fixed idle window "
             "(the pre-policy simulator, bit for bit); 'histogram' "
             "predicts the window from observed inter-arrival gaps; "
             "'cold-cost' keeps instances warm only while re-warming "
             "would cost more than idling; 'queue-slo' scales up "
             "proactively when predicted queue delay breaches the SLO")
    simulate.add_argument(
        "--shape", choices=shape_names(), default="poisson",
        help="arrival shape: 'poisson' is the paper's homogeneous "
             "process; 'burst', 'diurnal', 'spike_train', and 'ramp' "
             "are composable RateSchedule shapes at the same nominal "
             "--rps")
    simulate.add_argument(
        "--slo-ttft", type=float, default=0.0, metavar="SECONDS",
        help="TTFT SLO budget: enables slo_attainment accounting and "
             "feeds the queue-slo policy's scale-up threshold (0 = off)")
    simulate.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the whole run (arrivals, per-stage cold starts, "
             "serving steps, retirements) as one Chrome trace JSON")

    store_cmd = sub.add_parser(
        "store", help="inspect a content-addressed artifact store")
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="per-model chunk counts and the cross-model "
                      "dedup ratio of one store directory")
    store_stats.add_argument("--dir", required=True,
                             help="artifact-store root directory")
    store_stats.add_argument("--format", choices=("text", "json"),
                             default="text", help="report format")
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_models(_args) -> int:
    rows = [[c.name, f"{c.param_bytes / 1024**3:.1f}GB", c.num_layers,
             c.vocab_size, c.total_graph_nodes] for c in PAPER_MODELS]
    print(format_table("Model zoo (paper Table 1)",
                       ["model", "params", "layers", "vocab", "graph nodes"],
                       rows))
    return 0


def _print_report(report) -> None:
    rows = [[stage, duration]
            for stage, duration in report.stage_durations.items()]
    rows.append(["loading phase (composed)", report.loading_time])
    rows.append(["cold start (incl. runtime init)", report.cold_start_time])
    print(format_table(
        f"Cold start: {report.model} under {report.strategy.label}",
        ["stage", "simulated seconds"], rows))
    degradation = getattr(report, "degradation", None)
    if degradation is not None:
        print(f"degraded cold start: rung {degradation.rung_name!r} — "
              f"{degradation.describe()}")
    print()
    print(format_stage_breakdown(
        f"Stage schedule (plan: {report.timeline.plan or 'legacy'})",
        report.timeline))


def _cmd_coldstart(args) -> int:
    if args.strategy is Strategy.MEDUSA and not args.artifact:
        print("error: --strategy medusa requires --artifact "
              "(run `repro offline` first)", file=sys.stderr)
        return 2
    artifact = _load_artifact(args.artifact) if args.artifact else None
    _engine, report = cold_start_for(args.model, args.strategy,
                                     artifact=artifact, seed=args.seed)
    _print_report(report)
    return 0


def _cmd_save_tensor(args) -> int:
    from repro.models.weights import FileCheckpointStore
    from repro.models.zoo import get_model_config
    config = get_model_config(args.model)
    store = FileCheckpointStore(args.dir)
    written = store.save_checkpoint(config)
    print(f"saved {config.weight_buffer_count()} weight tensors "
          f"({written / 1024:.0f} KiB of payloads, "
          f"{config.param_bytes / 1024**3:.1f} GiB declared) to {args.dir}")
    return 0


def _cmd_offline(args) -> int:
    artifact, report = run_offline(args.model, seed=args.seed)
    if str(args.output).endswith(".npz"):
        size = save_binary(artifact, args.output)
    else:
        size = artifact.save(args.output)
    print(f"capturing stage: {report.capture_stage_time:.1f} s (simulated)")
    print(f"analysis stage:  {report.analysis_time:.1f} s (simulated)")
    print(f"materialized {artifact.total_nodes} nodes / "
          f"{len(artifact.graphs)} graphs -> {args.output} "
          f"({size / 1024**2:.1f} MiB)")
    return 0


def _cmd_restore(args) -> int:
    artifact = _load_artifact(args.artifact)
    _engine, report = cold_start_for(args.model, Strategy.MEDUSA,
                                     artifact=artifact, seed=args.seed)
    _print_report(report)
    if args.validate:
        result = validate_restoration(args.model, artifact,
                                      seed=args.seed + 1)
        print(f"validation: PASSED on batches {result.batches_checked} "
              f"(max abs error {result.max_abs_error})")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import lint_artifact, lint_file
    from repro.errors import ArtifactError
    try:
        if str(args.artifact).endswith(".npz"):
            report = lint_artifact(LazyArtifact(args.artifact).materialize())
        else:
            report = lint_file(args.artifact)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code


def _cmd_lint_plan(args) -> int:
    import json as _json

    from repro.analysis.planlint import lint_plan, lint_registered_plans
    from repro.engine.strategies import registered_plans
    from repro.reporting import format_diagnostics

    if not args.all and not args.plan:
        print("error: name a registered plan or pass --all", file=sys.stderr)
        return 2
    if args.all:
        reports = lint_registered_plans()
    else:
        plans = registered_plans()
        if args.plan not in plans:
            print(f"error: no registered plan {args.plan!r}; available: "
                  f"{', '.join(sorted(plans))}", file=sys.stderr)
            return 2
        reports = {args.plan: lint_plan(plans[args.plan])}
    if args.format == "json":
        print(_json.dumps(
            {name: _json.loads(report.to_json())
             for name, report in sorted(reports.items())}, indent=2))
    else:
        for name, report in sorted(reports.items()):
            print(report.format_text())
        diagnostics = [d for _, report in sorted(reports.items())
                       for d in report.diagnostics]
        if diagnostics:
            print(format_diagnostics("Plan diagnostics", diagnostics))
    return max(report.exit_code for report in reports.values())


def _cmd_validate(args) -> int:
    import json as _json

    from repro.errors import ArtifactError, MaterializationError
    from repro.reporting import format_diagnostics

    try:
        artifact = _load_artifact(args.artifact)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    model = args.model or artifact.model_name
    policy = None
    if getattr(args, "degraded_ok", False):
        from repro.faults import DegradationPolicy
        policy = DegradationPolicy(verify_dumps=True, verify_outputs=True)
    try:
        result = validate_restoration(model, artifact, seed=args.seed + 1,
                                      policy=policy)
    except MaterializationError as exc:
        if args.json:
            print(_json.dumps({"model": model, "passed": False,
                               "error": str(exc)}, indent=2))
        else:
            print(f"validation: FAILED — {exc}", file=sys.stderr)
        return 1
    if args.json:
        payload = {
            "model": result.model,
            "passed": result.passed,
            "batches_checked": result.batches_checked,
            "max_abs_error": result.max_abs_error,
            "diagnostics": [d.to_dict() for d in result.diagnostics],
        }
        if result.degradation is not None:
            payload["degradation"] = result.degradation.to_dict()
        print(_json.dumps(payload, indent=2))
    else:
        print(f"validation: PASSED on batches {result.batches_checked} "
              f"(max abs error {result.max_abs_error})")
        if result.degraded:
            print(f"degradation: served on the "
                  f"{result.degradation.rung_name!r} rung — "
                  f"{result.degradation.describe()}")
        if result.diagnostics:
            print(format_diagnostics("Static diagnostics",
                                     result.diagnostics))
        cold = result.cold_report
        if cold is not None:
            print(format_stage_breakdown(
                f"Restore stage schedule "
                f"(plan: {cold.timeline.plan or 'legacy'})",
                cold.timeline))
    if not result.passed:
        return 1
    if policy is not None and (result.degraded or result.diagnostics):
        return 3   # degraded but serving (correct outputs on a lower rung)
    return 0 if not result.diagnostics else 1


def _cmd_simulate(args) -> int:
    strategy = args.strategy
    artifact = None
    if strategy is Strategy.MEDUSA:
        artifact, _ = run_offline(args.model, seed=args.seed)
    _engine, report = cold_start_for(args.model, strategy,
                                     artifact=artifact, seed=args.seed)
    workload = ShareGPTWorkload(rps=args.rps, duration=args.duration,
                                seed=args.seed, shape=args.shape)
    simulator = ClusterSimulator(
        ServingCostModel(args.model),
        SimulationConfig.from_report(report, num_gpus=args.gpus,
                                     placement=args.placement,
                                     autoscale=args.autoscale,
                                     slo_ttft=args.slo_ttft))
    metrics = simulator.run(workload.generate(), horizon=args.duration)
    summary = metrics.summary()
    rows = [[key, value] for key, value in sorted(summary.items())]
    print(format_table(
        f"Trace simulation: {args.model}, {strategy.label}, "
        f"RPS {args.rps:g}, {args.gpus} GPUs, {args.placement} placement, "
        f"{args.autoscale} autoscale, {args.shape} arrivals",
        ["metric", "value"], rows))
    if args.trace:
        from repro.reporting.timeline import save_simulation_trace
        size = save_simulation_trace(
            simulator.loop.trace, args.trace,
            name=f"{args.model} / {strategy.label} @ RPS {args.rps:g}")
        print(f"cluster trace: {args.trace} ({size} bytes, "
              f"{simulator.loop.dispatched} events)")
    return 0


def _cmd_store(args) -> int:
    """Dispatch ``repro store <subcommand>`` (currently only ``stats``)."""
    from repro.core.store import ArtifactStore

    store = ArtifactStore(args.dir)
    stats = store.stats()
    if args.format == "json":
        import json
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    rows = []
    for key, entry in stats["models"].items():
        gpu_name, _, model_name = key.partition("::")
        rows.append([gpu_name, model_name, entry["chunks"],
                     entry["bytes"], entry["foreground_bytes"]])
    print(format_table(
        f"Artifact store: {args.dir}",
        ["gpu", "model", "chunks", "bytes", "foreground bytes"], rows))
    print(f"chunks: {stats['total_chunks']} total, "
          f"{stats['unique_chunks']} unique")
    print(f"bytes: {stats['total_bytes']} total, "
          f"{stats['unique_bytes']} unique")
    print(f"dedup ratio: {stats['dedup_ratio']:.3f}x")
    return 0


_COMMANDS = {
    "models": _cmd_models,
    "save-tensor": _cmd_save_tensor,
    "coldstart": _cmd_coldstart,
    "offline": _cmd_offline,
    "lint": _cmd_lint,
    "lint-plan": _cmd_lint_plan,
    "validate": _cmd_validate,
    "restore": _cmd_restore,
    "simulate": _cmd_simulate,
    "store": _cmd_store,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
