"""Exception hierarchy shared across the reproduction.

The simulated CUDA substrate raises the same *kinds* of errors the real
driver raises, so that code exercising Medusa's restoration paths fails in
realistic ways (illegal memory accesses, capture violations, unresolved
symbols) rather than with generic asserts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Simulated CUDA errors
# ---------------------------------------------------------------------------

class CudaError(ReproError):
    """Base class for simulated CUDA driver/runtime errors."""


class OutOfMemoryError(CudaError):
    """Device memory exhausted (cudaErrorMemoryAllocation)."""


class IllegalMemoryAccessError(CudaError):
    """A kernel dereferenced a pointer that maps to no live buffer."""


class InvalidValueError(CudaError):
    """An API argument was invalid (cudaErrorInvalidValue)."""


class CaptureViolationError(CudaError):
    """A prohibited operation (e.g. synchronization) ran during capture.

    This mirrors ``cudaErrorStreamCaptureUnsupported`` and friends: device or
    stream synchronization — including the implicit synchronization performed
    by first-time library initialization (e.g. cuBLAS) — invalidates an
    ongoing stream capture.  It is the reason warm-up forwarding must precede
    capturing (paper §2.3).
    """


class SymbolNotFoundError(CudaError):
    """dlsym()/cudaGetFuncBySymbol() could not resolve a kernel symbol.

    Raised for *hidden* kernels (e.g. cuBLAS internals) that are absent from
    their library's export table (paper §5).
    """


class ModuleNotLoadedError(CudaError):
    """A module was enumerated before any of its kernels forced it to load."""


class TriggerTimeoutError(CudaError):
    """A triggering-kernel launch exceeded its watchdog budget.

    The warm-up window launches triggering kernels purely for their module
    loading side effect (§5); a wedged launch there must not hang the cold
    start, so the restorer treats it as a fault and degrades instead."""


class DeviceMismatchError(CudaError):
    """An operation mixed objects belonging to different simulated processes."""


# ---------------------------------------------------------------------------
# Engine / Medusa errors
# ---------------------------------------------------------------------------

class EngineError(ReproError):
    """Base class for inference-engine errors."""


class KVCacheExhaustedError(EngineError):
    """The block manager could not satisfy a KV cache block allocation."""


class SchedulingError(EngineError):
    """The continuous-batching scheduler reached an inconsistent state."""


class MaterializationError(ReproError):
    """Base class for Medusa offline/online errors."""


class PointerAnalysisError(MaterializationError):
    """A node parameter pointer could not be mapped to an allocation index."""


class RestorationError(MaterializationError):
    """Online restoration failed (missing kernel, bad artifact, ...)."""


class ValidationError(MaterializationError):
    """The restored graph's output did not match eager forwarding (§4)."""


class ArtifactError(MaterializationError):
    """A materialization artifact is missing, truncated, or incompatible."""


class LintError(MaterializationError):
    """The static artifact verifier found error-severity diagnostics.

    Raised by lint gates (offline lint-on-materialize, the store's
    lint-on-load) — the diagnostics themselves live on the
    :class:`repro.analysis.LintReport` attached as ``report``.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
