"""Kernel-resolvability checks (static analogue of §5's address table).

Online restoration resolves every materialized kernel *name* to a fresh
address through three channels: first-layer graph nodes (§5.2), dlsym for
visible kernels, and module enumeration for hidden kernels whose modules a
triggering kernel forced to load (§5.1).  This pass proves — against the
model's kernel catalog, with no process — that every name has at least one
channel:

- every graph kernel name appears in the artifact's kernel-library table
  and in the catalog (MED030);
- the table agrees with the catalog about the owning library (MED033 —
  version skew between artifact and model binaries);
- every *hidden* kernel's module is covered: a first-layer node, a visible
  kernel of the same module, or a trigger plan loads it (MED031 — the
  "invisible kernel with no coverage" failure that online surfaces only as
  a RestorationError deep in the restore tail);
- trigger plans reference real nodes carrying the planned kernel (MED032).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.core.artifact import MaterializedModel
from repro.errors import InvalidValueError


def check_kernels(artifact: MaterializedModel, catalog) -> List[Diagnostic]:
    """``catalog`` is a :class:`repro.simgpu.libraries.LibraryCatalog`."""
    diagnostics: List[Diagnostic] = []
    covered_modules: Set[Tuple[str, str]] = set()
    needed_modules: Dict[Tuple[str, str], List[str]] = {}

    for batch_size in sorted(artifact.graphs):
        graph = artifact.graphs[batch_size]
        for node_index, node in enumerate(graph.nodes):
            where = f"graphs[{batch_size}].nodes[{node_index}]"
            name = node.kernel_name
            declared_library = artifact.kernel_libraries.get(name)
            if declared_library is None:
                diagnostics.append(Diagnostic(
                    "MED030",
                    f"kernel {name} has no entry in the kernel-library "
                    f"table; dlsym fallback cannot pick a library", where))
            if name not in catalog:
                diagnostics.append(Diagnostic(
                    "MED030",
                    f"kernel {name} does not exist in the model's kernel "
                    f"catalog", where))
                continue
            spec = catalog.kernel(name)
            if declared_library is not None \
                    and declared_library != spec.library:
                diagnostics.append(Diagnostic(
                    "MED033",
                    f"kernel {name} mapped to {declared_library}, catalog "
                    f"says {spec.library}", where))
            module_key = (spec.library, spec.module)
            if node_index < artifact.first_layer_nodes or not spec.hidden:
                covered_modules.add(module_key)
            if spec.hidden:
                needed_modules.setdefault(module_key, []).append(name)

    diagnostics.extend(_check_trigger_plans(artifact, catalog,
                                            covered_modules))
    for module_key in sorted(needed_modules):
        if module_key in covered_modules:
            continue
        library, module = module_key
        kernels = sorted(set(needed_modules[module_key]))
        diagnostics.append(Diagnostic(
            "MED031",
            f"module {module} of {library} holds hidden kernel(s) "
            f"{kernels[:4]} but no first-layer node, visible kernel, or "
            f"trigger plan loads it", f"{library}/{module}"))
    return diagnostics


def _check_trigger_plans(artifact: MaterializedModel, catalog,
                         covered_modules: Set[Tuple[str, str]]
                         ) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for plan_index, plan in enumerate(artifact.trigger_plans):
        where = f"trigger_plans[{plan_index}]"
        if plan.kernel_name not in catalog:
            diagnostics.append(Diagnostic(
                "MED032",
                f"trigger kernel {plan.kernel_name} is not in the model's "
                f"catalog", where))
            continue
        batch_size, node_index = plan.node_ref
        graph = artifact.graphs.get(batch_size)
        if graph is None or not 0 <= node_index < graph.num_nodes:
            diagnostics.append(Diagnostic(
                "MED032",
                f"trigger plan references node ({batch_size}, {node_index}) "
                f"which the artifact does not contain", where))
            continue
        node = graph.nodes[node_index]
        if node.kernel_name != plan.kernel_name:
            diagnostics.append(Diagnostic(
                "MED032",
                f"trigger plan launches {plan.kernel_name} with parameters "
                f"of node ({batch_size}, {node_index}), which belongs to "
                f"{node.kernel_name}", where))
            continue
        spec = catalog.kernel(plan.kernel_name)
        covered_modules.add((spec.library, spec.module))
    return diagnostics
