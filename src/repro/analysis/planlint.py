"""Static verifier for cold-start LoadPlan stage graphs (PLN0xx codes).

The lane scheduler in :mod:`repro.engine.loadplan` places stages at the
later of dependency completion and lane availability — overlap *emerges*
from the DAG, so nothing in the plan itself says which stages may run
concurrently.  This analyzer recovers that fact statically: the
**happens-before relation** is the transitive closure of the exact edges
the scheduler serializes on (declared deps plus same-lane
declaration-order adjacency), so two stages are *concurrent* iff neither
reaches the other.  For durations where both are schedulable at the same
instant this is not a may-overlap approximation but a certainty: give the
pair unit duration and every other stage zero, and the scheduler places
both at ``[0, 1]`` (the property suite exercises exactly this witness).

Over that relation, the declared stage effects
(:mod:`repro.analysis.effects`) yield the PLN0xx diagnostics, reported
through the same :class:`~repro.analysis.diagnostics.LintReport`
machinery as the MED0xx artifact codes:

====== ==========================================================
PLN001 two concurrent stages write one resource
PLN002 a concurrent reader/writer pair on one resource
PLN003 a *background* stage writes what an unordered foreground
       stage reads — ``Timeline.ready`` would lie
PLN004 ``action_name`` unresolvable against the action registry
PLN005 a ``Contention`` partner stage missing from the plan
PLN006 a contention penalty key the cost model cannot resolve
PLN007 dead stage: writes nothing, nothing depends on it
PLN008 a dependency already implied by another dependency
PLN009 lane bubble: a stage is serialized behind a same-lane
       neighbor that becomes ready *later* (advisory)
====== ==========================================================

``register_plan`` runs this at registration time (errors raise,
advisories warn); ``repro lint-plan`` exposes it on the CLI; and
``validate_restoration`` runs it as a prepass before executing a plan.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.analysis.effects import (
    Effects,
    is_known_action,
    resolve_effects,
)

#: The passes, in emission order (mirrors ``analyzer``'s pass list).
PLAN_PASSES = ("bindings", "races", "structure", "lanes")


def _pair_location(plan_name: str, a: str, b: str) -> str:
    return f"{plan_name}.stages[{a} | {b}]"


def _stage_location(plan_name: str, name: str) -> str:
    return f"{plan_name}.stages[{name}]"


# ---------------------------------------------------------------------------
# Ordering relations
# ---------------------------------------------------------------------------

def happens_before(plan) -> Dict[str, FrozenSet[str]]:
    """``before[s]`` = every stage guaranteed to finish before ``s`` starts.

    Exactly the edges the scheduler serializes on: declared dependencies
    plus the previous stage on the same lane (lane occupancy is
    declaration-ordered).  Declaration order is validated topological, so
    one forward sweep computes the transitive closure.
    """
    before: Dict[str, FrozenSet[str]] = {}
    lane_prev: Dict[object, str] = {}
    for stage in plan.stages:
        preds = list(stage.deps)
        if stage.lane in lane_prev:
            preds.append(lane_prev[stage.lane])
        closure = set()
        for pred in preds:
            closure.add(pred)
            closure |= before[pred]
        before[stage.name] = frozenset(closure)
        lane_prev[stage.lane] = stage.name
    return before


def deps_closure(plan) -> Dict[str, FrozenSet[str]]:
    """Transitive closure over *declared deps only* (no lane edges)."""
    closure: Dict[str, FrozenSet[str]] = {}
    for stage in plan.stages:
        reach = set()
        for dep in stage.deps:
            reach.add(dep)
            reach |= closure[dep]
        closure[stage.name] = frozenset(reach)
    return closure


def concurrent_pairs(plan) -> List[Tuple[str, str]]:
    """Every unordered stage pair, in declaration order.

    Same-lane pairs are never here (lane adjacency orders them), so every
    returned pair is cross-lane and genuinely schedulable in overlap.
    """
    before = happens_before(plan)
    names = [stage.name for stage in plan.stages]
    pairs = []
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            if first not in before[second] and second not in before[first]:
                pairs.append((first, second))
    return pairs


def _dep_levels(plan) -> Dict[str, int]:
    """Unit-duration earliest-ready depth over declared deps only."""
    levels: Dict[str, int] = {}
    for stage in plan.stages:
        levels[stage.name] = (
            1 + max(levels[dep] for dep in stage.deps) if stage.deps else 0)
    return levels


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------

def _check_bindings(plan, known_actions, cost_model) -> List[Diagnostic]:
    """PLN004/005/006: action names, contention partners, penalty keys."""
    out: List[Diagnostic] = []
    names = {stage.name for stage in plan.stages}
    for stage in plan.stages:
        if not is_known_action(stage.action_name, known_actions):
            out.append(Diagnostic(
                "PLN004",
                f"stage {stage.name!r} binds action "
                f"{stage.action_name!r}, which no engine or restorer "
                f"registers",
                location=_stage_location(plan.name, stage.name)))
        if stage.contention is None:
            continue
        for partner in stage.contention.with_stages:
            if partner not in names:
                out.append(Diagnostic(
                    "PLN005",
                    f"stage {stage.name!r} declares contention with "
                    f"{partner!r}, which is not a stage of this plan",
                    location=_stage_location(plan.name, stage.name)))
        key = stage.contention.penalty_key
        if not _penalty_resolves(cost_model, key):
            out.append(Diagnostic(
                "PLN006",
                f"stage {stage.name!r} uses contention penalty key "
                f"{key!r}, which the cost model cannot resolve",
                location=_stage_location(plan.name, stage.name)))
    return out


def _penalty_resolves(cost_model, key: str) -> bool:
    if cost_model is None:
        from repro.simgpu.costmodel import CostModel
        cost_model = CostModel()
    resolver = getattr(cost_model, "contention_penalty", None)
    if callable(resolver):
        try:
            resolver(key)
        except Exception:
            return False
        return True
    if isinstance(cost_model, Mapping):
        return key in cost_model
    return False


def _check_races(plan) -> List[Diagnostic]:
    """PLN001/002/003: effect conflicts between concurrent stages."""
    out: List[Diagnostic] = []
    stages = {stage.name: stage for stage in plan.stages}
    fx: Dict[str, Effects] = {name: resolve_effects(stage)
                              for name, stage in stages.items()}
    for first, second in concurrent_pairs(plan):
        a, b = stages[first], stages[second]
        shared_writes = fx[first].writes & fx[second].writes
        for resource in sorted(shared_writes):
            out.append(Diagnostic(
                "PLN001",
                f"stages {first!r} and {second!r} may run concurrently "
                f"and both write {resource!r}",
                location=_pair_location(plan.name, first, second)))
        for reader, writer in ((a, b), (b, a)):
            conflicts = (fx[reader.name].reads & fx[writer.name].writes) \
                - shared_writes
            for resource in sorted(conflicts):
                if writer.background and not reader.background:
                    out.append(Diagnostic(
                        "PLN003",
                        f"background stage {writer.name!r} writes "
                        f"{resource!r}, which unordered foreground stage "
                        f"{reader.name!r} reads — the ready instant would "
                        f"not cover that write",
                        location=_pair_location(
                            plan.name, writer.name, reader.name)))
                else:
                    out.append(Diagnostic(
                        "PLN002",
                        f"stage {reader.name!r} reads {resource!r} while "
                        f"concurrent stage {writer.name!r} writes it",
                        location=_pair_location(
                            plan.name, reader.name, writer.name)))
    return out


def _check_structure(plan) -> List[Diagnostic]:
    """PLN007/008: dead stages and redundant dependencies."""
    out: List[Diagnostic] = []
    depended = {dep for stage in plan.stages for dep in stage.deps}
    closure = deps_closure(plan)
    for stage in plan.stages:
        fx = resolve_effects(stage)
        if not fx.writes and stage.name not in depended:
            out.append(Diagnostic(
                "PLN007",
                f"stage {stage.name!r} writes nothing and no stage "
                f"depends on it — it cannot affect the cold start",
                location=_stage_location(plan.name, stage.name)))
        for dep in stage.deps:
            implied_by = [other for other in stage.deps
                          if other != dep and dep in closure[other]]
            if implied_by:
                out.append(Diagnostic(
                    "PLN008",
                    f"stage {stage.name!r} dependency {dep!r} is already "
                    f"implied by {implied_by[0]!r}",
                    location=_stage_location(plan.name, stage.name)))
    return out


def _check_lanes(plan) -> List[Diagnostic]:
    """PLN009: declaration order serializes a later-ready stage first.

    For adjacent same-lane stages A then B with no dependency path A→B,
    the scheduler still queues B behind A.  If B's earliest-ready depth
    (unit-duration, deps only) is *smaller* than A's, swapping the
    declaration order would let B start earlier — a lane bubble smell.
    Background B is deliberate deferral, not a bubble.
    """
    out: List[Diagnostic] = []
    closure = deps_closure(plan)
    levels = _dep_levels(plan)
    lane_prev: Dict[object, object] = {}
    for stage in plan.stages:
        prev = lane_prev.get(stage.lane)
        lane_prev[stage.lane] = stage
        if prev is None or stage.background:
            continue
        if prev.name in closure[stage.name]:
            continue
        if levels[stage.name] < levels[prev.name]:
            out.append(Diagnostic(
                "PLN009",
                f"stage {stage.name!r} (ready at depth "
                f"{levels[stage.name]}) is serialized on lane "
                f"{prev.lane.label!r} behind {prev.name!r} (depth "
                f"{levels[prev.name]}) with no dependency forcing the "
                f"order",
                location=_pair_location(plan.name, prev.name, stage.name)))
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def lint_plan(plan, known_actions: Optional[Iterable[str]] = None,
              cost_model=None) -> LintReport:
    """Statically verify one LoadPlan; returns a PLN0xx ``LintReport``.

    ``known_actions`` overrides the action universe (pass a live
    restorer's ``stage_actions`` keys to lint against the actual binding);
    ``cost_model`` is anything with ``contention_penalty`` (defaults to a
    fresh ``CostModel``) or a penalty mapping.
    """
    report = LintReport(model=plan.name, gpu="plan",
                        passes=list(PLAN_PASSES), subject="plan")
    report.extend(_check_bindings(plan, known_actions, cost_model))
    report.extend(_check_races(plan))
    report.extend(_check_structure(plan))
    report.extend(_check_lanes(plan))
    report.stats = {
        "stages": float(len(plan.stages)),
        "background_stages": float(
            sum(1 for s in plan.stages if s.background)),
        "concurrent_pairs": float(len(concurrent_pairs(plan))),
    }
    return report


def lint_registered_plans(include_degraded: bool = True
                          ) -> Dict[str, LintReport]:
    """Lint every registered plan (plus its degraded-ladder variant)."""
    from repro.engine.lanes import Lane
    from repro.engine.loadplan import append_stages
    from repro.engine.strategies import registered_plans
    from repro.faults.ladder import DEGRADED_LADDER_STAGES

    reports: Dict[str, LintReport] = {}
    for name, plan in sorted(registered_plans().items()):
        reports[name] = lint_plan(plan)
        if include_degraded:
            degraded = append_stages(plan, DEGRADED_LADDER_STAGES,
                                     Lane.GPU_COMPUTE)
            reports[degraded.name] = lint_plan(degraded)
    return reports
