"""Coverage and schema checks (§3, §4.3, and the Figure-6 static guard).

Three families of invariants close out the analyzer:

- **format/schema** — the artifact's format version matches the code's
  (MED040) and the capture marker falls inside the allocation sequence
  (MED044);
- **permanent-contents coverage (§4.3)** — the classification that decided
  which buffer contents to dump is *recomputable* from the artifact alone:
  a referenced allocation born at/after the capture marker and never freed
  is permanent and must have dumped contents (MED042); dumped contents for
  anything else are orphans that would clobber live data on restore
  (MED041);
- **cross-batch layout consistency** — instances of the same kernel recur
  across layers and batch sizes with identical parameter layouts (the very
  assumption behind §4.1's majority vote).  A node whose const/ptr layout
  diverges from its kernel's dominant layout is the static signature of a
  Figure-6 false positive that slipped through (MED043).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.liveness import LivenessResult
from repro.core.artifact import ARTIFACT_FORMAT_VERSION, MaterializedModel
from repro.core.pointer_analysis import POINTER


def check_coverage(artifact: MaterializedModel,
                   liveness: LivenessResult) -> List[Diagnostic]:
    """Schema, capture-marker, permanent-dump, and layout checks (§4.3)."""
    diagnostics: List[Diagnostic] = []
    if artifact.format_version != ARTIFACT_FORMAT_VERSION:
        diagnostics.append(Diagnostic(
            "MED040",
            f"artifact declares format version {artifact.format_version}, "
            f"this code writes {ARTIFACT_FORMAT_VERSION}",
            "format_version"))
    total_allocations = len(liveness.records)
    if not 0 <= artifact.capture_marker <= total_allocations:
        diagnostics.append(Diagnostic(
            "MED044",
            f"capture_marker {artifact.capture_marker} outside the "
            f"0..{total_allocations} allocation sequence; permanent-buffer "
            f"classification is undefined", "capture_marker"))
    else:
        diagnostics.extend(_check_permanent_dumps(artifact, liveness))
    diagnostics.extend(_check_layout_consistency(artifact))
    return diagnostics


def _referenced_indices(artifact: MaterializedModel) -> Set[int]:
    referenced: Set[int] = set()
    for graph in artifact.graphs.values():
        for node in graph.nodes:
            for restore in node.param_restores:
                if restore.kind == POINTER:
                    referenced.add(restore.alloc_index)
    return referenced


def _check_permanent_dumps(artifact: MaterializedModel,
                           liveness: LivenessResult) -> List[Diagnostic]:
    """Recompute §4.3's classification and diff it against the dumps."""
    diagnostics: List[Diagnostic] = []
    permanent: Set[int] = set()
    for alloc_index in _referenced_indices(artifact):
        record = liveness.record(alloc_index)
        if record is None:
            continue    # MED010 already covers dangling references
        if alloc_index >= artifact.capture_marker and record.freed is None:
            permanent.add(alloc_index)
    for alloc_index in sorted(permanent - set(artifact.permanent_contents)):
        diagnostics.append(Diagnostic(
            "MED042",
            f"allocation {alloc_index} is permanent (referenced, born at "
            f"or after the capture marker, never freed) but its contents "
            f"were not dumped", f"permanent_contents[{alloc_index}]"))
    for alloc_index in sorted(set(artifact.permanent_contents) - permanent):
        diagnostics.append(Diagnostic(
            "MED041",
            f"dumped contents exist for allocation {alloc_index}, which "
            f"the replay classifies as non-permanent; restoring them would "
            f"overwrite memory the loading stages own",
            f"permanent_contents[{alloc_index}]"))
    return diagnostics


def _check_layout_consistency(
        artifact: MaterializedModel) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    # kernel name -> layout signature -> [(batch, node_index), ...]
    layouts: Dict[str, Dict[Tuple[str, ...],
                            List[Tuple[int, int]]]] = {}
    for batch_size in sorted(artifact.graphs):
        graph = artifact.graphs[batch_size]
        for node_index, node in enumerate(graph.nodes):
            signature = tuple(r.kind for r in node.param_restores)
            layouts.setdefault(node.kernel_name, {}).setdefault(
                signature, []).append((batch_size, node_index))
    for kernel_name, by_signature in sorted(layouts.items()):
        if len(by_signature) == 1:
            continue
        dominant = max(by_signature.values(), key=len)
        for signature, instances in sorted(by_signature.items()):
            if instances is dominant:
                continue
            batch_size, node_index = instances[0]
            diagnostics.append(Diagnostic(
                "MED043",
                f"kernel {kernel_name}: {len(instances)} instance(s) carry "
                f"layout {'/'.join(signature)} while {len(dominant)} carry "
                f"the dominant one — a Figure-6-style misclassification",
                f"graphs[{batch_size}].nodes[{node_index}]"))
    return diagnostics
