"""Replay-sequence liveness analysis (static analogue of §4.2 replay).

Simulates the artifact's recorded (de)allocation event sequence *symbolically*
— no device memory, no addresses — mirroring the semantics of
:class:`repro.simgpu.memory.DeviceAllocator`:

- allocations claim the most recently freed block of the same
  ``(pool, aligned size)`` bucket (LIFO reuse), superseding a pool-freed
  previous owner while keeping the memory mapped;
- ``cudaFree`` unmaps immediately; a pool free keeps the block mapped until
  a later allocation claims it or ``empty_cache`` releases it.

The result is a per-allocation table of live intervals and end states that
the pointer pass consumes, plus diagnostics for malformed sequences:
double frees (MED003), frees of unknown indices (MED002), index drift that
would break online replay's ``alloc_index`` check (MED001), and mis-tagged
anchor allocations such as the KV region (MED006).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.core.artifact import MaterializedModel

_ALIGNMENT = 256

#: End states of an allocation after the full replay.
MAPPED = "mapped"            # still owns its memory (or pool-cached)
SUPERSEDED = "superseded"    # pool-freed, block claimed by a later allocation
UNMAPPED = "unmapped"        # cudaFree'd or released by empty_cache


def _align(size: int) -> int:
    return (size + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


@dataclass
class AllocationRecord:
    """Symbolic lifetime of one allocation index."""

    alloc_index: int
    size: int                 # aligned bytes, as the allocator would round
    tag: str
    pool: str
    origin: str               # "prefix" (structure init) or "replay"
    born: int = -1            # replay event position (-1: structure prefix)
    freed: Optional[int] = None       # position of its free event, if any
    pooled_free: bool = False
    end_state: str = MAPPED
    end_position: Optional[int] = None  # position where it left MAPPED

    @property
    def live_interval(self) -> Tuple[int, Optional[int]]:
        """(birth position, unmap/supersede position or None if mapped)."""
        return self.born, self.end_position


@dataclass
class LivenessResult:
    """Outcome of the symbolic replay."""

    records: Dict[int, AllocationRecord] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    num_events: int = 0

    def record(self, alloc_index: int) -> Optional[AllocationRecord]:
        return self.records.get(alloc_index)


def analyze_replay(artifact: MaterializedModel) -> LivenessResult:
    """Symbolically execute the structure prefix plus replay suffix."""
    result = LivenessResult(num_events=len(artifact.replay_events))
    records = result.records
    diagnostics = result.diagnostics

    for position, (size, tag) in enumerate(artifact.structure_prefix):
        records[position] = AllocationRecord(
            alloc_index=position, size=_align(size), tag=tag,
            pool="default", origin="prefix")

    # (pool, aligned size) -> [(alloc_index, pooled)] — the symbolic free
    # lists; LIFO, exactly like DeviceAllocator.
    free_lists: Dict[Tuple[str, int], List[Tuple[int, bool]]] = {}
    counter = len(artifact.structure_prefix)

    for position, event in enumerate(artifact.replay_events):
        where = f"replay[{position}]"
        if event.kind == "alloc":
            if event.alloc_index != counter:
                diagnostics.append(Diagnostic(
                    "MED001",
                    f"alloc index {event.alloc_index} arrived where the "
                    f"sequence expects {counter}; online replay would abort "
                    f"with replay drift", where))
            counter = event.alloc_index + 1
            if event.size <= 0:
                diagnostics.append(Diagnostic(
                    "MED004", f"allocation of size {event.size}", where))
                continue
            aligned = _align(event.size)
            bucket = free_lists.get((event.pool, aligned))
            if bucket:
                previous_index, pooled = bucket.pop()
                if pooled:
                    previous = records[previous_index]
                    previous.end_state = SUPERSEDED
                    previous.end_position = position
            if event.alloc_index in records:
                # Drift already flagged; keep the newest record.
                pass
            records[event.alloc_index] = AllocationRecord(
                alloc_index=event.alloc_index, size=aligned, tag=event.tag,
                pool=event.pool, origin="replay", born=position)
        elif event.kind == "free":
            record = records.get(event.alloc_index)
            if record is None:
                diagnostics.append(Diagnostic(
                    "MED002",
                    f"free of allocation index {event.alloc_index}, which "
                    f"no prior alloc or structure-prefix entry produced",
                    where))
                continue
            if record.freed is not None:
                diagnostics.append(Diagnostic(
                    "MED003",
                    f"allocation {event.alloc_index} freed again "
                    f"(first free at replay[{record.freed}])", where))
                continue
            record.freed = position
            record.pooled_free = event.pooled
            if not event.pooled:
                record.end_state = UNMAPPED
                record.end_position = position
            free_lists.setdefault((record.pool, record.size), []).append(
                (event.alloc_index, event.pooled))
        elif event.kind == "empty_cache":
            # torch.cuda.empty_cache(): every pool-cached block is released.
            for bucket in free_lists.values():
                for alloc_index, pooled in bucket:
                    if pooled:
                        record = records[alloc_index]
                        record.end_state = UNMAPPED
                        record.end_position = position
            free_lists.clear()
        else:
            diagnostics.append(Diagnostic(
                "MED005", f"replay event kind {event.kind!r}", where))

    _check_anchors(artifact, result)
    return result


def _check_anchors(artifact: MaterializedModel, result: LivenessResult) -> None:
    """The artifact's designated allocations must exist with the right tag."""
    anchors = (
        ("kv_alloc_index", artifact.kv_alloc_index, "kv"),
        ("graph_input_alloc_index", artifact.graph_input_alloc_index,
         "graph_input"),
        ("graph_output_alloc_index", artifact.graph_output_alloc_index,
         "graph_output"),
    )
    for name, alloc_index, expected_tag in anchors:
        record = result.records.get(alloc_index)
        if alloc_index < 0 or record is None:
            result.diagnostics.append(Diagnostic(
                "MED006",
                f"{name} is {alloc_index}, which names no allocation in "
                f"the replayed sequence", name))
        elif record.tag != expected_tag:
            result.diagnostics.append(Diagnostic(
                "MED006",
                f"{name} points at allocation {alloc_index} tagged "
                f"{record.tag!r}, expected {expected_tag!r}", name))
