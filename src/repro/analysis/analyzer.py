"""The multi-pass static artifact verifier (``repro lint``).

Runs every analysis pass over a :class:`MaterializedModel` **without
executing any forwarding** — no simulated process, no kernels, no replay
on device memory.  The passes, in order:

1. ``liveness``  — symbolic replay of the (de)allocation events (§4.2);
2. ``pointers``  — indirect-index-pointer bounds and use-after-free (§4.1);
3. ``topology``  — dependency-edge sanity, DAG-ness, first-layer
   consistency (§5, §5.2);
4. ``kernels``   — name resolvability and trigger coverage against the
   model's kernel catalog (§5.1) — skipped with MED034 when the model is
   not in the zoo and no catalog is supplied;
5. ``coverage``  — format version, permanent-dump coverage, cross-batch
   layout consistency (§3, §4.3).

Entry points: :func:`lint_artifact` for in-memory artifacts (what the
offline phase and the store call), :func:`lint_json_text` /
:func:`lint_file` for serialized ones (what the CLI calls) — these report
a version mismatch as a MED040 diagnostic instead of refusing to load.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.analysis.coverage import check_coverage
from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.analysis.graphs import check_topology
from repro.analysis.kernels import check_kernels
from repro.analysis.liveness import analyze_replay
from repro.analysis.pointers import check_pointers
from repro.core.artifact import ARTIFACT_FORMAT_VERSION, MaterializedModel
from repro.errors import ArtifactError, InvalidValueError


def lint_artifact(artifact: MaterializedModel,
                  catalog=None) -> LintReport:
    """Statically verify one artifact; returns the full report.

    ``catalog`` is the model's :class:`LibraryCatalog`; when omitted it is
    built from the model zoo by name.  Artifacts for models outside the
    zoo get every catalog-independent pass plus a MED034 warning.
    """
    report = LintReport(model=artifact.model_name, gpu=artifact.gpu_name)

    liveness = analyze_replay(artifact)
    report.extend(liveness.diagnostics)
    report.passes.append("liveness")

    report.extend(check_pointers(artifact, liveness))
    report.passes.append("pointers")

    report.extend(check_topology(artifact))
    report.passes.append("topology")

    if catalog is None:
        catalog = _zoo_catalog(artifact, report)
    if catalog is not None:
        report.extend(check_kernels(artifact, catalog))
        report.passes.append("kernels")

    report.extend(check_coverage(artifact, liveness))
    report.passes.append("coverage")

    report.stats.update({
        "allocations": float(len(liveness.records)),
        "replay_events": float(liveness.num_events),
        "graphs": float(len(artifact.graphs)),
        "nodes": float(artifact.total_nodes),
        "diagnostics": float(len(report.diagnostics)),
    })
    return report


def _zoo_catalog(artifact: MaterializedModel, report: LintReport):
    from repro.models.kernels_catalog import build_catalog
    from repro.models.zoo import get_model_config
    try:
        config = get_model_config(artifact.model_name)
    except InvalidValueError:
        report.diagnostics.append(Diagnostic(
            "MED034",
            f"model {artifact.model_name!r} is not in the zoo and no "
            f"catalog was supplied; kernel-resolvability checks skipped",
            "model_name"))
        return None
    return build_catalog(config)


def lint_json_text(text: str, catalog=None) -> LintReport:
    """Lint a serialized artifact.

    Raises :class:`ArtifactError` only when the payload is unreadable
    (invalid JSON / not an artifact object).  A wrong format version is
    readable-but-broken: it comes back as a MED040-only report rather
    than an exception, so CI can distinguish "corrupt file" (exit 2)
    from "diagnostics found" (exit 1).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(
            f"artifact payload is a {type(payload).__name__}, expected an "
            f"object")
    version = payload.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        report = LintReport(model=str(payload.get("model_name", "")),
                            gpu=str(payload.get("gpu_name", "")))
        report.passes.append("schema")
        report.diagnostics.append(Diagnostic(
            "MED040",
            f"artifact declares format version {version}, this code reads "
            f"{ARTIFACT_FORMAT_VERSION}; re-run the offline phase",
            "format_version"))
        return report
    return lint_artifact(MaterializedModel.from_json(text), catalog=catalog)


def lint_file(path, catalog=None) -> LintReport:
    """Lint an artifact file; raises ArtifactError if unreadable."""
    try:
        with open(path) as handle:
            text = handle.read()
    except FileNotFoundError as exc:
        raise ArtifactError(f"no artifact at {path}") from exc
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact at {path}: {exc}") from exc
    return lint_json_text(text, catalog=catalog)
