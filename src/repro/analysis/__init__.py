"""Static artifact verification: multi-pass analysis with no execution.

``repro.analysis`` proves a :class:`~repro.core.artifact.MaterializedModel`
internally consistent *before* the latency-critical online restore touches
it — replay-sequence liveness, pointer bounds and use-after-free, graph
topology, kernel resolvability, and dump coverage.  See
``docs/MECHANISM.md`` ("Static verification") for the MED0xx code table.
"""

from repro.analysis.analyzer import lint_artifact, lint_file, lint_json_text
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    ERROR,
    LintReport,
    WARNING,
)
from repro.analysis.effects import (
    DEFAULT_EFFECTS,
    Effects,
    default_effects,
    is_known_action,
    resolve_effects,
)
from repro.analysis.liveness import (
    AllocationRecord,
    LivenessResult,
    MAPPED,
    SUPERSEDED,
    UNMAPPED,
    analyze_replay,
)
from repro.analysis.planlint import (
    concurrent_pairs,
    happens_before,
    lint_plan,
    lint_registered_plans,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "ERROR",
    "WARNING",
    "LintReport",
    "AllocationRecord",
    "LivenessResult",
    "MAPPED",
    "SUPERSEDED",
    "UNMAPPED",
    "analyze_replay",
    "lint_artifact",
    "lint_file",
    "lint_json_text",
]
