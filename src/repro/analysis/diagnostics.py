"""Diagnostics vocabulary of the static artifact verifier.

Every finding the analyzer emits carries a *stable* ``MED0xx`` error code
(registered here, with the paper section it guards), a severity, a
human-readable message, and an artifact location string such as
``replay[42]`` or ``graphs[4].nodes[7].params[2]``.  Stable codes let the
mutation-testing harness, CI, and downstream tooling assert on *which*
invariant broke rather than string-matching messages.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    title: str
    section: str        # the paper section whose invariant the code guards
    severity: str       # default severity


#: The full registry.  Codes are append-only: never renumber or reuse.
CODES: Dict[str, CodeInfo] = {info.code: info for info in (
    # -- replay-sequence liveness (§4.2) --------------------------------
    CodeInfo("MED001", "replay allocation index drift", "§4.2", ERROR),
    CodeInfo("MED002", "free of unknown allocation index", "§4.2", ERROR),
    CodeInfo("MED003", "double free", "§4.2", ERROR),
    CodeInfo("MED004", "non-positive allocation size", "§4.2", ERROR),
    CodeInfo("MED005", "unknown replay event kind", "§4.2", ERROR),
    CodeInfo("MED006", "anchor allocation missing or mis-tagged", "§6", ERROR),
    # -- pointer bounds & use-after-free (§4.1) -------------------------
    CodeInfo("MED010", "pointer allocation index out of range", "§4.1", ERROR),
    CodeInfo("MED011", "pointer offset outside allocation", "§4.1", ERROR),
    CodeInfo("MED012", "pointer to memory unmapped at launch", "§4.1", ERROR),
    CodeInfo("MED013", "pointer restore on non-8-byte parameter", "§4.1", ERROR),
    CodeInfo("MED014", "restore rule count != parameter count", "§4.2", ERROR),
    # -- graph topology (§5, §2.5) --------------------------------------
    CodeInfo("MED020", "dependency edge references invalid node", "§5", ERROR),
    CodeInfo("MED021", "dependency edges contain a cycle", "§5", ERROR),
    CodeInfo("MED022", "graph batch key != graph batch_size", "§5", ERROR),
    CodeInfo("MED023", "first-layer node count out of bounds", "§5.2", ERROR),
    CodeInfo("MED024", "first-layer prefix differs across batches",
             "§5.2", ERROR),
    # -- kernel resolvability (§5) --------------------------------------
    CodeInfo("MED030", "unresolvable kernel name", "§5", ERROR),
    CodeInfo("MED031", "hidden kernel module has no trigger coverage",
             "§5.1", ERROR),
    CodeInfo("MED032", "invalid trigger plan", "§5.1", ERROR),
    CodeInfo("MED033", "kernel library table disagrees with catalog",
             "§5", ERROR),
    CodeInfo("MED034", "model unknown; kernel checks skipped", "§5", WARNING),
    # -- coverage & schema (§3, §4.3) -----------------------------------
    CodeInfo("MED040", "artifact format version mismatch", "§3", ERROR),
    CodeInfo("MED041", "dumped contents for a non-permanent allocation",
             "§4.3", WARNING),
    CodeInfo("MED042", "permanent allocation has no dumped contents",
             "§4.3", ERROR),
    CodeInfo("MED043", "kernel parameter layout diverges across instances",
             "§4.1", WARNING),
    CodeInfo("MED044", "capture marker out of range", "§4.3", ERROR),
    # -- plan-level schedule verification (§7.3) ------------------------
    # Emitted by repro.analysis.planlint over LoadPlan stage graphs:
    # races between stages the lane scheduler may overlap, unresolvable
    # bindings, and structural/perf advisories.
    CodeInfo("PLN001", "write-write race between concurrent stages",
             "§7.3", ERROR),
    CodeInfo("PLN002", "read-write race between concurrent stages",
             "§7.3", ERROR),
    CodeInfo("PLN003", "background stage writes state an unordered "
             "foreground stage reads", "§7.3", ERROR),
    CodeInfo("PLN004", "stage action unresolvable against the action "
             "registry", "§7.3", ERROR),
    CodeInfo("PLN005", "contention partner stage not in the plan",
             "§7.3", ERROR),
    CodeInfo("PLN006", "contention penalty key unresolvable against the "
             "cost model", "§7.3", ERROR),
    CodeInfo("PLN007", "dead stage: writes nothing and nothing depends "
             "on it", "§7.3", WARNING),
    CodeInfo("PLN008", "redundant dependency already implied by another",
             "§7.3", WARNING),
    CodeInfo("PLN009", "lane bubble: stage serialized behind a "
             "later-ready lane neighbor", "§7.3", WARNING),
)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    message: str
    location: str = ""
    severity: str = ""      # defaults to the registry severity

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", CODES[self.code].severity)

    @property
    def info(self) -> CodeInfo:
        return CODES[self.code]

    def render(self) -> str:
        where = f" at {self.location}" if self.location else ""
        return f"{self.code} [{self.severity}]{where}: {self.message}"

    def to_dict(self) -> Dict[str, str]:
        return {"code": self.code, "severity": self.severity,
                "location": self.location, "message": self.message,
                "title": self.info.title, "section": self.info.section}


@dataclass
class LintReport:
    """The aggregated result of one static analysis run."""

    model: str = ""
    gpu: str = ""
    passes: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    #: What was analyzed — "artifact" (default) or "plan"; only affects
    #: the human-readable clean line in :meth:`format_text`.
    subject: str = "artifact"

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def clean(self) -> bool:
        """No diagnostics of any severity."""
        return not self.diagnostics

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 diagnostics found."""
        return 0 if self.clean else 1

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def format_text(self) -> str:
        head = (f"lint {self.model or '<unknown>'} on "
                f"{self.gpu or '<unknown>'}: "
                f"{len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s) "
                f"[passes: {', '.join(self.passes) or 'none'}]")
        lines = [head]
        lines.extend(d.render() for d in self.diagnostics)
        if self.clean:
            lines.append(f"{self.subject} is clean")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "model": self.model,
            "gpu": self.gpu,
            "passes": self.passes,
            "clean": self.clean,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "stats": self.stats,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }, indent=2)
