"""Effect annotations for cold-start plan stages (plan-level dataflow).

The loading-phase stages of a :class:`repro.engine.loadplan.LoadPlan`
mutate shared engine state: the weight buffers, the KV region, the
replayed allocation map, the kernel address table, per-batch CUDA graphs.
The lane scheduler only knows *dependencies* and *lanes* — nothing stops a
plan from racing two stages on the same state, which is exactly where
overlap-heavy loading pipelines hide bugs (§7.3).  This module is the
shared vocabulary the plan verifier (:mod:`repro.analysis.planlint`)
reasons over:

- **resources** — stable names for the pieces of engine state a stage may
  touch (``"weights"``, ``"kv"``, ``"graph[8]"``, ...);
- **effects** — per-stage declared ``reads``/``writes`` sets over those
  resources (:class:`repro.engine.loadplan.PlanStage` carries them);
- **defaults** — the effect sets of every built-in engine action,
  restorer action, and degradation-ladder stage, so dynamically built
  stages (``append_stages`` fallbacks, ``restore_graph[bs]``) are covered
  without per-plan declarations.

The action/effect tables here are the lint-side mirror of the runtime
registries (``LLMEngine._stage_actions``, ``OnlineRestorer``/
``VectorizedRestorer.stage_actions``, ``repro.faults.ladder``); sync
tests in ``tests/analysis/test_planlint.py`` keep them honest.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

# ---------------------------------------------------------------------------
# Resource names
# ---------------------------------------------------------------------------

#: The materialized artifact (opened/indexed/decompressed in memory).
ARTIFACT = "artifact"
#: The initialized model structure (module tree, parameter shells).
STRUCTURE_STATE = "structure"
#: The weight buffers' contents (H2D-streamed checkpoint tensors).
WEIGHTS_STATE = "weights"
#: The loaded tokenizer.
TOKENIZER_STATE = "tokenizer"
#: The KV cache region and block manager.
KV_STATE = "kv"
#: The replayed allocation map (alloc_index -> live buffer).
ALLOC_MAP = "alloc_map"
#: Restored permanent buffer contents / packed kernel parameters (§4.3).
PARAMS = "params"
#: The kernel name -> address table (dlsym / module enumeration, §5).
DRIVER_SYMBOLS = "driver_symbols"
#: The full captured/restored graph set, as one aggregate (eager capture,
#: the monolithic restore tail, ladder recapture).
GRAPHS = "graphs"


def graph_resource(batch_size: int) -> str:
    """The per-batch graph resource (pipelined ``restore_graph`` stages)."""
    return f"graph[{batch_size}]"


def chunk_resource(index: int) -> str:
    """The per-chunk fetched-bytes resource (chunk-streamed fetch stages).

    ``index`` is the chunk's position in its manifest's canonical order
    (see :class:`repro.core.chunks.ChunkManifest`).
    """
    return f"chunk[{index}]"


_GRAPH_ACTION = re.compile(r"^restore_graph\[(\d+)\]$")
_CHUNK_ACTION = re.compile(r"^fetch_chunk\[(\d+)\]$")


# ---------------------------------------------------------------------------
# Effects
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Effects:
    """One stage's declared dataflow over named resources."""

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()

    @property
    def empty(self) -> bool:
        return not self.reads and not self.writes

    def touches(self, resource: str) -> bool:
        return resource in self.reads or resource in self.writes


def effects(reads: Iterable[str] = (), writes: Iterable[str] = ()) -> Effects:
    """Shorthand constructor used by the default tables below."""
    return Effects(reads=frozenset(reads), writes=frozenset(writes))


# ---------------------------------------------------------------------------
# Default effect tables, keyed by action name
# ---------------------------------------------------------------------------

#: The engine-builtin stage actions (mirrors ``LLMEngine._stage_actions``).
ENGINE_ACTION_EFFECTS: Dict[str, Effects] = {
    "structure_init": effects(writes=(STRUCTURE_STATE,)),
    "load_weights": effects(reads=(STRUCTURE_STATE,),
                            writes=(WEIGHTS_STATE,)),
    "load_tokenizer": effects(writes=(TOKENIZER_STATE,)),
    # The profiling forwarding only needs shapes, not trained weights —
    # vLLM+ASYNC legitimately overlaps it with the weight stream, so it
    # must NOT read ``weights``.
    "kv_init": effects(reads=(STRUCTURE_STATE,), writes=(KV_STATE,)),
    "capture": effects(reads=(STRUCTURE_STATE, WEIGHTS_STATE, KV_STATE),
                       writes=(GRAPHS,)),
}

#: The restorer-contributed actions (``OnlineRestorer`` /
#: ``VectorizedRestorer.stage_actions``).
RESTORE_ACTION_EFFECTS: Dict[str, Effects] = {
    "fetch_artifact": effects(writes=(ARTIFACT,)),
    "restore_kv": effects(reads=(ARTIFACT, STRUCTURE_STATE),
                          writes=(KV_STATE, ALLOC_MAP)),
    "replay_alloc": effects(reads=(ARTIFACT, ALLOC_MAP),
                            writes=(ALLOC_MAP,)),
    "restore_warmup": effects(reads=(ARTIFACT, KV_STATE, ALLOC_MAP),
                              writes=(ALLOC_MAP, PARAMS, DRIVER_SYMBOLS)),
    "restore_tail": effects(
        reads=(ARTIFACT, WEIGHTS_STATE, TOKENIZER_STATE, ALLOC_MAP, PARAMS),
        writes=(DRIVER_SYMBOLS, GRAPHS)),
}

#: Degradation-ladder fallback stages (``repro.faults.ladder`` constants;
#: injected by ``append_stages`` after the ready frontier).
LADDER_STAGES = ("degrade_kv_profile", "restore_verify", "degrade_partial",
                 "degrade_recapture", "degrade_eager_capture")

LADDER_ACTION_EFFECTS: Dict[str, Effects] = {
    "degrade_kv_profile": effects(reads=(STRUCTURE_STATE,),
                                  writes=(KV_STATE,)),
    "restore_verify": effects(reads=(KV_STATE, WEIGHTS_STATE, GRAPHS),
                              writes=(GRAPHS,)),
    "degrade_partial": effects(reads=(GRAPHS,), writes=(GRAPHS,)),
    "degrade_recapture": effects(
        reads=(STRUCTURE_STATE, WEIGHTS_STATE, KV_STATE), writes=(GRAPHS,)),
    "degrade_eager_capture": effects(
        reads=(STRUCTURE_STATE, WEIGHTS_STATE, KV_STATE), writes=(GRAPHS,)),
}

DEFAULT_EFFECTS: Dict[str, Effects] = {
    **ENGINE_ACTION_EFFECTS,
    **RESTORE_ACTION_EFFECTS,
    **LADDER_ACTION_EFFECTS,
}

#: Every statically-known action name.  ``restore_graph[<batch>]`` stages
#: are parameterized and matched by pattern instead (``is_known_action``).
KNOWN_ACTIONS: FrozenSet[str] = frozenset(DEFAULT_EFFECTS)


def is_known_action(action_name: str,
                    known: Optional[Iterable[str]] = None) -> bool:
    """Whether ``action_name`` resolves against the action registry.

    ``known`` overrides the default universe (e.g. a live restorer's
    ``stage_actions`` keys); the ``restore_graph[<batch>]`` and
    ``fetch_chunk[<index>]`` patterns are always accepted, mirroring
    ``VectorizedRestorer.stage_action_names``.
    """
    universe = KNOWN_ACTIONS if known is None else frozenset(known)
    if action_name in universe:
        return True
    if _GRAPH_ACTION.match(action_name) is not None:
        return True
    return _CHUNK_ACTION.match(action_name) is not None


def default_effects(action_name: str) -> Optional[Effects]:
    """The default effect set for one action name (None when unknown)."""
    found = DEFAULT_EFFECTS.get(action_name)
    if found is not None:
        return found
    match = _GRAPH_ACTION.match(action_name)
    if match is not None:
        # A per-batch pipelined restore stage: consumes the replayed
        # allocations, packed params, and resolved addresses; produces
        # exactly its own graph.
        return effects(reads=(ARTIFACT, ALLOC_MAP, PARAMS, DRIVER_SYMBOLS),
                       writes=(graph_resource(int(match.group(1))),))
    match = _CHUNK_ACTION.match(action_name)
    if match is not None:
        # A chunk-streamed fetch stage: lands exactly its own chunk's
        # bytes; consumers declare reads on the chunk resources they
        # decompress.
        return effects(writes=(chunk_resource(int(match.group(1))),))
    return None


def resolve_effects(stage) -> Effects:
    """The effect set of one ``PlanStage``.

    Explicit ``reads``/``writes`` declarations win; stages without any
    fall back to the default table keyed by their ``action_name``.  A
    stage with neither resolves to the empty effect set (the analyzer
    then treats it as conflict-free, which is the conservative choice for
    *advisories* but means races on undeclared state go unseen — hence
    every plan in ``repro.engine.strategies`` declares explicitly).
    """
    reads = tuple(getattr(stage, "reads", ()) or ())
    writes = tuple(getattr(stage, "writes", ()) or ())
    if reads or writes:
        return Effects(reads=frozenset(reads), writes=frozenset(writes))
    found = default_effects(stage.action_name)
    return found if found is not None else Effects()
