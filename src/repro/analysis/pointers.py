"""Pointer-bounds and use-after-free checking (static analogue of §4.1).

Every ``ParamRestore`` of kind ``ptr`` is an *indirect index pointer*:
``(allocation index, byte offset)``.  Online restoration resolves it to
``buffer(alloc_index).address + offset`` without further checks, so a
corrupt artifact can silently aim a kernel at unmapped or foreign memory.
This pass proves, against the symbolic liveness table:

- the allocation index is in range (MED010);
- the offset lies strictly inside the aligned allocation (MED011 — the
  last byte is fine, one-past-the-end is not, matching the restorer's
  ``offset >= buffer.size`` guard);
- the referenced memory is still *mapped* once the replay completes
  (MED012).  Pool-freed and even superseded temporaries stay mapped — the
  caching allocator keeps the block — and graph kernels rewrite them
  before reading (§4.3), so only cudaFree'd or empty-cache-released
  targets are faults;
- a pointer restore sits on an 8-byte parameter slot (MED013) and every
  node carries exactly one restore rule per parameter (MED014).
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.liveness import UNMAPPED, LivenessResult
from repro.core.artifact import MaterializedModel
from repro.core.pointer_analysis import POINTER


def check_pointers(artifact: MaterializedModel,
                   liveness: LivenessResult) -> List[Diagnostic]:
    """Bounds- and liveness-check every indirect index pointer (§4.1)."""
    diagnostics: List[Diagnostic] = []
    for batch_size in sorted(artifact.graphs):
        graph = artifact.graphs[batch_size]
        for node_index, node in enumerate(graph.nodes):
            where = f"graphs[{batch_size}].nodes[{node_index}]"
            if len(node.param_restores) != len(node.param_sizes):
                diagnostics.append(Diagnostic(
                    "MED014",
                    f"kernel {node.kernel_name}: {len(node.param_restores)} "
                    f"restore rules for {len(node.param_sizes)} parameters",
                    where))
            for position, (size, restore) in enumerate(
                    zip(node.param_sizes, node.param_restores)):
                if restore.kind != POINTER:
                    continue
                spot = f"{where}.params[{position}]"
                if size != 8:
                    diagnostics.append(Diagnostic(
                        "MED013",
                        f"pointer restore on a {size}-byte parameter of "
                        f"{node.kernel_name}", spot))
                record = liveness.record(restore.alloc_index)
                if record is None:
                    diagnostics.append(Diagnostic(
                        "MED010",
                        f"pointer names allocation {restore.alloc_index}, "
                        f"which the replayed sequence never produces", spot))
                    continue
                if not 0 <= restore.offset < record.size:
                    diagnostics.append(Diagnostic(
                        "MED011",
                        f"offset {restore.offset} outside allocation "
                        f"{restore.alloc_index} of {record.size} bytes",
                        spot))
                if record.end_state == UNMAPPED:
                    cause = ("cudaFree'd" if record.freed is not None
                             and not record.pooled_free else
                             "released by empty_cache")
                    diagnostics.append(Diagnostic(
                        "MED012",
                        f"pointer into allocation {restore.alloc_index}, "
                        f"{cause} at replay[{record.end_position}] and "
                        f"unmapped when the graph launches", spot))
    return diagnostics
