"""Graph-topology checks over materialized CUDA graphs (§5, §2.5).

A restored graph is instantiated straight from the artifact's node list and
dependency edges; nothing downstream re-checks them.  This pass proves each
graph is structurally sound:

- every dependency edge references a valid node index (MED020);
- the edges form a DAG — instantiation order exists (MED021);
- the ``graphs`` mapping key equals the graph's own ``batch_size`` (MED022);
- the first-layer node count used for triggering (§5.2) is within bounds
  (MED023) and selects the *same* kernel-name prefix in every batch size's
  graph (MED024) — online warm-up launches ``nodes[:first_layer_nodes]`` of
  each graph, so a divergent prefix means the triggering plan warms the
  wrong kernels for some batch.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.diagnostics import Diagnostic
from repro.core.artifact import MaterializedModel


def check_topology(artifact: MaterializedModel) -> List[Diagnostic]:
    """Edge validity, DAG-ness, and first-layer consistency checks (§5)."""
    diagnostics: List[Diagnostic] = []
    for batch_size in sorted(artifact.graphs):
        graph = artifact.graphs[batch_size]
        where = f"graphs[{batch_size}]"
        if graph.batch_size != batch_size:
            diagnostics.append(Diagnostic(
                "MED022",
                f"stored under key {batch_size} but declares batch_size "
                f"{graph.batch_size}", where))
        diagnostics.extend(_check_edges(graph, where))
    diagnostics.extend(_check_first_layer(artifact))
    return diagnostics


def _check_edges(graph, where: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    num_nodes = graph.num_nodes
    adjacency: Dict[int, List[int]] = {}
    indegree = [0] * num_nodes
    valid_edges = 0
    for edge_index, (src, dst) in enumerate(graph.edges):
        if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
            diagnostics.append(Diagnostic(
                "MED020",
                f"edge ({src}, {dst}) references nodes outside "
                f"0..{num_nodes - 1}", f"{where}.edges[{edge_index}]"))
            continue
        adjacency.setdefault(src, []).append(dst)
        indegree[dst] += 1
        valid_edges += 1
    # Kahn's algorithm over the valid edges: leftovers mean a cycle.
    ready = [n for n in range(num_nodes) if indegree[n] == 0]
    visited = 0
    while ready:
        node = ready.pop()
        visited += 1
        for dst in adjacency.get(node, ()):
            indegree[dst] -= 1
            if indegree[dst] == 0:
                ready.append(dst)
    if visited < num_nodes:
        cyclic = sorted(n for n in range(num_nodes) if indegree[n] > 0)
        diagnostics.append(Diagnostic(
            "MED021",
            f"dependency edges are cyclic through nodes "
            f"{cyclic[:8]}{'...' if len(cyclic) > 8 else ''}",
            f"{where}.edges"))
    return diagnostics


def _check_first_layer(artifact: MaterializedModel) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if not artifact.graphs:
        return diagnostics
    count = artifact.first_layer_nodes
    smallest = min(g.num_nodes for g in artifact.graphs.values())
    if not 1 <= count <= smallest:
        diagnostics.append(Diagnostic(
            "MED023",
            f"first_layer_nodes is {count}; must be between 1 and the "
            f"smallest graph's node count ({smallest})",
            "first_layer_nodes"))
        return diagnostics
    reference_batch = min(artifact.graphs)
    reference = [node.kernel_name
                 for node in artifact.graphs[reference_batch].nodes[:count]]
    for batch_size in sorted(artifact.graphs):
        prefix = [node.kernel_name
                  for node in artifact.graphs[batch_size].nodes[:count]]
        if prefix != reference:
            mismatch = next(i for i, (a, b) in enumerate(zip(prefix,
                                                             reference))
                            if a != b)
            diagnostics.append(Diagnostic(
                "MED024",
                f"first-layer prefix diverges from batch "
                f"{reference_batch}'s at node {mismatch} "
                f"({prefix[mismatch]} vs {reference[mismatch]})",
                f"graphs[{batch_size}].nodes[{mismatch}]"))
    return diagnostics
