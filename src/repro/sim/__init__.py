"""Discrete-event simulation kernel (`repro.sim`).

One typed :class:`EventLoop` replaces the hand-rolled ``heapq`` loops the
serverless simulators used to carry and subsumes the engine clock's span
log: stable tie-breaking, a shared time-monotonicity check raising
:class:`repro.errors.InvalidValueError`, and labelled span/mark trace
recording that the Chrome-trace exporter renders as one unified view of a
cluster run.
"""

from repro.sim.kernel import (
    Event,
    EventLoop,
    Span,
    TraceRecorder,
    check_advance,
)

__all__ = [
    "Event",
    "EventLoop",
    "Span",
    "TraceRecorder",
    "check_advance",
]
