"""The discrete-event simulation kernel shared by every timing substrate.

Before this module existed the repository kept three ad-hoc notions of
simulated time: the engine's :class:`repro.simgpu.clock.SimClock`, and one
hand-rolled ``heapq`` loop each in ``repro.serverless.simulator`` and
``repro.serverless.cluster``.  This kernel unifies them:

- :class:`Event` — a typed, immutable occurrence at one instant, carrying a
  string ``kind`` and an opaque payload;
- :class:`EventLoop` — a priority queue with **stable tie-breaking**
  (``(time, kind priority, insertion sequence)``), so two runs over the
  same inputs dispatch identical event streams: determinism is structural,
  not accidental.  Scheduling into the past raises
  :class:`repro.errors.InvalidValueError` via the same monotonicity check
  (:func:`check_advance`) the engine clock uses;
- :class:`TraceRecorder` — labelled span *and* instant-mark recording
  subsuming the clock's span log, so a whole cluster run (arrivals,
  per-stage cold starts, serving steps, retirements) can be exported as
  one Chrome trace by :mod:`repro.reporting.timeline`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import InvalidValueError, SchedulingError


def check_advance(now: float, delta: float) -> float:
    """The kernel's one time-monotonicity check.

    Returns ``now + delta``; a negative ``delta`` (an attempt to move
    simulated time backwards) raises
    :class:`repro.errors.InvalidValueError`.  Both the event loop's
    scheduler and :meth:`repro.simgpu.clock.SimClock.advance` route
    through this function, so every timing substrate rejects time travel
    with the same error type.
    """
    if delta < 0:
        raise InvalidValueError(
            f"cannot advance simulated time by negative delta {delta}")
    return now + delta


@dataclass
class Span:
    """A labelled, closed interval of simulated time."""

    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the interval in simulated seconds."""
        return self.end - self.start


@dataclass
class TraceRecorder:
    """Labelled span/mark log for one simulation run.

    Superset of the engine clock's span log: ``spans`` are closed
    intervals (a cold-start stage, one serving step), ``marks`` are
    instants (an arrival, a retirement, a degraded-rung event).  Each
    entry carries a ``track`` (e.g. ``instance-3``) and free-form
    ``args`` so the Chrome-trace exporter can place it without guessing.
    """

    spans: List[Span] = field(default_factory=list)
    tracks: List[str] = field(default_factory=list)
    args: List[Dict[str, object]] = field(default_factory=list)
    marks: List[Tuple[str, float, str, Dict[str, object]]] = \
        field(default_factory=list)

    def span(self, label: str, start: float, end: float,
             track: str = "", **extra: object) -> Span:
        """Record one closed interval on ``track``; returns the span."""
        record = Span(label=label, start=start, end=end)
        self.spans.append(record)
        self.tracks.append(track)
        self.args.append(dict(extra))
        return record

    def mark(self, label: str, time: float, track: str = "",
             **extra: object) -> None:
        """Record one instantaneous event on ``track``."""
        self.marks.append((label, time, track, dict(extra)))

    def spans_named(self, label: str) -> List[Span]:
        """Every recorded span carrying ``label``, in record order."""
        return [s for s in self.spans if s.label == label]

    def total(self, label: str) -> float:
        """Summed duration of every span named ``label``."""
        return sum(s.duration for s in self.spans_named(label))

    def last(self, label: str) -> Optional[Span]:
        """The most recently recorded span named ``label``, if any."""
        named = self.spans_named(label)
        return named[-1] if named else None


@dataclass(frozen=True)
class Event:
    """One typed occurrence at one simulated instant.

    ``seq`` is the loop-local insertion sequence number — together with
    the kind's registered priority it makes dispatch order a pure
    function of the schedule calls, independent of heap internals.
    """

    time: float
    kind: str
    seq: int
    payload: object = None


class EventLoop:
    """A deterministic discrete-event loop with typed handlers.

    Handlers are registered per event kind with :meth:`on`; each
    registration assigns the kind a tie-break priority (defaulting to
    registration order), so simultaneous events dispatch in a declared,
    stable order: ``(time, priority, insertion seq)``.  ``seed`` is
    carried for consumers that derive randomness per run; the loop itself
    is deterministic by construction and never consumes entropy.
    """

    def __init__(self, start: float = 0.0, seed: int = 0):
        self.now = start
        self.seed = seed
        self.dispatched = 0
        self.trace = TraceRecorder()
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._priorities: Dict[str, int] = {}
        self._handlers: Dict[str, Callable[[Event], None]] = {}
        self._cancelled: set = set()

    # -- wiring --------------------------------------------------------------

    def on(self, kind: str, handler: Callable[[Event], None],
           priority: Optional[int] = None) -> None:
        """Register ``handler`` for ``kind`` with a tie-break priority."""
        if kind in self._handlers:
            raise SchedulingError(f"handler for {kind!r} already registered")
        self._handlers[kind] = handler
        self._priorities[kind] = (priority if priority is not None
                                  else len(self._priorities))

    # -- scheduling ----------------------------------------------------------

    def schedule(self, time: float, kind: str,
                 payload: object = None) -> Event:
        """Enqueue an event at absolute ``time`` (>= now); returns it."""
        if kind not in self._handlers:
            raise SchedulingError(
                f"cannot schedule unregistered event kind {kind!r}; "
                f"registered: {sorted(self._handlers) or '<none>'}")
        check_advance(self.now, time - self.now)
        event = Event(time=time, kind=kind, seq=next(self._seq),
                      payload=payload)
        heapq.heappush(self._heap,
                       (event.time, self._priorities[kind], event.seq,
                        event))
        return event

    def schedule_in(self, delay: float, kind: str,
                    payload: object = None) -> Event:
        """Enqueue an event ``delay`` seconds from now (>= 0)."""
        return self.schedule(check_advance(self.now, delay), kind, payload)

    def cancel(self, event: Event) -> None:
        """Annul a pending event; a no-op if it already dispatched."""
        self._cancelled.add(event.seq)

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled ones excluded)."""
        return sum(1 for *_ignored, event in self._heap
                   if event.seq not in self._cancelled)

    # -- dispatch ------------------------------------------------------------

    def step(self) -> Optional[Event]:
        """Dispatch the next event to its handler; None when drained."""
        while self._heap:
            time, _priority, seq, event = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self.now = time
            self.dispatched += 1
            self._handlers[event.kind](event)
            return event
        return None

    def run(self) -> int:
        """Dispatch until the queue drains; returns the dispatch count."""
        count = 0
        while self.step() is not None:
            count += 1
        return count
