"""Binary artifact format (.npz): the bulk arrays out of JSON.

A paper-scale artifact holds ~16k nodes x ~7 parameter restores plus ~65k
replay events; as JSON that is ~10 MiB of digits.  This module packs the
bulky parts into numpy arrays (one ``.npz`` per artifact) while keeping the
small metadata as an embedded JSON string — typically ~6x smaller and much
faster to load, which matters because artifact deserialization sits on the
online critical path (§7.3).
"""

from __future__ import annotations

import io
import json
from typing import Dict, List, Tuple

import numpy as np

from repro.core.artifact import (
    MaterializedGraph,
    MaterializedModel,
    MaterializedNode,
    ReplayEvent,
    TriggerPlan,
)
from repro.core.pointer_analysis import CONST, POINTER, ParamRestore
from repro.errors import ArtifactError

_KIND_CODES = {CONST: 0, POINTER: 1}
_KIND_NAMES = {0: CONST, 1: POINTER}
_EVENT_CODES = {"alloc": 0, "free": 1, "empty_cache": 2}
_EVENT_NAMES = {0: "alloc", 1: "free", 2: "empty_cache"}


def save_binary(artifact: MaterializedModel, path) -> int:
    """Write ``artifact`` as .npz; returns the byte size on disk."""
    kernel_names = sorted({node.kernel_name
                           for graph in artifact.graphs.values()
                           for node in graph.nodes})
    name_index = {name: i for i, name in enumerate(kernel_names)}
    pools = sorted({event.pool for event in artifact.replay_events})
    pool_index = {pool: i for i, pool in enumerate(pools)}
    tags = sorted({event.tag for event in artifact.replay_events})
    tag_index = {tag: i for i, tag in enumerate(tags)}

    arrays: Dict[str, np.ndarray] = {
        "kernel_names": np.array(kernel_names),
        "pools": np.array(pools),
        "tags": np.array(tags),
    }

    # Replay events: one row each.
    events = artifact.replay_events
    arrays["ev_kind"] = np.array(
        [_EVENT_CODES[e.kind] for e in events], dtype=np.int8)
    arrays["ev_alloc_index"] = np.array(
        [e.alloc_index for e in events], dtype=np.int64)
    arrays["ev_size"] = np.array([e.size for e in events], dtype=np.int64)
    arrays["ev_pooled"] = np.array([e.pooled for e in events], dtype=np.int8)
    arrays["ev_tag"] = np.array(
        [tag_index[e.tag] for e in events], dtype=np.int16)
    arrays["ev_pool"] = np.array(
        [pool_index[e.pool] for e in events], dtype=np.int8)

    # Graphs: per batch, flattened node/param/edge arrays.
    for batch, graph in artifact.graphs.items():
        prefix = f"g{batch}_"
        arrays[prefix + "kernel"] = np.array(
            [name_index[n.kernel_name] for n in graph.nodes], dtype=np.int32)
        arrays[prefix + "batchdim"] = np.array(
            [n.launch_dims.get("batch_size", 0) for n in graph.nodes],
            dtype=np.int32)
        offsets = [0]
        sizes: List[int] = []
        kinds: List[int] = []
        values: List[int] = []
        byte_offsets: List[int] = []
        for node in graph.nodes:
            for size, restore in zip(node.param_sizes, node.param_restores):
                sizes.append(size)
                kinds.append(_KIND_CODES[restore.kind])
                if restore.kind == POINTER:
                    values.append(restore.alloc_index)
                    byte_offsets.append(restore.offset)
                else:
                    values.append(restore.value)
                    byte_offsets.append(0)
            offsets.append(len(sizes))
        arrays[prefix + "param_offsets"] = np.array(offsets, dtype=np.int64)
        arrays[prefix + "param_sizes"] = np.array(sizes, dtype=np.int8)
        arrays[prefix + "param_kinds"] = np.array(kinds, dtype=np.int8)
        arrays[prefix + "param_values"] = np.array(values, dtype=np.int64)
        arrays[prefix + "param_byte_offsets"] = np.array(byte_offsets,
                                                         dtype=np.int64)
        arrays[prefix + "edges"] = np.array(sorted(graph.edges),
                                            dtype=np.int64).reshape(-1, 2)

    metadata = {
        "model_name": artifact.model_name,
        "gpu_name": artifact.gpu_name,
        "format_version": artifact.format_version,
        "kv_bytes": artifact.kv_bytes,
        "kv_num_blocks": artifact.kv_num_blocks,
        "kv_layer_stride": artifact.kv_layer_stride,
        "kv_alloc_index": artifact.kv_alloc_index,
        "structure_prefix": list(artifact.structure_prefix),
        "graph_input_alloc_index": artifact.graph_input_alloc_index,
        "graph_output_alloc_index": artifact.graph_output_alloc_index,
        "capture_marker": artifact.capture_marker,
        "kernel_libraries": artifact.kernel_libraries,
        "permanent_contents": {str(k): v for k, v
                               in artifact.permanent_contents.items()},
        "batches": sorted(artifact.graphs),
        "graph_meta": {str(b): [g.param_bytes, g.num_tokens]
                       for b, g in artifact.graphs.items()},
        "first_layer_nodes": artifact.first_layer_nodes,
        "trigger_plans": [[t.kernel_name, list(t.node_ref)]
                          for t in artifact.trigger_plans],
        "stats": artifact.stats,
    }
    arrays["metadata"] = np.array([json.dumps(metadata)])
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    import os
    return os.path.getsize(path)


def load_binary(path) -> MaterializedModel:
    """Read an artifact written by :func:`save_binary`."""
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError as exc:
        raise ArtifactError(f"no binary artifact at {path}") from exc
    except Exception as exc:
        raise ArtifactError(f"unreadable binary artifact {path}: {exc}") \
            from exc
    metadata = json.loads(str(data["metadata"][0]))
    artifact = MaterializedModel(
        model_name=metadata["model_name"],
        gpu_name=metadata["gpu_name"],
        kv_bytes=metadata["kv_bytes"],
        kv_num_blocks=metadata["kv_num_blocks"],
        kv_layer_stride=metadata["kv_layer_stride"],
        kv_alloc_index=metadata["kv_alloc_index"],
        structure_prefix=[tuple(p) for p in metadata["structure_prefix"]],
        graph_input_alloc_index=metadata["graph_input_alloc_index"],
        graph_output_alloc_index=metadata["graph_output_alloc_index"],
        capture_marker=metadata["capture_marker"],
        kernel_libraries=metadata["kernel_libraries"],
        permanent_contents={int(k): v for k, v
                            in metadata["permanent_contents"].items()},
        first_layer_nodes=metadata["first_layer_nodes"],
        trigger_plans=[TriggerPlan(name, tuple(ref))
                       for name, ref in metadata["trigger_plans"]],
        stats=metadata["stats"],
    )
    kernel_names = [str(n) for n in data["kernel_names"]]
    tags = [str(t) for t in data["tags"]]
    pools = [str(p) for p in data["pools"]]

    artifact.replay_events = [
        ReplayEvent(kind=_EVENT_NAMES[int(kind)],
                    alloc_index=int(alloc_index), size=int(size),
                    tag=tags[tag] if tags else "",
                    pooled=bool(pooled),
                    pool=pools[pool] if pools else "default")
        for kind, alloc_index, size, pooled, tag, pool in zip(
            data["ev_kind"], data["ev_alloc_index"], data["ev_size"],
            data["ev_pooled"], data["ev_tag"], data["ev_pool"])
    ]

    for batch in metadata["batches"]:
        prefix = f"g{batch}_"
        param_bytes, num_tokens = metadata["graph_meta"][str(batch)]
        offsets = data[prefix + "param_offsets"]
        sizes = data[prefix + "param_sizes"]
        kinds = data[prefix + "param_kinds"]
        values = data[prefix + "param_values"]
        byte_offsets = data[prefix + "param_byte_offsets"]
        nodes: List[MaterializedNode] = []
        for node_index, kernel_id in enumerate(data[prefix + "kernel"]):
            start, end = int(offsets[node_index]), int(offsets[node_index + 1])
            restores = []
            for position in range(start, end):
                if _KIND_NAMES[int(kinds[position])] == POINTER:
                    restores.append(ParamRestore.pointer(
                        int(values[position]), int(byte_offsets[position])))
                else:
                    restores.append(ParamRestore.const(int(values[position])))
            nodes.append(MaterializedNode(
                kernel_name=kernel_names[int(kernel_id)],
                param_sizes=[int(s) for s in sizes[start:end]],
                param_restores=restores,
                launch_dims={"batch_size":
                             int(data[prefix + "batchdim"][node_index])},
            ))
        artifact.graphs[int(batch)] = MaterializedGraph(
            batch_size=int(batch),
            nodes=nodes,
            edges=[tuple(int(v) for v in edge)
                   for edge in data[prefix + "edges"]],
            param_bytes=param_bytes,
            num_tokens=num_tokens,
        )
    return artifact
