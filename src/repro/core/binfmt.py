"""Binary artifact format (.npz): the bulk arrays out of JSON.

A paper-scale artifact holds ~16k nodes x ~7 parameter restores plus ~65k
replay events; as JSON that is ~10 MiB of digits.  This module packs the
bulky parts into numpy arrays (one ``.npz`` per artifact) while keeping the
small metadata as an embedded JSON string — typically ~6x smaller and much
faster to load, which matters because artifact deserialization sits on the
online critical path (§7.3).

Two readers share the on-disk format:

- :func:`load_binary` — the eager path: rehydrate everything into
  per-node :class:`~repro.core.artifact.MaterializedNode` /
  :class:`~repro.core.artifact.ReplayEvent` Python objects (the pre-fast-
  path behavior, kept callable as the comparison baseline);
- :class:`LazyArtifact` — the fast path: open the npz and parse only the
  embedded JSON metadata; the bulk replay/parameter tables stay numpy
  arrays (:class:`ReplayTable`, :class:`GraphTable`), decompressed
  per-graph on first access, and are consumed array-at-a-time by
  :mod:`repro.core.fastpath` without ever becoming Python objects.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.artifact import (
    ARTIFACT_FORMAT_VERSION,
    MaterializedGraph,
    MaterializedModel,
    MaterializedNode,
    ReplayEvent,
    TriggerPlan,
)
from repro.core.pointer_analysis import CONST, POINTER, ParamRestore
from repro.errors import ArtifactError

_KIND_CODES = {CONST: 0, POINTER: 1}
_KIND_NAMES = {0: CONST, 1: POINTER}
_EVENT_CODES = {"alloc": 0, "free": 1, "empty_cache": 2}
_EVENT_NAMES = {0: "alloc", 1: "free", 2: "empty_cache"}


def artifact_arrays(
        artifact: MaterializedModel) -> Tuple[Dict[str, np.ndarray], dict]:
    """Flatten ``artifact`` into its on-disk arrays and metadata dict.

    Shared by :func:`save_binary` (which packs everything into one .npz)
    and :mod:`repro.core.chunks` (which splits the same arrays into
    content-addressed chunks).  The metadata dict is the exact object
    :func:`save_binary` embeds as the ``metadata`` member.
    """
    kernel_names = sorted({node.kernel_name
                           for graph in artifact.graphs.values()
                           for node in graph.nodes})
    name_index = {name: i for i, name in enumerate(kernel_names)}
    pools = sorted({event.pool for event in artifact.replay_events})
    pool_index = {pool: i for i, pool in enumerate(pools)}
    tags = sorted({event.tag for event in artifact.replay_events})
    tag_index = {tag: i for i, tag in enumerate(tags)}

    arrays: Dict[str, np.ndarray] = {
        "kernel_names": np.array(kernel_names),
        "pools": np.array(pools),
        "tags": np.array(tags),
    }

    # Replay events: one row each.
    events = artifact.replay_events
    arrays["ev_kind"] = np.array(
        [_EVENT_CODES[e.kind] for e in events], dtype=np.int8)
    arrays["ev_alloc_index"] = np.array(
        [e.alloc_index for e in events], dtype=np.int64)
    arrays["ev_size"] = np.array([e.size for e in events], dtype=np.int64)
    arrays["ev_pooled"] = np.array([e.pooled for e in events], dtype=np.int8)
    arrays["ev_tag"] = np.array(
        [tag_index[e.tag] for e in events], dtype=np.int16)
    arrays["ev_pool"] = np.array(
        [pool_index[e.pool] for e in events], dtype=np.int8)

    # Graphs: per batch, flattened node/param/edge arrays.
    for batch, graph in artifact.graphs.items():
        prefix = f"g{batch}_"
        arrays[prefix + "kernel"] = np.array(
            [name_index[n.kernel_name] for n in graph.nodes], dtype=np.int32)
        arrays[prefix + "batchdim"] = np.array(
            [n.launch_dims.get("batch_size", 0) for n in graph.nodes],
            dtype=np.int32)
        offsets = [0]
        sizes: List[int] = []
        kinds: List[int] = []
        values: List[int] = []
        byte_offsets: List[int] = []
        for node in graph.nodes:
            for size, restore in zip(node.param_sizes, node.param_restores):
                sizes.append(size)
                kinds.append(_KIND_CODES[restore.kind])
                if restore.kind == POINTER:
                    values.append(restore.alloc_index)
                    byte_offsets.append(restore.offset)
                else:
                    values.append(restore.value)
                    byte_offsets.append(0)
            offsets.append(len(sizes))
        arrays[prefix + "param_offsets"] = np.array(offsets, dtype=np.int64)
        arrays[prefix + "param_sizes"] = np.array(sizes, dtype=np.int8)
        arrays[prefix + "param_kinds"] = np.array(kinds, dtype=np.int8)
        arrays[prefix + "param_values"] = np.array(values, dtype=np.int64)
        arrays[prefix + "param_byte_offsets"] = np.array(byte_offsets,
                                                         dtype=np.int64)
        arrays[prefix + "edges"] = np.array(sorted(graph.edges),
                                            dtype=np.int64).reshape(-1, 2)

    metadata = {
        "model_name": artifact.model_name,
        "gpu_name": artifact.gpu_name,
        "format_version": artifact.format_version,
        "kv_bytes": artifact.kv_bytes,
        "kv_num_blocks": artifact.kv_num_blocks,
        "kv_layer_stride": artifact.kv_layer_stride,
        "kv_alloc_index": artifact.kv_alloc_index,
        "structure_prefix": list(artifact.structure_prefix),
        "graph_input_alloc_index": artifact.graph_input_alloc_index,
        "graph_output_alloc_index": artifact.graph_output_alloc_index,
        "capture_marker": artifact.capture_marker,
        "kernel_libraries": artifact.kernel_libraries,
        "permanent_contents": {str(k): v for k, v
                               in artifact.permanent_contents.items()},
        "batches": sorted(artifact.graphs),
        # [param_bytes, num_tokens, num_nodes] — the node count lets a
        # lazy reader report totals without decompressing any graph array.
        "graph_meta": {str(b): [g.param_bytes, g.num_tokens, g.num_nodes]
                       for b, g in artifact.graphs.items()},
        "first_layer_nodes": artifact.first_layer_nodes,
        "trigger_plans": [[t.kernel_name, list(t.node_ref)]
                          for t in artifact.trigger_plans],
        "stats": artifact.stats,
    }
    return arrays, metadata


def save_binary(artifact: MaterializedModel, path) -> int:
    """Write ``artifact`` as .npz; returns the byte size on disk."""
    arrays, metadata = artifact_arrays(artifact)
    arrays["metadata"] = np.array([json.dumps(metadata)])
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    import os
    return os.path.getsize(path)


def load_binary(path) -> MaterializedModel:
    """Read an artifact written by :func:`save_binary`."""
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError as exc:
        raise ArtifactError(f"no binary artifact at {path}") from exc
    except Exception as exc:
        raise ArtifactError(f"unreadable binary artifact {path}: {exc}") \
            from exc
    metadata = json.loads(str(data["metadata"][0]))
    artifact = MaterializedModel(
        model_name=metadata["model_name"],
        gpu_name=metadata["gpu_name"],
        kv_bytes=metadata["kv_bytes"],
        kv_num_blocks=metadata["kv_num_blocks"],
        kv_layer_stride=metadata["kv_layer_stride"],
        kv_alloc_index=metadata["kv_alloc_index"],
        structure_prefix=[tuple(p) for p in metadata["structure_prefix"]],
        graph_input_alloc_index=metadata["graph_input_alloc_index"],
        graph_output_alloc_index=metadata["graph_output_alloc_index"],
        capture_marker=metadata["capture_marker"],
        kernel_libraries=metadata["kernel_libraries"],
        permanent_contents={int(k): v for k, v
                            in metadata["permanent_contents"].items()},
        first_layer_nodes=metadata["first_layer_nodes"],
        trigger_plans=[TriggerPlan(name, tuple(ref))
                       for name, ref in metadata["trigger_plans"]],
        stats=metadata["stats"],
    )
    kernel_names = [str(n) for n in data["kernel_names"]]
    tags = [str(t) for t in data["tags"]]
    pools = [str(p) for p in data["pools"]]

    artifact.replay_events = [
        ReplayEvent(kind=_EVENT_NAMES[int(kind)],
                    alloc_index=int(alloc_index), size=int(size),
                    tag=tags[tag] if tags else "",
                    pooled=bool(pooled),
                    pool=pools[pool] if pools else "default")
        for kind, alloc_index, size, pooled, tag, pool in zip(
            data["ev_kind"], data["ev_alloc_index"], data["ev_size"],
            data["ev_pooled"], data["ev_tag"], data["ev_pool"])
    ]

    for batch in metadata["batches"]:
        prefix = f"g{batch}_"
        param_bytes, num_tokens = metadata["graph_meta"][str(batch)][:2]
        offsets = data[prefix + "param_offsets"]
        sizes = data[prefix + "param_sizes"]
        kinds = data[prefix + "param_kinds"]
        values = data[prefix + "param_values"]
        byte_offsets = data[prefix + "param_byte_offsets"]
        nodes: List[MaterializedNode] = []
        for node_index, kernel_id in enumerate(data[prefix + "kernel"]):
            start, end = int(offsets[node_index]), int(offsets[node_index + 1])
            restores = []
            for position in range(start, end):
                if _KIND_NAMES[int(kinds[position])] == POINTER:
                    restores.append(ParamRestore.pointer(
                        int(values[position]), int(byte_offsets[position])))
                else:
                    restores.append(ParamRestore.const(int(values[position])))
            nodes.append(MaterializedNode(
                kernel_name=kernel_names[int(kernel_id)],
                param_sizes=[int(s) for s in sizes[start:end]],
                param_restores=restores,
                launch_dims={"batch_size":
                             int(data[prefix + "batchdim"][node_index])},
            ))
        artifact.graphs[int(batch)] = MaterializedGraph(
            batch_size=int(batch),
            nodes=nodes,
            edges=[tuple(int(v) for v in edge)
                   for edge in data[prefix + "edges"]],
            param_bytes=param_bytes,
            num_tokens=num_tokens,
        )
    return artifact


# ---------------------------------------------------------------------------
# Lazy reader: header + metadata up front, bulk arrays on demand
# ---------------------------------------------------------------------------

class ReplayTable:
    """The replay-event sequence as a struct of numpy arrays.

    The eager path rehydrates ~65k :class:`ReplayEvent` objects; this table
    keeps the six columns the events decompose into (kind code, allocation
    index, size, pooled flag, tag id, pool id) plus the two string tables.
    :meth:`rows` yields plain-int tuples for the replay loop (converted from
    the arrays once, not per access), and :meth:`event` rehydrates a single
    :class:`ReplayEvent` for error paths and spot checks.
    """

    def __init__(self, kind: np.ndarray, alloc_index: np.ndarray,
                 size: np.ndarray, pooled: np.ndarray, tag_id: np.ndarray,
                 pool_id: np.ndarray, tags: List[str], pools: List[str]):
        self.kind = kind
        self.alloc_index = alloc_index
        self.size = size
        self.pooled = pooled
        self.tag_id = tag_id
        self.pool_id = pool_id
        self.tags = tags
        self.pools = pools
        self._rows: Optional[List[Tuple[int, int, int, int, str, str]]] = None

    def __len__(self) -> int:
        return int(self.kind.shape[0])

    def rows(self) -> List[Tuple[int, int, int, int, str, str]]:
        """All events as ``(kind, alloc_index, size, pooled, tag, pool)``
        plain-Python tuples, converted once and cached."""
        if self._rows is None:
            tags, pools = self.tags, self.pools
            self._rows = [
                (kind, alloc_index, size, pooled,
                 tags[tag] if tags else "",
                 pools[pool] if pools else "default")
                for kind, alloc_index, size, pooled, tag, pool in zip(
                    self.kind.tolist(), self.alloc_index.tolist(),
                    self.size.tolist(), self.pooled.tolist(),
                    self.tag_id.tolist(), self.pool_id.tolist())
            ]
        return self._rows

    def event(self, position: int) -> ReplayEvent:
        """Rehydrate the one event at ``position`` (object fallback)."""
        kind, alloc_index, size, pooled, tag, pool = self.rows()[position]
        return ReplayEvent(kind=_EVENT_NAMES[kind], alloc_index=alloc_index,
                           size=size, tag=tag, pooled=bool(pooled), pool=pool)

    def events(self) -> List[ReplayEvent]:
        """Every event as an object list (the eager equivalent)."""
        return [self.event(i) for i in range(len(self))]


class GraphTable:
    """One captured batch size's graph as flat numpy arrays.

    The CSR layout mirrors the on-disk format: node ``i`` owns parameter
    slots ``param_offsets[i]:param_offsets[i+1]`` of the flat
    ``param_sizes``/``param_kinds``/``param_values``/``param_byte_offsets``
    arrays.  ``param_kinds`` uses the on-disk codes (0 = constant,
    1 = pointer); for pointers ``param_values`` holds the allocation index
    and ``param_byte_offsets`` the interior offset, exactly the gather the
    vectorized restorer performs in one shot.
    """

    def __init__(self, batch_size: int, kernel_ids: np.ndarray,
                 kernel_names: List[str], batch_dims: np.ndarray,
                 param_offsets: np.ndarray, param_sizes: np.ndarray,
                 param_kinds: np.ndarray, param_values: np.ndarray,
                 param_byte_offsets: np.ndarray, edges: np.ndarray,
                 param_bytes: int, num_tokens: int):
        self.batch_size = batch_size
        self.kernel_ids = kernel_ids
        self.kernel_names = kernel_names       # shared global name table
        self.batch_dims = batch_dims
        self.param_offsets = param_offsets
        self.param_sizes = param_sizes
        self.param_kinds = param_kinds
        self.param_values = param_values
        self.param_byte_offsets = param_byte_offsets
        self.edges = edges
        self.param_bytes = param_bytes
        self.num_tokens = num_tokens

    @property
    def num_nodes(self) -> int:
        """Node count of this graph."""
        return int(self.kernel_ids.shape[0])

    def node_kernel_names(self) -> List[str]:
        """Per-node kernel names (resolved through the shared table)."""
        names = self.kernel_names
        return [names[k] for k in self.kernel_ids.tolist()]

    def node(self, index: int) -> MaterializedNode:
        """Rehydrate node ``index`` as an object (eager equivalent)."""
        start = int(self.param_offsets[index])
        end = int(self.param_offsets[index + 1])
        restores: List[ParamRestore] = []
        for position in range(start, end):
            if int(self.param_kinds[position]) == _KIND_CODES[POINTER]:
                restores.append(ParamRestore.pointer(
                    int(self.param_values[position]),
                    int(self.param_byte_offsets[position])))
            else:
                restores.append(ParamRestore.const(
                    int(self.param_values[position])))
        return MaterializedNode(
            kernel_name=self.kernel_names[int(self.kernel_ids[index])],
            param_sizes=[int(s) for s in self.param_sizes[start:end]],
            param_restores=restores,
            launch_dims={"batch_size": int(self.batch_dims[index])},
        )

    def to_graph(self) -> MaterializedGraph:
        """Rehydrate the whole graph into objects (eager equivalent)."""
        return MaterializedGraph(
            batch_size=self.batch_size,
            nodes=[self.node(i) for i in range(self.num_nodes)],
            edges=[tuple(int(v) for v in edge) for edge in self.edges],
            param_bytes=self.param_bytes,
            num_tokens=self.num_tokens,
        )


class LazyArtifact:
    """Header-and-metadata-only view of a binary artifact.

    Opening one reads the npz directory and decompresses a single member —
    the embedded JSON metadata.  Everything bulky (the replay-event columns
    and each graph's parameter arrays) stays on disk until first use:
    :meth:`replay_table` and :meth:`graph_table` decompress their arrays on
    demand and cache the result, so restoring only the first-request batch
    size never pays for the others.  The metadata properties mirror
    :class:`~repro.core.artifact.MaterializedModel`, and
    :meth:`materialize` rehydrates the full eager artifact (byte-identical
    to :func:`load_binary`) for consumers that need per-event hooks.
    """

    def __init__(self, path, data=None, meta=None):
        self.path = path
        if data is None:
            try:
                data = np.load(path, allow_pickle=False)
            except FileNotFoundError as exc:
                raise ArtifactError(f"no binary artifact at {path}") from exc
            except Exception as exc:
                raise ArtifactError(
                    f"unreadable binary artifact {path}: {exc}") from exc
            try:
                meta = json.loads(str(data["metadata"][0]))
            except KeyError as exc:
                raise ArtifactError(
                    f"binary artifact {path} has no metadata member — not a "
                    f"Medusa artifact") from exc
        elif meta is None:
            raise ArtifactError(
                "LazyArtifact needs parsed metadata when opened from an "
                "external member source")
        self._data = data
        self._meta = meta
        version = self._meta.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"artifact has format version {version!r} but this code "
                f"reads version {ARTIFACT_FORMAT_VERSION}; re-run the "
                f"offline phase to re-materialize it")
        self._replay_table: Optional[ReplayTable] = None
        self._graph_tables: Dict[int, GraphTable] = {}
        self._kernel_names: Optional[List[str]] = None

    # -- metadata mirror ----------------------------------------------------

    @property
    def model_name(self) -> str:
        """The materialized model's name (artifact key half, §3)."""
        return self._meta["model_name"]

    @property
    def gpu_name(self) -> str:
        """The GPU type the artifact was materialized on (§3)."""
        return self._meta["gpu_name"]

    @property
    def format_version(self) -> int:
        """On-disk artifact format version."""
        return self._meta["format_version"]

    @property
    def kv_bytes(self) -> int:
        """Materialized KV-cache size in bytes (§6)."""
        return self._meta["kv_bytes"]

    @property
    def kv_num_blocks(self) -> int:
        """Materialized KV block count (§6)."""
        return self._meta["kv_num_blocks"]

    @property
    def kv_layer_stride(self) -> int:
        """Per-layer stride inside the KV region."""
        return self._meta["kv_layer_stride"]

    @property
    def kv_alloc_index(self) -> int:
        """Allocation index of the KV region in the replay sequence."""
        return self._meta["kv_alloc_index"]

    @property
    def structure_prefix(self) -> List[Tuple[int, str]]:
        """The structure-init allocation prefix to verify against (§2.5)."""
        return [tuple(p) for p in self._meta["structure_prefix"]]

    @property
    def graph_input_alloc_index(self) -> int:
        """Allocation index of the shared graph input buffer."""
        return self._meta["graph_input_alloc_index"]

    @property
    def graph_output_alloc_index(self) -> int:
        """Allocation index of the shared graph output buffer."""
        return self._meta["graph_output_alloc_index"]

    @property
    def capture_marker(self) -> int:
        """Allocation index marking the capture boundary."""
        return self._meta["capture_marker"]

    @property
    def kernel_libraries(self) -> Dict[str, str]:
        """Kernel name -> owning library (§5)."""
        return self._meta["kernel_libraries"]

    @property
    def permanent_contents(self) -> Dict[int, List[List[float]]]:
        """Alloc index -> dumped payload rows (§4.3)."""
        return {int(k): v
                for k, v in self._meta["permanent_contents"].items()}

    @property
    def first_layer_nodes(self) -> int:
        """Prologue + first-layer node count (§5.2 triggering)."""
        return self._meta["first_layer_nodes"]

    @property
    def trigger_plans(self) -> List[TriggerPlan]:
        """Handwritten triggering-kernel launches (§5.1)."""
        return [TriggerPlan(name, tuple(ref))
                for name, ref in self._meta["trigger_plans"]]

    @property
    def stats(self) -> Dict[str, float]:
        """Offline statistics carried along for reports."""
        return self._meta["stats"]

    @property
    def batches(self) -> List[int]:
        """Captured batch sizes, ascending."""
        return [int(b) for b in self._meta["batches"]]

    @property
    def graphs(self) -> Dict[int, int]:
        """batch size -> node count, from metadata alone.

        Shaped like ``MaterializedModel.graphs`` for key-iteration
        consumers (``sorted(artifact.graphs)``, ``len``, ``in``) without
        touching any graph array.
        """
        return {batch: self.graph_nodes(batch) for batch in self.batches}

    def graph_nodes(self, batch: int) -> int:
        """Node count of one graph without decompressing it."""
        meta = self._meta["graph_meta"].get(str(batch))
        if meta is None:
            raise ArtifactError(
                f"artifact for {self.model_name} has no graph for batch "
                f"{batch} (has: {self.batches})")
        if len(meta) >= 3:          # written by the lazy-aware format
            return int(meta[2])
        return self.graph_table(batch).num_nodes   # legacy: count the array

    @property
    def total_nodes(self) -> int:
        """Total node count across all graphs (metadata only)."""
        return sum(self.graph_nodes(batch) for batch in self.batches)

    @property
    def total_replay_events(self) -> int:
        """Replay-event count (decompresses one int8 column)."""
        return len(self.replay_table())

    def permanent_payload(self, alloc_index: int) -> np.ndarray:
        """The dumped payload of one permanent buffer as float64 rows."""
        rows = self._meta["permanent_contents"].get(str(alloc_index))
        if rows is None:
            raise ArtifactError(
                f"no dumped contents for allocation {alloc_index}")
        return np.array(rows, dtype=np.float64)

    # -- bulk tables (decompressed on demand, cached) -----------------------

    def kernel_name_table(self) -> List[str]:
        """The shared kernel-name string table."""
        if self._kernel_names is None:
            self._kernel_names = [str(n) for n in self._data["kernel_names"]]
        return self._kernel_names

    def replay_table(self) -> ReplayTable:
        """The replay-event columns (first call decompresses them)."""
        if self._replay_table is None:
            data = self._data
            self._replay_table = ReplayTable(
                kind=data["ev_kind"],
                alloc_index=data["ev_alloc_index"],
                size=data["ev_size"],
                pooled=data["ev_pooled"],
                tag_id=data["ev_tag"],
                pool_id=data["ev_pool"],
                tags=[str(t) for t in data["tags"]],
                pools=[str(p) for p in data["pools"]],
            )
        return self._replay_table

    def graph_table(self, batch: int) -> GraphTable:
        """One batch size's graph arrays (first call decompresses them)."""
        table = self._graph_tables.get(batch)
        if table is None:
            if batch not in self.batches:
                raise ArtifactError(
                    f"artifact for {self.model_name} has no graph for "
                    f"batch {batch} (has: {self.batches})")
            data = self._data
            prefix = f"g{batch}_"
            meta = self._meta["graph_meta"][str(batch)]
            table = GraphTable(
                batch_size=batch,
                kernel_ids=data[prefix + "kernel"],
                kernel_names=self.kernel_name_table(),
                batch_dims=data[prefix + "batchdim"],
                param_offsets=data[prefix + "param_offsets"],
                param_sizes=data[prefix + "param_sizes"],
                param_kinds=data[prefix + "param_kinds"],
                param_values=data[prefix + "param_values"],
                param_byte_offsets=data[prefix + "param_byte_offsets"],
                edges=data[prefix + "edges"],
                param_bytes=int(meta[0]),
                num_tokens=int(meta[1]),
            )
            self._graph_tables[batch] = table
        return table

    def first_layer_table(self, batch: int) -> GraphTable:
        """The graph-table prefix :mod:`repro.core.fastpath` warms up with.

        The restorer only launches ``min(first_layer_nodes, num_nodes)``
        nodes per batch during warmup; a monolithic npz cannot load less
        than the whole graph, so this base implementation returns
        :meth:`graph_table`.  Chunk-backed artifacts override it to
        decompress only the head chunk (see
        :class:`repro.core.chunks.ChunkedLazyArtifact`).
        """
        return self.graph_table(batch)

    # -- eager fallback -----------------------------------------------------

    def materialize(self) -> MaterializedModel:
        """Rehydrate the full eager artifact (== :func:`load_binary`).

        The escape hatch for consumers that need per-event/per-node object
        hooks — fault injectors, the degradation ladder, static lint.
        """
        meta = self._meta
        artifact = MaterializedModel(
            model_name=meta["model_name"],
            gpu_name=meta["gpu_name"],
            kv_bytes=meta["kv_bytes"],
            kv_num_blocks=meta["kv_num_blocks"],
            kv_layer_stride=meta["kv_layer_stride"],
            kv_alloc_index=meta["kv_alloc_index"],
            structure_prefix=self.structure_prefix,
            graph_input_alloc_index=meta["graph_input_alloc_index"],
            graph_output_alloc_index=meta["graph_output_alloc_index"],
            capture_marker=meta["capture_marker"],
            kernel_libraries=meta["kernel_libraries"],
            permanent_contents=self.permanent_contents,
            first_layer_nodes=meta["first_layer_nodes"],
            trigger_plans=self.trigger_plans,
            stats=meta["stats"],
        )
        artifact.replay_events = self.replay_table().events()
        for batch in self.batches:
            artifact.graphs[batch] = self.graph_table(batch).to_graph()
        return artifact
