"""Content-addressed chunk store, keyed by <GPU type, model type> (§3).

The original artifact persists materialized graphs to the SSDs once per
model and reuses them across cold starts.  This store is that layer, now
chunk-granular: :meth:`ArtifactStore.put` splits an artifact with
:func:`repro.core.chunks.chunk_model` into sha256-addressed blobs under
``root/chunks/`` plus a small per-model **manifest** file, and
:meth:`ArtifactStore.get` reassembles the artifact from the manifest.
Because blobs are addressed by content, two models (or the same model
re-materialized for two GPUs) that share structurally identical graph,
replay, or kernel-table chunks store those bytes **once** —
:meth:`stats` reports the resulting dedup ratio.

Three caches keep repeated cold starts on one node off the
deserialization path:

- the **parsed index** is cached against the index file's
  ``(mtime_ns, size)`` stamp, so a hundred lookups parse ``index.json``
  once (``index_reads`` counts actual parses);
- each **parsed manifest** is stamp-cached the same way
  (``manifest_reads`` counts actual parses), so manifest-granular gets
  keep the same "100 gets ⇒ 1 parse" behavior;
- fetched artifacts land in a small in-memory **LRU keyed by the
  manifest file's content hash** (``cache_size`` entries, 0 disables).
  The manifest lists every chunk digest, so its hash is a content
  address for the whole artifact.  A hit returns the already-
  deserialized — and, with ``lint_on_load``, already-verified —
  artifact; treat it as read-only.  The cache is bypassed entirely while
  a :class:`~repro.faults.FaultInjector` is active, so chaos runs always
  see freshly corrupted copies.

``parallel_workers > 1`` decompresses independent chunks on a
:class:`~concurrent.futures.ThreadPoolExecutor` during :meth:`get` /
:meth:`get_lazy` prefetch (measured in ``benchmarks/bench_wallclock.py``).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.artifact import MaterializedModel
from repro.core.chunks import (
    ChunkManifest,
    ChunkedLazyArtifact,
    chunk_model,
    directory_loader,
)
from repro.errors import ArtifactError, LintError

_INDEX_NAME = "index.json"
_CHUNK_DIR = "chunks"
_MANIFEST_SUFFIX = ".medusa.manifest.json"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


class ArtifactStore:
    """Materialization artifacts for many models on one storage path."""

    def __init__(self, root, lint_on_load: bool = False, injector=None,
                 cache_size: int = 4, parallel_workers: int = 0):
        """``lint_on_load``: statically verify every artifact fetched with
        :meth:`get` (see :mod:`repro.analysis`) and raise
        :class:`~repro.errors.LintError` on error-severity diagnostics —
        the SSD copy may be corrupt, hand-edited, or version-skewed even
        when the index entry looks fine.  With the LRU enabled the check
        runs once per distinct content (lint-once): a cache hit is by
        definition the artifact that already passed.

        ``injector``: optional :class:`repro.faults.FaultInjector`; its
        ARTIFACT_CORRUPTION faults mutate artifacts as they come off the
        store, simulating a stale/bit-rotted SSD copy whose index entry
        still looks fine.

        ``cache_size``: in-memory LRU capacity in artifacts (content-hash
        keyed); 0 disables caching entirely.

        ``parallel_workers``: decompress this many chunks concurrently on
        reads (0/1 = serial)."""
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lint_on_load = lint_on_load
        self.injector = injector
        self.cache_size = cache_size
        self.parallel_workers = parallel_workers
        self.cache_hits = 0
        self.cache_misses = 0
        self.index_reads = 0
        self.manifest_reads = 0
        self.chunks_written = 0
        self.chunks_deduped = 0
        self.bytes_deduped = 0
        self._index_path = self.root / _INDEX_NAME
        self._chunk_dir = self.root / _CHUNK_DIR
        self._index_cache: Optional[
            Tuple[Tuple[int, int], Dict[str, str]]] = None
        self._manifest_cache: Dict[
            str, Tuple[Tuple[int, int], ChunkManifest, str]] = {}
        self._cache: "OrderedDict[str, MaterializedModel]" = OrderedDict()

    # -- index ------------------------------------------------------------

    def _read_index(self) -> Dict[str, str]:
        if not self._index_path.exists():
            return {}
        stat = self._index_path.stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
        if self._index_cache is not None and self._index_cache[0] == stamp:
            return dict(self._index_cache[1])
        self.index_reads += 1
        try:
            parsed = json.loads(self._index_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"artifact store index at {self._index_path} is corrupt: "
                f"{exc}") from exc
        self._index_cache = (stamp, parsed)
        return dict(parsed)

    def _write_index(self, index: Dict[str, str]) -> None:
        self._index_path.write_text(json.dumps(index, indent=2, sort_keys=True))
        stat = self._index_path.stat()
        self._index_cache = ((stat.st_mtime_ns, stat.st_size), dict(index))

    @staticmethod
    def _key(gpu_name: str, model_name: str) -> str:
        return f"{gpu_name}::{model_name}"

    # -- manifests ---------------------------------------------------------

    def _load_manifest(self, filename: str) -> Tuple[ChunkManifest, str]:
        """Parse one manifest file, stamp-cached; returns it plus the
        sha256 of its bytes (the artifact's content address)."""
        path = self.root / filename
        try:
            stat = path.stat()
        except FileNotFoundError as exc:
            raise ArtifactError(
                f"indexed artifact file {filename} is missing from "
                f"{self.root}") from exc
        stamp = (stat.st_mtime_ns, stat.st_size)
        cached = self._manifest_cache.get(filename)
        if cached is not None and cached[0] == stamp:
            return cached[1], cached[2]
        self.manifest_reads += 1
        payload = path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        manifest = ChunkManifest.from_json(payload.decode("utf-8"))
        self._manifest_cache[filename] = (stamp, manifest, digest)
        return manifest, digest

    def _lookup(self, gpu_name: str, model_name: str) -> str:
        filename = self._read_index().get(self._key(gpu_name, model_name))
        if filename is None:
            raise ArtifactError(
                f"no materialization for <{gpu_name}, {model_name}> in "
                f"{self.root}; run the offline phase first")
        return filename

    def _open_chunked(self, manifest: ChunkManifest,
                      filename: str) -> ChunkedLazyArtifact:
        return ChunkedLazyArtifact(manifest, directory_loader(self._chunk_dir),
                                   path=self.root / filename)

    # -- operations ----------------------------------------------------------

    def put(self, artifact: MaterializedModel) -> pathlib.Path:
        """Persist an artifact as chunks + manifest; returns the manifest
        path.  Chunk blobs already present (from any model/GPU) are not
        rewritten — ``chunks_deduped``/``bytes_deduped`` count them."""
        manifest, blobs = chunk_model(artifact)
        self._chunk_dir.mkdir(exist_ok=True)
        for digest in sorted(blobs):
            blob_path = self._chunk_dir / digest
            if blob_path.exists():
                self.chunks_deduped += 1
                self.bytes_deduped += len(blobs[digest])
            else:
                blob_path.write_bytes(blobs[digest])
                self.chunks_written += 1
        filename = (f"{_slug(artifact.gpu_name)}__"
                    f"{_slug(artifact.model_name)}{_MANIFEST_SUFFIX}")
        path = self.root / filename
        path.write_text(manifest.to_json())
        index = self._read_index()
        index[self._key(artifact.gpu_name, artifact.model_name)] = filename
        self._write_index(index)
        return path

    def get(self, gpu_name: str, model_name: str) -> MaterializedModel:
        """Fetch one artifact (through the LRU unless an injector is live),
        reassembled from its manifest's chunks."""
        filename = self._lookup(gpu_name, model_name)
        manifest, digest = self._load_manifest(filename)
        caching = self.cache_size > 0 and not (
            self.injector is not None and self.injector.active)
        if caching:
            cached = self._cache.get(digest)
            if cached is not None:
                self._cache.move_to_end(digest)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        lazy = self._open_chunked(manifest, filename)
        lazy.reader.prefetch(workers=self.parallel_workers)
        artifact = lazy.materialize()
        if self.injector is not None and self.injector.active:
            artifact = self.injector.corrupted_artifact(artifact)
        if self.lint_on_load:
            from repro.analysis import lint_artifact
            report = lint_artifact(artifact)
            if report.errors:
                raise LintError(
                    f"stored artifact {filename} failed static "
                    f"verification with {len(report.errors)} error(s): "
                    f"{', '.join(report.codes())}", report=report)
        if caching:
            self._cache[digest] = artifact
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return artifact

    def get_lazy(self, gpu_name: str, model_name: str) -> ChunkedLazyArtifact:
        """Open one artifact chunk-backed, without materializing.

        The fast-path entry: chunks decompress on first access (the
        restorer's foreground stages touch heads and replay shards only),
        so nothing is read here beyond the manifest.  Bypasses the LRU,
        lint, and injector hooks — each call returns a fresh reader the
        caller owns.
        """
        filename = self._lookup(gpu_name, model_name)
        manifest, _ = self._load_manifest(filename)
        return self._open_chunked(manifest, filename)

    def manifest(self, gpu_name: str, model_name: str) -> ChunkManifest:
        """The stored manifest for one <GPU, model> pair."""
        return self._load_manifest(self._lookup(gpu_name, model_name))[0]

    def cache_info(self) -> Dict[str, int]:
        """Counters for the artifact LRU and the parsed-index/manifest
        caches."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "capacity": self.cache_size,
            "index_reads": self.index_reads,
            "manifest_reads": self.manifest_reads,
        }

    def stats(self) -> Dict[str, object]:
        """Per-model chunk counts plus store-wide dedup accounting.

        ``total_bytes`` sums every manifest's chunks as if stored
        separately; ``unique_bytes`` is what the content-addressed blob
        directory actually holds; ``dedup_ratio`` is their quotient
        (1.0 = no sharing).
        """
        index = self._read_index()
        models: Dict[str, Dict[str, int]] = {}
        unique: Dict[str, int] = {}
        total_bytes = 0
        total_chunks = 0
        for key in sorted(index):
            manifest, _ = self._load_manifest(index[key])
            size = manifest.total_bytes
            models[key] = {
                "chunks": len(manifest.chunks),
                "bytes": size,
                "foreground_bytes": manifest.foreground_bytes,
            }
            total_bytes += size
            total_chunks += len(manifest.chunks)
            for ref in manifest.chunks:
                unique[ref.digest] = ref.nbytes
        unique_bytes = sum(unique.values())
        return {
            "models": models,
            "total_chunks": total_chunks,
            "unique_chunks": len(unique),
            "total_bytes": total_bytes,
            "unique_bytes": unique_bytes,
            "dedup_ratio": (total_bytes / unique_bytes
                            if unique_bytes else 1.0),
        }

    def has(self, gpu_name: str, model_name: str) -> bool:
        """Whether an artifact for the pair is indexed."""
        return self._key(gpu_name, model_name) in self._read_index()

    def list(self) -> List[Tuple[str, str]]:
        """All (gpu_name, model_name) pairs in the store."""
        pairs = []
        for key in sorted(self._read_index()):
            gpu_name, _, model_name = key.partition("::")
            pairs.append((gpu_name, model_name))
        return pairs

    def delete(self, gpu_name: str, model_name: str) -> None:
        """Remove an artifact's manifest and garbage-collect any chunk
        blobs no remaining manifest references."""
        index = self._read_index()
        filename = index.pop(self._key(gpu_name, model_name), None)
        if filename is None:
            raise ArtifactError(
                f"no materialization for <{gpu_name}, {model_name}>")
        path = self.root / filename
        if path.exists():
            path.unlink()
        self._manifest_cache.pop(filename, None)
        self._write_index(index)
        referenced = set()
        for remaining in index.values():
            try:
                manifest, _ = self._load_manifest(remaining)
            except ArtifactError:
                continue
            referenced.update(ref.digest for ref in manifest.chunks)
        if self._chunk_dir.exists():
            for blob_path in self._chunk_dir.iterdir():
                if blob_path.name not in referenced:
                    blob_path.unlink()
