"""Directory-based artifact store, keyed by <GPU type, model type> (§3).

The original artifact persists materialized graphs to the SSDs once per
model and reuses them across cold starts.  This store is that layer: a
directory of artifact JSON files plus an index, with lookups by GPU and
model name and staleness checks on the artifact format.

Two caches keep repeated cold starts on one node off the deserialization
path:

- the **parsed index** is cached against the index file's
  ``(mtime_ns, size)`` stamp, so a hundred lookups parse ``index.json``
  once (``index_reads`` counts actual parses);
- fetched artifacts land in a small in-memory **LRU keyed by the file's
  content hash** (``cache_size`` entries, 0 disables).  A hit returns the
  already-deserialized — and, with ``lint_on_load``, already-verified —
  artifact; treat it as read-only.  The cache is bypassed entirely while a
  :class:`~repro.faults.FaultInjector` is active, so chaos runs always see
  freshly corrupted copies.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.artifact import MaterializedModel
from repro.errors import ArtifactError, LintError

_INDEX_NAME = "index.json"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


class ArtifactStore:
    """Materialization artifacts for many models on one storage path."""

    def __init__(self, root, lint_on_load: bool = False, injector=None,
                 cache_size: int = 4):
        """``lint_on_load``: statically verify every artifact fetched with
        :meth:`get` (see :mod:`repro.analysis`) and raise
        :class:`~repro.errors.LintError` on error-severity diagnostics —
        the SSD copy may be corrupt, hand-edited, or version-skewed even
        when the index entry looks fine.  With the LRU enabled the check
        runs once per distinct file content (lint-once): a cache hit is by
        definition the artifact that already passed.

        ``injector``: optional :class:`repro.faults.FaultInjector`; its
        ARTIFACT_CORRUPTION faults mutate artifacts as they come off the
        store, simulating a stale/bit-rotted SSD copy whose index entry
        still looks fine.

        ``cache_size``: in-memory LRU capacity in artifacts (content-hash
        keyed); 0 disables caching entirely."""
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lint_on_load = lint_on_load
        self.injector = injector
        self.cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        self.index_reads = 0
        self._index_path = self.root / _INDEX_NAME
        self._index_cache: Optional[
            Tuple[Tuple[int, int], Dict[str, str]]] = None
        self._cache: "OrderedDict[str, MaterializedModel]" = OrderedDict()

    # -- index ------------------------------------------------------------

    def _read_index(self) -> Dict[str, str]:
        if not self._index_path.exists():
            return {}
        stat = self._index_path.stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
        if self._index_cache is not None and self._index_cache[0] == stamp:
            return dict(self._index_cache[1])
        self.index_reads += 1
        try:
            parsed = json.loads(self._index_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"artifact store index at {self._index_path} is corrupt: "
                f"{exc}") from exc
        self._index_cache = (stamp, parsed)
        return dict(parsed)

    def _write_index(self, index: Dict[str, str]) -> None:
        self._index_path.write_text(json.dumps(index, indent=2, sort_keys=True))
        stat = self._index_path.stat()
        self._index_cache = ((stat.st_mtime_ns, stat.st_size), dict(index))

    @staticmethod
    def _key(gpu_name: str, model_name: str) -> str:
        return f"{gpu_name}::{model_name}"

    # -- operations ----------------------------------------------------------

    def put(self, artifact: MaterializedModel) -> pathlib.Path:
        """Persist an artifact; returns its file path."""
        filename = f"{_slug(artifact.gpu_name)}__{_slug(artifact.model_name)}.medusa.json"
        path = self.root / filename
        artifact.save(path)
        index = self._read_index()
        index[self._key(artifact.gpu_name, artifact.model_name)] = filename
        self._write_index(index)
        return path

    def get(self, gpu_name: str, model_name: str) -> MaterializedModel:
        """Fetch one artifact (through the LRU unless an injector is live)."""
        index = self._read_index()
        filename = index.get(self._key(gpu_name, model_name))
        if filename is None:
            raise ArtifactError(
                f"no materialization for <{gpu_name}, {model_name}> in "
                f"{self.root}; run the offline phase first")
        path = self.root / filename
        caching = self.cache_size > 0 and not (
            self.injector is not None and self.injector.active)
        digest = None
        if caching:
            try:
                payload = path.read_bytes()
            except FileNotFoundError as exc:
                raise ArtifactError(
                    f"indexed artifact file {filename} is missing from "
                    f"{self.root}") from exc
            digest = hashlib.sha256(payload).hexdigest()
            cached = self._cache.get(digest)
            if cached is not None:
                self._cache.move_to_end(digest)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        artifact = MaterializedModel.load(path)
        if self.injector is not None and self.injector.active:
            artifact = self.injector.corrupted_artifact(artifact)
        if self.lint_on_load:
            from repro.analysis import lint_artifact
            report = lint_artifact(artifact)
            if report.errors:
                raise LintError(
                    f"stored artifact {filename} failed static "
                    f"verification with {len(report.errors)} error(s): "
                    f"{', '.join(report.codes())}", report=report)
        if caching:
            self._cache[digest] = artifact
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return artifact

    def cache_info(self) -> Dict[str, int]:
        """Counters for the artifact LRU and the parsed-index cache."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "capacity": self.cache_size,
            "index_reads": self.index_reads,
        }

    def has(self, gpu_name: str, model_name: str) -> bool:
        """Whether an artifact for the pair is indexed."""
        return self._key(gpu_name, model_name) in self._read_index()

    def list(self) -> List[Tuple[str, str]]:
        """All (gpu_name, model_name) pairs in the store."""
        pairs = []
        for key in sorted(self._read_index()):
            gpu_name, _, model_name = key.partition("::")
            pairs.append((gpu_name, model_name))
        return pairs

    def delete(self, gpu_name: str, model_name: str) -> None:
        """Remove an artifact and its index entry."""
        index = self._read_index()
        filename = index.pop(self._key(gpu_name, model_name), None)
        if filename is None:
            raise ArtifactError(
                f"no materialization for <{gpu_name}, {model_name}>")
        path = self.root / filename
        if path.exists():
            path.unlink()
        self._write_index(index)
