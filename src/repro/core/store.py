"""Directory-based artifact store, keyed by <GPU type, model type> (§3).

The original artifact persists materialized graphs to the SSDs once per
model and reuses them across cold starts.  This store is that layer: a
directory of artifact JSON files plus an index, with lookups by GPU and
model name and staleness checks on the artifact format.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Dict, List, Optional, Tuple

from repro.core.artifact import MaterializedModel
from repro.errors import ArtifactError, LintError

_INDEX_NAME = "index.json"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


class ArtifactStore:
    """Materialization artifacts for many models on one storage path."""

    def __init__(self, root, lint_on_load: bool = False, injector=None):
        """``lint_on_load``: statically verify every artifact fetched with
        :meth:`get` (see :mod:`repro.analysis`) and raise
        :class:`~repro.errors.LintError` on error-severity diagnostics —
        the SSD copy may be corrupt, hand-edited, or version-skewed even
        when the index entry looks fine.

        ``injector``: optional :class:`repro.faults.FaultInjector`; its
        ARTIFACT_CORRUPTION faults mutate artifacts as they come off the
        store, simulating a stale/bit-rotted SSD copy whose index entry
        still looks fine."""
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lint_on_load = lint_on_load
        self.injector = injector
        self._index_path = self.root / _INDEX_NAME

    # -- index ------------------------------------------------------------

    def _read_index(self) -> Dict[str, str]:
        if not self._index_path.exists():
            return {}
        try:
            return json.loads(self._index_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"artifact store index at {self._index_path} is corrupt: "
                f"{exc}") from exc

    def _write_index(self, index: Dict[str, str]) -> None:
        self._index_path.write_text(json.dumps(index, indent=2, sort_keys=True))

    @staticmethod
    def _key(gpu_name: str, model_name: str) -> str:
        return f"{gpu_name}::{model_name}"

    # -- operations ----------------------------------------------------------

    def put(self, artifact: MaterializedModel) -> pathlib.Path:
        """Persist an artifact; returns its file path."""
        filename = f"{_slug(artifact.gpu_name)}__{_slug(artifact.model_name)}.medusa.json"
        path = self.root / filename
        artifact.save(path)
        index = self._read_index()
        index[self._key(artifact.gpu_name, artifact.model_name)] = filename
        self._write_index(index)
        return path

    def get(self, gpu_name: str, model_name: str) -> MaterializedModel:
        index = self._read_index()
        filename = index.get(self._key(gpu_name, model_name))
        if filename is None:
            raise ArtifactError(
                f"no materialization for <{gpu_name}, {model_name}> in "
                f"{self.root}; run the offline phase first")
        artifact = MaterializedModel.load(self.root / filename)
        if self.injector is not None and self.injector.active:
            artifact = self.injector.corrupted_artifact(artifact)
        if self.lint_on_load:
            from repro.analysis import lint_artifact
            report = lint_artifact(artifact)
            if report.errors:
                raise LintError(
                    f"stored artifact {filename} failed static "
                    f"verification with {len(report.errors)} error(s): "
                    f"{', '.join(report.codes())}", report=report)
        return artifact

    def has(self, gpu_name: str, model_name: str) -> bool:
        return self._key(gpu_name, model_name) in self._read_index()

    def list(self) -> List[Tuple[str, str]]:
        """All (gpu_name, model_name) pairs in the store."""
        pairs = []
        for key in sorted(self._read_index()):
            gpu_name, _, model_name = key.partition("::")
            pairs.append((gpu_name, model_name))
        return pairs

    def delete(self, gpu_name: str, model_name: str) -> None:
        index = self._read_index()
        filename = index.pop(self._key(gpu_name, model_name), None)
        if filename is None:
            raise ArtifactError(
                f"no materialization for <{gpu_name}, {model_name}>")
        path = self.root / filename
        if path.exists():
            path.unlink()
        self._write_index(index)
