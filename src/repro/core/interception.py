"""Interceptors hooking the allocator and ``cudaLaunchKernel`` (§3, §4.1).

Medusa's offline capturing stage attaches a :class:`TraceInterceptor` to the
simulated process before the cold start begins; every allocation, free, and
kernel launch lands in one ordered :class:`repro.core.trace.Trace`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.trace import (
    AllocTraceEvent,
    EmptyCacheTraceEvent,
    FreeTraceEvent,
    LaunchTraceEvent,
    Trace,
)
from repro.simgpu.memory import Buffer
from repro.simgpu.process import CudaProcess, Interceptor
from repro.simgpu.stream import LaunchRecord


class TraceInterceptor(Interceptor):
    """Builds the offline trace from the process's hook callbacks."""

    def __init__(self):
        self.trace = Trace()
        self._seq = 0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def on_alloc(self, buffer: Buffer) -> None:
        self.trace.events.append(AllocTraceEvent(
            seq=self._next_seq(),
            alloc_index=buffer.alloc_index,
            address=buffer.address,
            size=buffer.size,
            tag=buffer.tag,
            pool=buffer.pool,
        ))

    def on_free(self, buffer: Buffer) -> None:
        # ``live`` distinguishes nothing here (pool frees keep buffers live);
        # the allocator's own event log carries the pooled flag, but the
        # interceptor sees the free *after* it happened, so consult the last
        # allocator event via the buffer's state: a pooled free leaves the
        # payload intact, a cudaFree poisons it.  We instead record pooled
        # based on buffer.live, which is False only after a cudaFree.
        self.trace.events.append(FreeTraceEvent(
            seq=self._next_seq(),
            alloc_index=buffer.alloc_index,
            address=buffer.address,
            pooled=buffer.live,
        ))

    def on_empty_cache(self) -> None:
        self.trace.events.append(EmptyCacheTraceEvent(seq=self._next_seq()))

    def on_launch(self, record: LaunchRecord) -> None:
        self.trace.events.append(LaunchTraceEvent(
            seq=self._next_seq(),
            kernel_name=record.kernel_name,
            library=record.library,
            param_sizes=tuple(p.size for p in record.params),
            param_values=tuple(p.value for p in record.params),
            launch_dims=tuple(sorted(record.launch_dims.items())),
            captured=record.captured,
        ))


def attach(process: CudaProcess) -> TraceInterceptor:
    """Hook a fresh tracer onto ``process`` (start of the offline phase)."""
    interceptor = TraceInterceptor()
    process.add_interceptor(interceptor)
    return interceptor


def detach(process: CudaProcess, interceptor: TraceInterceptor) -> Trace:
    """Unhook the tracer and hand back its completed trace."""
    process.remove_interceptor(interceptor)
    return interceptor.trace
