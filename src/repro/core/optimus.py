"""Composing Medusa with Optimus-style structure transformation (§9).

Optimus (EuroSys '24, cited as [19]) accelerates the *model structure
initialization* stage by transforming an existing model of similar
structure inside the warm container instead of instantiating from scratch.
The paper positions Medusa as orthogonal: Medusa covers KV init and
capturing, Optimus covers structure init, and the two compose.

This module implements that composition.  A warm container holds a donor
model's instantiated structure; initializing the target becomes a
*transform*: reuse the donor's per-layer buffer skeleton, adjusting only
tensor metadata — far cheaper than building the structure from scratch.
The transform must still produce the same deterministic allocation order
(Medusa's §2.5 assumption), which the restorer's prefix verification then
checks as usual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.artifact import MaterializedModel
from repro.core.online import OnlineRestorer
from repro.engine.engine import ColdStartReport, LLMEngine
from repro.engine.strategies import Strategy
from repro.errors import EngineError
from repro.models.zoo import get_model_config
from repro.simgpu.process import ExecutionMode

#: Cost of transforming one donor tensor into a target tensor (metadata
#: rewrite + in-place retag) vs. instantiating it from scratch.
TRANSFORM_PER_BUFFER = 35e-6
#: Fixed transform bookkeeping (match layers, plan the rewrite).
TRANSFORM_BASE = 0.05


@dataclass
class OptimusTransformer:
    """Structure-init accelerator: donor-based transform instead of build."""

    donor_family: str = ""

    def transform_time(self, engine: LLMEngine) -> float:
        """Simulated duration of transforming the donor into the target."""
        buffers = engine.config.weight_buffer_count()
        return TRANSFORM_BASE + TRANSFORM_PER_BUFFER * buffers

    def install(self, engine: LLMEngine) -> None:
        """Replace the engine's structure-init stage with the transform.

        The transform performs the *same allocations in the same order* —
        it reuses the donor's skeleton but the target's tensor set — so
        Medusa's deterministic-control-flow assumption (and the restorer's
        prefix verification) still hold.
        """
        original_stage = engine._stage_structure_init

        def transformed_stage() -> None:
            engine.process.clock.advance(self.transform_time(engine))
            engine.model.initialize_structure()   # identical allocations

        engine._stage_structure_init = transformed_stage
        self._original = original_stage


def medusa_plus_optimus_cold_start(
        config, artifact: MaterializedModel, seed: int = 1,
        mode: ExecutionMode = ExecutionMode.TIMING,
        cost_model=None, kv_config=None,
) -> Tuple[LLMEngine, ColdStartReport]:
    """A cold start with both materializations: structure transform
    (Optimus) + KV/graph restore (Medusa) — the §9 composition claim."""
    if isinstance(config, str):
        config = get_model_config(config)
    engine = LLMEngine(config, Strategy.MEDUSA, seed=seed, mode=mode,
                       cost_model=cost_model, kv_config=kv_config)
    OptimusTransformer(donor_family=config.family).install(engine)
    report = engine.cold_start(restorer=OnlineRestorer(artifact))
    return engine, report
