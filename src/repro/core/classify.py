"""Copy-free buffer contents classification (paper §4.3).

Of all buffers referenced by CUDA graph node pointers, only a tiny
"permanent" subset needs its *contents* materialized:

- buffers allocated **before** the capture stage began (model weights, the
  KV region, the persistent graph I/O buffers) are prepared by the normal
  loading stages and skipped;
- buffers allocated during the capture stage but **freed** afterwards
  (warm-up scratch, graph intermediates returned to the caching pool) are
  temporary: the graph's own kernels write them before reading, so their
  contents need no restoration;
- what remains is permanent: in practice the cuBLAS-style kernels' magic
  workspace buffers — two 4-byte values per such kernel (the paper measures
  9.0% of kernels needing them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.core.trace import Trace

PRE_CAPTURE = "pre_capture"
TEMPORARY = "temporary"
PERMANENT = "permanent"


@dataclass
class ContentPlan:
    """Which referenced allocations fall into which restoration class."""

    pre_capture: Set[int] = field(default_factory=set)
    temporary: Set[int] = field(default_factory=set)
    permanent: Set[int] = field(default_factory=set)

    def classify(self, alloc_index: int) -> str:
        if alloc_index in self.pre_capture:
            return PRE_CAPTURE
        if alloc_index in self.temporary:
            return TEMPORARY
        if alloc_index in self.permanent:
            return PERMANENT
        raise KeyError(f"allocation {alloc_index} was not classified")

    @property
    def num_referenced(self) -> int:
        return (len(self.pre_capture) + len(self.temporary)
                + len(self.permanent))


def classify_buffers(trace: Trace, capture_marker: int,
                     referenced: Iterable[int]) -> ContentPlan:
    """Split graph-referenced allocation indexes into the three classes.

    ``capture_marker`` is the process allocation count when the capture
    stage began (before the first warm-up forwarding).
    """
    freed = trace.freed_alloc_indices()
    plan = ContentPlan()
    for alloc_index in referenced:
        if alloc_index < capture_marker:
            plan.pre_capture.add(alloc_index)
        elif alloc_index in freed:
            plan.temporary.add(alloc_index)
        else:
            plan.permanent.add(alloc_index)
    return plan
