"""Chunk-granular, content-addressed artifact format (§7.4 fetch path).

A monolithic ``.npz`` artifact forces a cold remote fetch to pay for every
byte before ``restore_graph[0]`` can begin, and two structurally identical
artifacts (the same model on two nodes, or a fine-tune sibling) share zero
bytes on the wire.  This module splits the same arrays
:func:`repro.core.binfmt.save_binary` writes into **fixed-policy chunks**,
each addressed by the sha256 of its (deterministic) serialized bytes:

- ``kernels`` — the shared kernel-name/pool/tag string tables;
- ``replay[j]`` — the six replay-event columns, sharded every
  :data:`REPLAY_SHARD_EVENTS` rows;
- ``dumps`` — the permanent-buffer contents (§4.3), pulled out of the
  metadata so the manifest stays small;
- ``graph[b].head`` — the first ``min(first_layer_nodes, num_nodes)``
  nodes of batch ``b``'s graph table (everything ``restore_warmup``
  touches);
- ``graph[b].tail`` — the remaining nodes plus the edge list.

The *manifest* (:class:`ChunkManifest`) is the small JSON that remains:
artifact metadata plus the ordered chunk list with digests and sizes.
Identical content ⇒ identical digest ⇒ one stored blob, however many
manifests reference it — that is the whole dedup story, and it is why
:func:`pack_chunk` is a hand-rolled deterministic container instead of
``np.savez`` (zip entries embed wall-clock timestamps, which would give
identical arrays different digests).

:class:`ChunkReader` re-presents a manifest + chunk loader as the
dict-of-arrays mapping :class:`~repro.core.binfmt.LazyArtifact` reads, so
:class:`ChunkedLazyArtifact` preserves lazy/materialize semantics
byte-identically while loading only the chunks a consumer touches.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.artifact import MaterializedModel
from repro.core.binfmt import GraphTable, LazyArtifact, artifact_arrays
from repro.errors import ArtifactError

#: Version byte of the chunk container + manifest schema.
CHUNK_FORMAT_VERSION = 1

#: Replay shard granularity: one chunk per this many replay events.  ~65k
#: events (paper scale) become four shards, so a tier cache can keep the
#: hot prefix without the whole event log.
REPLAY_SHARD_EVENTS = 16384

#: Magic prefix of a packed chunk blob (before zlib).
_CHUNK_MAGIC = b"MCHK\x01"

#: The six replay-event columns sharded into ``replay[j]`` chunks.
REPLAY_MEMBERS = ("ev_kind", "ev_alloc_index", "ev_size", "ev_pooled",
                  "ev_tag", "ev_pool")

#: String-table members of the ``kernels`` chunk.
KERNEL_MEMBERS = ("kernel_names", "pools", "tags")

#: Single member of the ``dumps`` chunk: the permanent-contents mapping as
#: one JSON string (kept out of the manifest metadata).
DUMPS_MEMBER = "permanent_contents_json"

KIND_KERNELS = "kernels"
KIND_REPLAY = "replay"
KIND_DUMPS = "dumps"
KIND_GRAPH_HEAD = "graph_head"
KIND_GRAPH_TAIL = "graph_tail"


def replay_chunk_name(shard: int) -> str:
    """Canonical name of replay shard ``shard``."""
    return f"replay[{shard}]"


def graph_head_chunk_name(batch: int) -> str:
    """Canonical name of batch ``batch``'s first-layer head chunk."""
    return f"graph[{batch}].head"


def graph_tail_chunk_name(batch: int) -> str:
    """Canonical name of batch ``batch``'s tail chunk."""
    return f"graph[{batch}].tail"


# ---------------------------------------------------------------------------
# Deterministic chunk container
# ---------------------------------------------------------------------------

def pack_chunk(members: Dict[str, np.ndarray]) -> bytes:
    """Serialize ``members`` deterministically and compress with zlib.

    Layout (before compression): magic, then for each member in sorted
    name order a ``<I``-length-prefixed UTF-8 name followed by a
    ``<Q``-length-prefixed ``np.save`` payload.  Nothing in the container
    depends on when it was written, so equal arrays always produce equal
    bytes — the property content addressing needs.
    """
    raw = io.BytesIO()
    raw.write(_CHUNK_MAGIC)
    for name in sorted(members):
        payload = io.BytesIO()
        np.save(payload, members[name], allow_pickle=False)
        encoded = name.encode("utf-8")
        raw.write(struct.pack("<I", len(encoded)))
        raw.write(encoded)
        data = payload.getvalue()
        raw.write(struct.pack("<Q", len(data)))
        raw.write(data)
    return zlib.compress(raw.getvalue(), 6)


def unpack_chunk(blob: bytes) -> Dict[str, np.ndarray]:
    """Invert :func:`pack_chunk`."""
    try:
        raw = zlib.decompress(blob)
    except zlib.error as exc:
        raise ArtifactError(f"corrupt chunk blob: {exc}") from exc
    if not raw.startswith(_CHUNK_MAGIC):
        raise ArtifactError("corrupt chunk blob: bad magic")
    members: Dict[str, np.ndarray] = {}
    view = memoryview(raw)
    offset = len(_CHUNK_MAGIC)
    total = len(raw)
    while offset < total:
        (name_len,) = struct.unpack_from("<I", view, offset)
        offset += 4
        name = bytes(view[offset:offset + name_len]).decode("utf-8")
        offset += name_len
        (data_len,) = struct.unpack_from("<Q", view, offset)
        offset += 8
        members[name] = np.load(
            io.BytesIO(bytes(view[offset:offset + data_len])),
            allow_pickle=False)
        offset += data_len
    return members


def chunk_digest(blob: bytes) -> str:
    """Content address of a packed chunk blob."""
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkRef:
    """One chunk as the manifest records it."""
    name: str
    digest: str
    nbytes: int
    kind: str
    members: Tuple[str, ...]
    batch: Optional[int] = None

    def to_dict(self) -> dict:
        entry = {"name": self.name, "digest": self.digest,
                 "nbytes": self.nbytes, "kind": self.kind,
                 "members": list(self.members)}
        if self.batch is not None:
            entry["batch"] = self.batch
        return entry

    @classmethod
    def from_dict(cls, entry: dict) -> "ChunkRef":
        return cls(name=entry["name"], digest=entry["digest"],
                   nbytes=int(entry["nbytes"]), kind=entry["kind"],
                   members=tuple(entry["members"]),
                   batch=entry.get("batch"))


@dataclass(frozen=True)
class ChunkMeta:
    """What the cluster simulator needs to know about one chunk."""
    name: str
    digest: str
    nbytes: int
    foreground: bool = True


@dataclass(frozen=True)
class ChunkManifest:
    """The small JSON that replaces a monolithic artifact file.

    ``metadata`` is the :func:`~repro.core.binfmt.artifact_arrays` metadata
    dict with ``permanent_contents`` hollowed out (it lives in the
    ``dumps`` chunk); ``chunks`` is the canonical fetch order — kernels,
    replay shards, dumps, graph heads (batches descending), graph tails
    (batches descending).  Serialization sorts keys, so equal manifests
    are equal bytes and the store's content-hash LRU keeps working.
    """
    metadata: dict
    chunks: Tuple[ChunkRef, ...]

    @property
    def model_name(self) -> str:
        return self.metadata["model_name"]

    @property
    def gpu_name(self) -> str:
        return self.metadata["gpu_name"]

    @property
    def batches(self) -> List[int]:
        return [int(b) for b in self.metadata["batches"]]

    @property
    def total_bytes(self) -> int:
        """Sum of all chunk sizes (compressed, as stored)."""
        return sum(ref.nbytes for ref in self.chunks)

    @property
    def foreground_bytes(self) -> int:
        """Bytes a cold start must fetch before it can serve."""
        return sum(ref.nbytes for ref in self.foreground_chunks())

    def chunk(self, name: str) -> ChunkRef:
        for ref in self.chunks:
            if ref.name == name:
                return ref
        raise ArtifactError(f"manifest has no chunk named {name!r}")

    def chunk_index(self, name: str) -> int:
        for index, ref in enumerate(self.chunks):
            if ref.name == name:
                return index
        raise ArtifactError(f"manifest has no chunk named {name!r}")

    def foreground_chunks(self) -> Tuple[ChunkRef, ...]:
        """Chunks ``restore_graph[0]`` needs: everything except the tails
        of the non-largest batches (which stream in the background, like
        PR 4's background ``restore_graph`` stages)."""
        largest = max(self.batches) if self.batches else None
        return tuple(
            ref for ref in self.chunks
            if ref.kind != KIND_GRAPH_TAIL or ref.batch == largest)

    def background_chunks(self) -> Tuple[ChunkRef, ...]:
        """Tail chunks of the non-largest batches, batches descending."""
        largest = max(self.batches) if self.batches else None
        return tuple(
            ref for ref in self.chunks
            if ref.kind == KIND_GRAPH_TAIL and ref.batch != largest)

    def to_json(self) -> str:
        # The metadata dict is embedded pre-serialized (the same trick
        # save_binary uses for the npz metadata member): sort_keys on the
        # envelope keeps equal manifests byte-equal, while the embedded
        # string preserves the artifact's own key order — materializing
        # from a round-tripped manifest stays byte-identical.
        return json.dumps({
            "chunk_format_version": CHUNK_FORMAT_VERSION,
            "metadata": json.dumps(self.metadata),
            "chunks": [ref.to_dict() for ref in self.chunks],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChunkManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"unreadable chunk manifest: {exc}") from exc
        version = payload.get("chunk_format_version")
        if version != CHUNK_FORMAT_VERSION:
            raise ArtifactError(
                f"chunk manifest has format version {version!r} but this "
                f"code reads version {CHUNK_FORMAT_VERSION}")
        metadata = payload["metadata"]
        if isinstance(metadata, str):
            metadata = json.loads(metadata)
        return cls(metadata=metadata,
                   chunks=tuple(ChunkRef.from_dict(entry)
                                for entry in payload["chunks"]))


def simulation_chunks(manifest: ChunkManifest) -> Tuple[ChunkMeta, ...]:
    """The manifest's chunks as the duck-typed records
    :class:`repro.serverless.simulator.SimulationConfig` accepts."""
    foreground = {ref.name for ref in manifest.foreground_chunks()}
    return tuple(ChunkMeta(name=ref.name, digest=ref.digest,
                           nbytes=ref.nbytes,
                           foreground=ref.name in foreground)
                 for ref in manifest.chunks)


# ---------------------------------------------------------------------------
# Chunking policy: arrays -> (manifest, blobs)
# ---------------------------------------------------------------------------

def chunk_model(artifact: MaterializedModel,
                replay_shard_events: int = REPLAY_SHARD_EVENTS,
                ) -> Tuple[ChunkManifest, Dict[str, bytes]]:
    """Split ``artifact`` into content-addressed chunks.

    Returns the manifest plus ``digest -> packed blob`` for every chunk it
    references.  Chunks with equal content collapse to one dict entry, so
    ``len(blobs)`` can be smaller than ``len(manifest.chunks)`` even for a
    single artifact.
    """
    if replay_shard_events < 1:
        raise ArtifactError("replay_shard_events must be >= 1")
    arrays, metadata = artifact_arrays(artifact)
    refs: List[ChunkRef] = []
    blobs: Dict[str, bytes] = {}

    def emit(name: str, kind: str, members: Dict[str, np.ndarray],
             batch: Optional[int] = None) -> None:
        blob = pack_chunk(members)
        digest = chunk_digest(blob)
        blobs[digest] = blob
        refs.append(ChunkRef(name=name, digest=digest, nbytes=len(blob),
                             kind=kind, members=tuple(sorted(members)),
                             batch=batch))

    emit(KIND_KERNELS, KIND_KERNELS,
         {member: arrays[member] for member in KERNEL_MEMBERS})

    num_events = int(arrays["ev_kind"].shape[0])
    shards = max(1, -(-num_events // replay_shard_events))
    for shard in range(shards):
        lo = shard * replay_shard_events
        hi = min(num_events, lo + replay_shard_events)
        emit(replay_chunk_name(shard), KIND_REPLAY,
             {member: arrays[member][lo:hi] for member in REPLAY_MEMBERS})

    dumps_json = json.dumps(metadata["permanent_contents"], sort_keys=True)
    emit(KIND_DUMPS, KIND_DUMPS, {DUMPS_MEMBER: np.array([dumps_json])})

    batches = sorted(metadata["batches"], reverse=True)
    first_layer = int(metadata["first_layer_nodes"])
    splits = {}
    for batch in batches:
        prefix = f"g{batch}_"
        num_nodes = int(arrays[prefix + "kernel"].shape[0])
        count = min(first_layer, num_nodes)
        pstop = int(arrays[prefix + "param_offsets"][count])
        splits[batch] = (count, pstop)
        emit(graph_head_chunk_name(batch), KIND_GRAPH_HEAD, {
            prefix + "kernel": arrays[prefix + "kernel"][:count],
            prefix + "batchdim": arrays[prefix + "batchdim"][:count],
            prefix + "param_offsets":
                arrays[prefix + "param_offsets"][:count + 1],
            prefix + "param_sizes": arrays[prefix + "param_sizes"][:pstop],
            prefix + "param_kinds": arrays[prefix + "param_kinds"][:pstop],
            prefix + "param_values": arrays[prefix + "param_values"][:pstop],
            prefix + "param_byte_offsets":
                arrays[prefix + "param_byte_offsets"][:pstop],
        }, batch=batch)
    for batch in batches:
        prefix = f"g{batch}_"
        count, pstop = splits[batch]
        emit(graph_tail_chunk_name(batch), KIND_GRAPH_TAIL, {
            prefix + "kernel": arrays[prefix + "kernel"][count:],
            prefix + "batchdim": arrays[prefix + "batchdim"][count:],
            prefix + "param_offsets":
                arrays[prefix + "param_offsets"][count + 1:],
            prefix + "param_sizes": arrays[prefix + "param_sizes"][pstop:],
            prefix + "param_kinds": arrays[prefix + "param_kinds"][pstop:],
            prefix + "param_values": arrays[prefix + "param_values"][pstop:],
            prefix + "param_byte_offsets":
                arrays[prefix + "param_byte_offsets"][pstop:],
            prefix + "edges": arrays[prefix + "edges"],
        }, batch=batch)

    metadata = dict(metadata)
    metadata["permanent_contents"] = {}
    manifest = ChunkManifest(metadata=metadata, chunks=tuple(refs))
    return manifest, blobs


# ---------------------------------------------------------------------------
# Readers
# ---------------------------------------------------------------------------

def directory_loader(chunk_dir) -> Callable[[ChunkRef], bytes]:
    """A loader reading blobs from ``chunk_dir/<digest>`` files."""
    root = Path(chunk_dir)

    def load(ref: ChunkRef) -> bytes:
        path = root / ref.digest
        try:
            return path.read_bytes()
        except FileNotFoundError as exc:
            raise ArtifactError(
                f"chunk {ref.name} ({ref.digest[:12]}…) missing from "
                f"{root}") from exc
    return load


def memory_loader(blobs: Dict[str, bytes]) -> Callable[[ChunkRef], bytes]:
    """A loader serving the in-memory ``digest -> blob`` mapping
    :func:`chunk_model` returns."""
    def load(ref: ChunkRef) -> bytes:
        try:
            return blobs[ref.digest]
        except KeyError as exc:
            raise ArtifactError(
                f"chunk {ref.name} ({ref.digest[:12]}…) missing from "
                f"in-memory blob set") from exc
    return load


class ChunkReader:
    """Present manifest + loader as the member mapping ``np.load`` returns.

    ``reader[member]`` locates the chunk(s) owning ``member`` in manifest
    order, decompresses them on first touch (verifying each blob against
    its content address), and concatenates multi-chunk members — replay
    columns across shards, graph arrays across head and tail.  Only the
    chunks a member actually lives in are loaded, which is what keeps
    :meth:`ChunkedLazyArtifact.first_layer_table` from paying for tails.
    """

    def __init__(self, manifest: ChunkManifest,
                 loader: Callable[[ChunkRef], bytes]):
        self.manifest = manifest
        self._loader = loader
        self._chunks: Dict[str, Dict[str, np.ndarray]] = {}
        self._refs: Dict[str, ChunkRef] = {}
        self._sources: Dict[str, List[str]] = {}
        for ref in manifest.chunks:
            self._refs[ref.name] = ref
            for member in ref.members:
                self._sources.setdefault(member, []).append(ref.name)

    def __contains__(self, member: str) -> bool:
        return member in self._sources

    def __iter__(self) -> Iterator[str]:
        return iter(self._sources)

    def keys(self):
        return self._sources.keys()

    @property
    def loaded_chunks(self) -> frozenset:
        """Names of the chunks decompressed so far."""
        return frozenset(self._chunks)

    def _decode(self, name: str) -> Dict[str, np.ndarray]:
        ref = self._refs[name]
        blob = self._loader(ref)
        if chunk_digest(blob) != ref.digest:
            raise ArtifactError(
                f"chunk {ref.name} failed content-hash verification "
                f"(expected {ref.digest[:12]}…)")
        return unpack_chunk(blob)

    def chunk(self, name: str) -> Dict[str, np.ndarray]:
        """The decompressed member dict of one chunk (cached)."""
        members = self._chunks.get(name)
        if members is None:
            if name not in self._refs:
                raise ArtifactError(f"manifest has no chunk named {name!r}")
            members = self._decode(name)
            self._chunks[name] = members
        return members

    def prefetch(self, names: Optional[List[str]] = None,
                 workers: int = 0) -> None:
        """Decompress chunks ahead of member access.

        With ``workers > 1`` the not-yet-loaded chunks decompress on a
        :class:`~concurrent.futures.ThreadPoolExecutor` — each decode is
        independent (read + zlib + np.load), so this is the store's
        parallel read path.  Serial otherwise.
        """
        if names is None:
            names = [ref.name for ref in self.manifest.chunks]
        pending = [name for name in names if name not in self._chunks]
        if workers > 1 and len(pending) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for name, members in zip(pending,
                                         pool.map(self._decode, pending)):
                    self._chunks[name] = members
        else:
            for name in pending:
                self.chunk(name)

    def __getitem__(self, member: str) -> np.ndarray:
        sources = self._sources.get(member)
        if not sources:
            raise KeyError(member)
        parts = [self.chunk(name)[member] for name in sources]
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)


class ChunkedLazyArtifact(LazyArtifact):
    """A :class:`~repro.core.binfmt.LazyArtifact` backed by chunks.

    Every inherited accessor works unchanged — the :class:`ChunkReader`
    stands in for the npz mapping, concatenating shards and head/tail
    splits back into the exact arrays :func:`save_binary` wrote.  On top
    of that it (a) serves ``permanent_contents`` from the ``dumps`` chunk
    (the manifest metadata carries an empty placeholder) and (b) overrides
    :meth:`first_layer_table` to decompress only the head chunk, which is
    what lets a chunked load plan keep graph tails off the foreground
    fetch path.
    """

    def __init__(self, manifest: ChunkManifest,
                 loader: Callable[[ChunkRef], bytes], path="<chunks>"):
        reader = ChunkReader(manifest, loader)
        super().__init__(path, data=reader, meta=dict(manifest.metadata))
        self.chunk_manifest = manifest
        self.reader = reader
        self._dump_rows: Optional[dict] = None
        self._head_tables: Dict[int, GraphTable] = {}

    @classmethod
    def from_blobs(cls, manifest: ChunkManifest, blobs: Dict[str, bytes],
                   path="<chunks>") -> "ChunkedLazyArtifact":
        return cls(manifest, memory_loader(blobs), path=path)

    def _dumps(self) -> dict:
        if self._dump_rows is None:
            member = self.reader.chunk(KIND_DUMPS)[DUMPS_MEMBER]
            self._dump_rows = json.loads(str(member[0]))
        return self._dump_rows

    @property
    def permanent_contents(self) -> Dict[int, List[List[float]]]:
        """Alloc index -> dumped payload rows, from the dumps chunk."""
        return {int(k): v for k, v in self._dumps().items()}

    def permanent_payload(self, alloc_index: int) -> np.ndarray:
        rows = self._dumps().get(str(alloc_index))
        if rows is None:
            raise ArtifactError(
                f"no dumped contents for allocation {alloc_index}")
        return np.array(rows, dtype=np.float64)

    def first_layer_table(self, batch: int) -> GraphTable:
        """Batch ``batch``'s warmup prefix from the head chunk alone."""
        table = self._head_tables.get(batch)
        if table is None:
            if batch not in self.batches:
                raise ArtifactError(
                    f"artifact for {self.model_name} has no graph for "
                    f"batch {batch} (has: {self.batches})")
            members = self.reader.chunk(graph_head_chunk_name(batch))
            prefix = f"g{batch}_"
            meta = self._meta["graph_meta"][str(batch)]
            table = GraphTable(
                batch_size=batch,
                kernel_ids=members[prefix + "kernel"],
                kernel_names=self.kernel_name_table(),
                batch_dims=members[prefix + "batchdim"],
                param_offsets=members[prefix + "param_offsets"],
                param_sizes=members[prefix + "param_sizes"],
                param_kinds=members[prefix + "param_kinds"],
                param_values=members[prefix + "param_values"],
                param_byte_offsets=members[prefix + "param_byte_offsets"],
                edges=np.empty((0, 2), dtype=np.int64),
                param_bytes=int(meta[0]),
                num_tokens=int(meta[1]),
            )
            self._head_tables[batch] = table
        return table
