"""The materialization artifact: everything the online phase restores from.

One artifact is produced per <GPU type, model type> by the offline phase
(§3) and contains:

- the materialized KV-cache initialization (the profiled free memory, §6);
- the replayable buffer (de)allocation event sequence (§4.2);
- every CUDA graph's nodes — kernel *names* (not addresses, §5), parameter
  restoration rules (indirect index pointers / plain constants, §4.1),
  launch dims — and dependency edges;
- the dumped contents of the few *permanent* buffers (§4.3);
- the first-layer node count (for first-layer triggering, §5.2) and any
  handwritten trigger plans (§5.1).

The artifact is JSON-serializable, so it round-trips through files the way
the real system persists CUDA graph state to SSDs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ArtifactError
from repro.core.pointer_analysis import CONST, POINTER, ParamRestore

ARTIFACT_FORMAT_VERSION = 2


@dataclass
class ReplayEvent:
    """One replayable allocator event (suffix after structure init)."""

    kind: str                    # "alloc" | "free" | "empty_cache"
    alloc_index: int = -1        # alloc: its index; free: index being freed
    size: int = 0
    tag: str = ""
    pooled: bool = False         # free events: caching-pool free vs cudaFree
    pool: str = "default"        # alloc events: target memory pool


@dataclass
class MaterializedNode:
    """One CUDA graph node, with addresses abstracted away."""

    kernel_name: str
    param_sizes: List[int]
    param_restores: List[ParamRestore]
    launch_dims: Dict[str, int] = field(default_factory=dict)


@dataclass
class MaterializedGraph:
    """One captured batch size's graph."""

    batch_size: int
    nodes: List[MaterializedNode]
    edges: List[Tuple[int, int]]
    param_bytes: int
    num_tokens: int

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)


@dataclass
class TriggerPlan:
    """A handwritten triggering-kernel launch (§5.1): forces a module load."""

    kernel_name: str
    node_ref: Tuple[int, int]    # (batch_size, node_index) whose params to reuse


@dataclass
class MaterializedModel:
    """The complete offline artifact for one <GPU type, model type>."""

    model_name: str
    gpu_name: str
    format_version: int = ARTIFACT_FORMAT_VERSION
    # KV cache initialization materialization (§6).
    kv_bytes: int = 0
    kv_num_blocks: int = 0
    kv_layer_stride: int = 0
    kv_alloc_index: int = -1
    # Allocation replay (§4.2).
    structure_prefix: List[Tuple[int, str]] = field(default_factory=list)
    replay_events: List[ReplayEvent] = field(default_factory=list)
    graph_input_alloc_index: int = -1
    graph_output_alloc_index: int = -1
    capture_marker: int = -1
    # Kernel name table (§5): kernel name -> owning library.
    kernel_libraries: Dict[str, str] = field(default_factory=dict)
    # Copy-free contents restoration (§4.3): alloc index -> payload rows.
    permanent_contents: Dict[int, List[List[float]]] = field(default_factory=dict)
    # The graphs themselves.
    graphs: Dict[int, MaterializedGraph] = field(default_factory=dict)
    # First-layer triggering (§5.2): prologue + first layer node count.
    first_layer_nodes: int = 0
    trigger_plans: List[TriggerPlan] = field(default_factory=list)
    # Offline statistics carried for reports/ablations.
    stats: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def total_nodes(self) -> int:
        return sum(graph.num_nodes for graph in self.graphs.values())

    @property
    def total_replay_events(self) -> int:
        return len(self.replay_events)

    def graph(self, batch_size: int) -> MaterializedGraph:
        graph = self.graphs.get(batch_size)
        if graph is None:
            raise ArtifactError(
                f"artifact for {self.model_name} has no graph for batch "
                f"{batch_size} (has: {sorted(self.graphs)})")
        return graph

    # -- (de)serialization ------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "model_name": self.model_name,
            "gpu_name": self.gpu_name,
            "format_version": self.format_version,
            "kv_bytes": self.kv_bytes,
            "kv_num_blocks": self.kv_num_blocks,
            "kv_layer_stride": self.kv_layer_stride,
            "kv_alloc_index": self.kv_alloc_index,
            "structure_prefix": list(self.structure_prefix),
            "replay_events": [asdict(e) for e in self.replay_events],
            "graph_input_alloc_index": self.graph_input_alloc_index,
            "graph_output_alloc_index": self.graph_output_alloc_index,
            "capture_marker": self.capture_marker,
            "kernel_libraries": self.kernel_libraries,
            "permanent_contents": {
                str(k): v for k, v in self.permanent_contents.items()},
            "graphs": {
                str(batch): {
                    "batch_size": graph.batch_size,
                    "param_bytes": graph.param_bytes,
                    "num_tokens": graph.num_tokens,
                    "edges": [list(edge) for edge in graph.edges],
                    "nodes": [
                        {
                            "kernel_name": node.kernel_name,
                            "param_sizes": node.param_sizes,
                            "launch_dims": node.launch_dims,
                            "param_restores": [asdict(r)
                                               for r in node.param_restores],
                        }
                        for node in graph.nodes
                    ],
                }
                for batch, graph in self.graphs.items()
            },
            "first_layer_nodes": self.first_layer_nodes,
            "trigger_plans": [
                {"kernel_name": t.kernel_name, "node_ref": list(t.node_ref)}
                for t in self.trigger_plans],
            "stats": self.stats,
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "MaterializedModel":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"artifact is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"artifact payload is a {type(payload).__name__}, expected "
                f"an object")
        version = payload.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"artifact has format version {version!r} but this code "
                f"reads version {ARTIFACT_FORMAT_VERSION}; re-run the "
                f"offline phase to re-materialize it")
        artifact = cls(
            model_name=payload["model_name"],
            gpu_name=payload["gpu_name"],
            kv_bytes=payload["kv_bytes"],
            kv_num_blocks=payload["kv_num_blocks"],
            kv_layer_stride=payload["kv_layer_stride"],
            kv_alloc_index=payload["kv_alloc_index"],
            structure_prefix=[tuple(p) for p in payload["structure_prefix"]],
            replay_events=[ReplayEvent(**e) for e in payload["replay_events"]],
            graph_input_alloc_index=payload["graph_input_alloc_index"],
            graph_output_alloc_index=payload["graph_output_alloc_index"],
            capture_marker=payload["capture_marker"],
            kernel_libraries=payload["kernel_libraries"],
            permanent_contents={
                int(k): v for k, v in payload["permanent_contents"].items()},
            first_layer_nodes=payload["first_layer_nodes"],
            trigger_plans=[
                TriggerPlan(kernel_name=t["kernel_name"],
                            node_ref=tuple(t["node_ref"]))
                for t in payload["trigger_plans"]],
            stats=payload["stats"],
        )
        for batch_text, graph_payload in payload["graphs"].items():
            nodes = [
                MaterializedNode(
                    kernel_name=n["kernel_name"],
                    param_sizes=list(n["param_sizes"]),
                    launch_dims=dict(n["launch_dims"]),
                    param_restores=[ParamRestore(**r)
                                    for r in n["param_restores"]],
                )
                for n in graph_payload["nodes"]
            ]
            artifact.graphs[int(batch_text)] = MaterializedGraph(
                batch_size=graph_payload["batch_size"],
                nodes=nodes,
                edges=[tuple(e) for e in graph_payload["edges"]],
                param_bytes=graph_payload["param_bytes"],
                num_tokens=graph_payload["num_tokens"],
            )
        return artifact

    def save(self, path) -> int:
        """Write to ``path``; returns the byte size (ablation metric)."""
        text = self.to_json()
        with open(path, "w") as handle:
            handle.write(text)
        return len(text)

    @classmethod
    def load(cls, path) -> "MaterializedModel":
        try:
            with open(path) as handle:
                return cls.from_json(handle.read())
        except FileNotFoundError as exc:
            raise ArtifactError(f"no artifact at {path}") from exc

    # -- payload helpers ------------------------------------------------------

    def permanent_payload(self, alloc_index: int) -> np.ndarray:
        rows = self.permanent_contents.get(alloc_index)
        if rows is None:
            raise ArtifactError(
                f"no dumped contents for allocation {alloc_index}")
        return np.array(rows, dtype=np.float64)
