"""The online phase: restore instead of profile/capture (paper §3, §4.2, §5).

Plugged into :meth:`repro.engine.engine.LLMEngine.cold_start` for
``Strategy.MEDUSA``.  The restorer:

1. **KV restore (§6)** — verifies the engine's structure-init allocation
   prefix against the artifact (the deterministic-control-flow assumption,
   checked rather than assumed), replays the recorded (de)allocation
   sequence up to the KV region, and adopts the materialized block count —
   no profiling forwarding.
2. **Warm-up window (overlaps weight loading)** — finishes the allocation
   replay, restores the permanent buffer contents (§4.3), then warms up and
   captures only the *first layer* per batch size: its kernels are the
   triggering-kernels that force every hidden module to load (§5.2), plus
   any handwritten trigger plans for modules the first layer misses (§5.1).
3. **Restore tail** — resolves every materialized kernel name to this
   process's addresses (first-layer graph nodes → dlsym →
   cuModuleEnumerateFunctions), fills pointers and constants back into
   fresh graph nodes via the indirect index pointer table (§4.2), rebuilds
   the dependency edges, and instantiates ready-to-execute graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.artifact import MaterializedModel, MaterializedNode, ReplayEvent
from repro.core.pointer_analysis import CONST, POINTER
from repro.engine.capture_runner import CaptureArtifacts
from repro.engine.engine import ColdStartReport, LLMEngine
from repro.engine.kvcache import BlockManager, KVCacheConfig, KVCacheRegion
from repro.engine.strategies import Strategy
from repro.errors import RestorationError, SymbolNotFoundError
from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel
from repro.simgpu.graph import CudaGraph, CudaGraphNode, GraphExecMeta
from repro.simgpu.kernels import PAYLOAD_DIM, KernelParam
from repro.simgpu.memory import Buffer
from repro.simgpu.process import CudaProcess, ExecutionMode


class OnlineRestorer:
    """Restores one materialized model into a fresh process."""

    def __init__(self, artifact: MaterializedModel):
        self.artifact = artifact
        self._buffers: Dict[int, Buffer] = {}
        self._replay_cursor = 0
        self._name_to_address: Dict[str, int] = {}

    def stage_actions(self, engine: LLMEngine) -> Dict[str, object]:
        """The restore actions Medusa's LoadPlan binds its stages to.

        ``restore_kv`` replaces the profiling-based KV init;
        ``restore_warmup`` runs the overlappable warm-up window and
        ``restore_tail`` reports the serial tail measured by the same
        :meth:`restore_graphs` call (the tail runs immediately after the
        warm-up; the plan's dependencies place it after every branch).
        """
        clock = engine.process.clock
        measured: Dict[str, float] = {}

        def restore_kv() -> float:
            start = clock.now
            self.restore_kv(engine)
            return clock.now - start

        def restore_warmup() -> float:
            measured["warmup"], measured["tail"] = self.restore_graphs(engine)
            return measured["warmup"]

        def restore_tail() -> float:
            if "tail" not in measured:
                raise RestorationError(
                    "restore tail scheduled before the warm-up ran — the "
                    "plan must order medusa_warmup before medusa_restore")
            return measured["tail"]

        return {"restore_kv": restore_kv,
                "restore_warmup": restore_warmup,
                "restore_tail": restore_tail}

    # ------------------------------------------------------------------
    # Stage 1: materialized KV initialization (§6)
    # ------------------------------------------------------------------

    def restore_kv(self, engine: LLMEngine) -> None:
        artifact = self.artifact
        process = engine.process
        process.clock.advance(engine.cost_model.kv_restore_time)
        self._verify_structure_prefix(engine)
        consumed = self._replay_until(process,
                                      stop_alloc_index=artifact.kv_alloc_index)
        process.clock.advance(
            engine.cost_model.alloc_replay_per_event * consumed)
        kv_buffer = self._buffer(artifact.kv_alloc_index)
        kv_buffer.write(np.zeros((PAYLOAD_DIM, PAYLOAD_DIM)))
        engine.kv_bytes = artifact.kv_bytes
        engine.kv_region = KVCacheRegion(
            buffer=kv_buffer,
            num_blocks=artifact.kv_num_blocks,
            block_bytes=engine.kv_config.block_bytes(engine.config),
            layer_stride=artifact.kv_layer_stride,
        )
        engine.block_manager = BlockManager(
            artifact.kv_num_blocks, engine.kv_config.block_size_tokens)

    def _verify_structure_prefix(self, engine: LLMEngine) -> None:
        """Check the deterministic-control-flow assumption (§2.5) holds."""
        history = engine.process.allocator.history
        expected = self.artifact.structure_prefix
        if len(history) < len(expected):
            raise RestorationError(
                f"online process made {len(history)} allocations before "
                f"restore; artifact expects a {len(expected)}-allocation "
                f"structure-init prefix")
        for position, (size, tag) in enumerate(expected):
            buffer = history[position]
            if (buffer.size, buffer.tag) != (size, tag):
                raise RestorationError(
                    f"allocation {position} diverged from the offline run: "
                    f"got ({buffer.size}, {buffer.tag!r}), artifact has "
                    f"({size}, {tag!r}) — control flow is not deterministic")
            self._buffers[buffer.alloc_index] = buffer

    # ------------------------------------------------------------------
    # Stages 2+3: graph restoration (§4.2, §5)
    # ------------------------------------------------------------------

    def restore_graphs(self, engine: LLMEngine) -> Tuple[float, float]:
        """Returns (warm-up duration, serial restore duration)."""
        artifact = self.artifact
        process = engine.process
        cm = engine.cost_model
        clock = process.clock

        # -- overlappable warm-up window ---------------------------------
        warmup_start = clock.now
        consumed = self._replay_until(process, stop_alloc_index=None)
        clock.advance(cm.alloc_replay_per_event * consumed)
        self._restore_permanent_contents()
        graph_input = self._buffer(artifact.graph_input_alloc_index)
        graph_output = self._buffer(artifact.graph_output_alloc_index)
        zeros = np.zeros((PAYLOAD_DIM, PAYLOAD_DIM))
        graph_input.write(zeros)
        graph_output.write(zeros)

        batch_order = sorted(artifact.graphs, reverse=True)
        for batch_size in batch_order:
            self._launch_first_layer(engine, batch_size)
        self._run_trigger_plans(engine)
        first_layer_graph = self._capture_first_layer(engine, batch_order[0])
        warmup_duration = clock.now - warmup_start

        # -- serial restore tail --------------------------------------------
        restore_start = clock.now
        clock.advance(cm.artifact_load_base
                      + cm.artifact_deserialize_per_node * artifact.total_nodes)
        self._build_address_table(engine, first_layer_graph)
        capture_artifacts = CaptureArtifacts(
            graph_input=graph_input,
            graph_output=graph_output,
            capture_marker=artifact.capture_marker,
        )
        for batch_size in batch_order:
            materialized = artifact.graph(batch_size)
            graph = self._assemble_graph(engine, materialized)
            capture_artifacts.graphs[batch_size] = graph
            capture_artifacts.execs[batch_size] = graph.instantiate(process)
        clock.advance(cm.restore_fill_per_node * artifact.total_nodes)
        engine.capture_artifacts = capture_artifacts
        restore_duration = clock.now - restore_start
        return warmup_duration, restore_duration

    # -- allocation replay (§4.2) -----------------------------------------------

    def _replay_until(self, process: CudaProcess,
                      stop_alloc_index: Optional[int]) -> int:
        """Replay recorded events; stop after allocating ``stop_alloc_index``."""
        events = self.artifact.replay_events
        consumed = 0
        while self._replay_cursor < len(events):
            event = events[self._replay_cursor]
            self._replay_cursor += 1
            consumed += 1
            self._apply_event(process, event)
            if (stop_alloc_index is not None and event.kind == "alloc"
                    and event.alloc_index == stop_alloc_index):
                break
        return consumed

    def _apply_event(self, process: CudaProcess, event: ReplayEvent) -> None:
        if event.kind == "alloc":
            buffer = process.malloc(event.size, tag=event.tag,
                                    pool=event.pool)
            if buffer.alloc_index != event.alloc_index:
                raise RestorationError(
                    f"replay drift: allocation came back as index "
                    f"{buffer.alloc_index}, artifact expects "
                    f"{event.alloc_index}")
            self._buffers[event.alloc_index] = buffer
        elif event.kind == "free":
            buffer = self._buffer(event.alloc_index)
            if event.pooled:
                process.pool_free(buffer.address)
            else:
                process.free(buffer.address)
        elif event.kind == "empty_cache":
            process.empty_cache()
        else:
            raise RestorationError(f"unknown replay event kind {event.kind!r}")

    def _buffer(self, alloc_index: int) -> Buffer:
        buffer = self._buffers.get(alloc_index)
        if buffer is None:
            raise RestorationError(
                f"indirect index {alloc_index} points outside the replayed "
                f"allocation sequence")
        return buffer

    def _restore_permanent_contents(self) -> None:
        for alloc_index in sorted(self.artifact.permanent_contents):
            payload = self.artifact.permanent_payload(alloc_index)
            self._buffer(alloc_index).write(payload)

    # -- pointer restoration (§4.2) ------------------------------------------------

    def _restore_params(self, node: MaterializedNode) -> List[KernelParam]:
        params: List[KernelParam] = []
        for size, restore in zip(node.param_sizes, node.param_restores):
            if restore.kind == CONST:
                params.append(KernelParam(size, restore.value))
            elif restore.kind == POINTER:
                buffer = self._buffer(restore.alloc_index)
                if restore.offset >= buffer.size:
                    raise RestorationError(
                        f"offset {restore.offset} exceeds replayed buffer "
                        f"size {buffer.size} (alloc {restore.alloc_index})")
                params.append(KernelParam(size, buffer.address + restore.offset))
            else:
                raise RestorationError(
                    f"unknown param restore kind {restore.kind!r}")
        return params

    # -- triggering-kernels (§5.1, §5.2) ----------------------------------------------

    def _launch_first_layer(self, engine: LLMEngine, batch_size: int) -> None:
        """Warm up the prologue + first layer eagerly (restored params)."""
        artifact = self.artifact
        process = engine.process
        graph = artifact.graph(batch_size)
        plan = graph.nodes[:artifact.first_layer_nodes]
        for node in plan:
            spec = engine.catalog.kernel(node.kernel_name)
            process.launch(spec, self._restore_params(node),
                           launch_dims=dict(node.launch_dims),
                           preset_magic=True)
        cm = engine.cost_model
        layer_gpu = (cm.forward_gpu_time(engine.config.param_bytes, batch_size)
                     / max(1, engine.config.num_layers))
        process.clock.advance(layer_gpu + len(plan) * cm.launch_gap)

    def _run_trigger_plans(self, engine: LLMEngine) -> None:
        for plan in self.artifact.trigger_plans:
            batch_size, node_index = plan.node_ref
            node = self.artifact.graph(batch_size).nodes[node_index]
            spec = engine.catalog.kernel(plan.kernel_name)
            engine.process.launch(spec, self._restore_params(node),
                                  launch_dims=dict(node.launch_dims),
                                  preset_magic=True)
            engine.process.clock.advance(engine.cost_model.launch_gap)

    def _capture_first_layer(self, engine: LLMEngine,
                             batch_size: int) -> CudaGraph:
        """Capture the warmed-up first layer; its nodes expose addresses."""
        artifact = self.artifact
        process = engine.process
        stream = process.default_stream
        graph = artifact.graph(batch_size)
        plan = graph.nodes[:artifact.first_layer_nodes]
        stream.begin_capture(GraphExecMeta(
            param_bytes=0, num_tokens=batch_size, batch_size=batch_size))
        for node in plan:
            spec = engine.catalog.kernel(node.kernel_name)
            process.launch(spec, self._restore_params(node),
                           launch_dims=dict(node.launch_dims),
                           preset_magic=True)
        return stream.end_capture()

    # -- kernel address restoration (§5) ----------------------------------------------

    def _build_address_table(self, engine: LLMEngine,
                             first_layer_graph: CudaGraph) -> None:
        driver = engine.process.driver
        cm = engine.cost_model
        table = self._name_to_address
        # 1) First-layer graph nodes carry fresh addresses (§5.2).
        for node in first_layer_graph.nodes:
            table[driver.cu_func_get_name(node.kernel_address)] = \
                node.kernel_address
        # 2) dlsym -> cudaGetFuncBySymbol for visible kernels; 3) module
        # enumeration for the hidden remainder (their modules were loaded by
        # the triggering kernels).
        needed = sorted({node.kernel_name
                         for graph in self.artifact.graphs.values()
                         for node in graph.nodes} - set(table))
        enumerated: Dict[Tuple[str, str], Dict[str, int]] = {}
        for kernel_name in needed:
            library = self.artifact.kernel_libraries.get(kernel_name)
            if library is None:
                raise RestorationError(
                    f"artifact has no library mapping for {kernel_name}")
            try:
                symbol = driver.dlsym(library, kernel_name)
            except SymbolNotFoundError:
                address = self._enumerate_modules(engine, library,
                                                  kernel_name, enumerated)
            else:
                address = driver.cuda_get_func_by_symbol(symbol)
            table[kernel_name] = address
        total_enumerated = sum(len(v) for v in enumerated.values())
        engine.process.clock.advance(
            cm.module_enumerate_per_kernel * total_enumerated)

    def _enumerate_modules(self, engine: LLMEngine, library: str,
                           kernel_name: str, enumerated) -> int:
        """cuModuleEnumerateFunctions over loaded modules of ``library``."""
        driver = engine.process.driver
        for lib_name, module_name in driver.loaded_modules():
            if lib_name != library:
                continue
            key = (lib_name, module_name)
            if key not in enumerated:
                names: Dict[str, int] = {}
                for address in driver.cu_module_enumerate_functions(
                        lib_name, module_name):
                    names[driver.cu_func_get_name(address)] = address
                enumerated[key] = names
            address = enumerated[key].get(kernel_name)
            if address is not None:
                return address
        raise RestorationError(
            f"kernel {kernel_name} is hidden and its module was never "
            f"loaded — no triggering kernel covered it (§5)")

    # -- graph assembly -----------------------------------------------------------------

    def _assemble_graph(self, engine: LLMEngine, materialized) -> CudaGraph:
        nodes = []
        for node in materialized.nodes:
            address = self._name_to_address.get(node.kernel_name)
            if address is None:
                raise RestorationError(
                    f"no restored address for kernel {node.kernel_name}")
            nodes.append(CudaGraphNode(
                kernel_address=address,
                params=self._restore_params(node),
                launch_dims=dict(node.launch_dims),
            ))
        return CudaGraph(
            nodes=nodes,
            edges={tuple(edge) for edge in materialized.edges},
            exec_meta=GraphExecMeta(
                param_bytes=materialized.param_bytes,
                num_tokens=materialized.num_tokens,
                batch_size=materialized.batch_size,
            ),
        )


def medusa_cold_start(config, artifact: MaterializedModel, seed: int = 1,
                      mode: ExecutionMode = ExecutionMode.TIMING,
                      cost_model: Optional[CostModel] = None,
                      kv_config: Optional[KVCacheConfig] = None,
                      checkpoints=None) -> Tuple[LLMEngine, ColdStartReport]:
    """One Medusa cold start: fresh process, restore-based loading phase."""
    if isinstance(config, str):
        config = get_model_config(config)
    if artifact.model_name != config.name:
        raise RestorationError(
            f"artifact is for {artifact.model_name}, engine wants {config.name}")
    engine = LLMEngine(config, Strategy.MEDUSA, seed=seed, mode=mode,
                       cost_model=cost_model, kv_config=kv_config,
                       checkpoints=checkpoints)
    # Artifacts are keyed by <GPU type, model type> (§3): the profiled KV
    # memory and graph structure are only valid on the GPU they came from.
    if artifact.gpu_name != engine.cost_model.gpu.name:
        raise RestorationError(
            f"artifact was materialized on {artifact.gpu_name!r}, this "
            f"engine runs on {engine.cost_model.gpu.name!r} — the offline "
            f"phase is per <GPU type, model type> (§3)")
    report = engine.cold_start(restorer=OnlineRestorer(artifact))
    return engine, report


def cold_start_for(config, strategy: Strategy, artifact=None, seed: int = 0,
                   **engine_kwargs) -> Tuple[LLMEngine, ColdStartReport]:
    """One cold start under any strategy; returns ``(engine, report)``.

    The single entry point the CLI (and tooling) routes every strategy
    through: ``MEDUSA`` requires a :class:`MaterializedModel` ``artifact``
    and goes through :func:`medusa_cold_start`; every other strategy runs
    a plain :class:`LLMEngine` cold start.
    """
    if strategy is Strategy.MEDUSA:
        if artifact is None:
            raise RestorationError(
                "Strategy.MEDUSA requires a materialized artifact "
                "(run the offline phase first)")
        return medusa_cold_start(config, artifact, seed=seed,
                                 **engine_kwargs)
    engine = LLMEngine(config, strategy, seed=seed, **engine_kwargs)
    return engine, engine.cold_start()
