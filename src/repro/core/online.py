"""The online phase: restore instead of profile/capture (paper §3, §4.2, §5).

Plugged into :meth:`repro.engine.engine.LLMEngine.cold_start` for
``Strategy.MEDUSA``.  The restorer:

1. **KV restore (§6)** — verifies the engine's structure-init allocation
   prefix against the artifact (the deterministic-control-flow assumption,
   checked rather than assumed), replays the recorded (de)allocation
   sequence up to the KV region, and adopts the materialized block count —
   no profiling forwarding.
2. **Warm-up window (overlaps weight loading)** — finishes the allocation
   replay, restores the permanent buffer contents (§4.3), then warms up and
   captures only the *first layer* per batch size: its kernels are the
   triggering-kernels that force every hidden module to load (§5.2), plus
   any handwritten trigger plans for modules the first layer misses (§5.1).
3. **Restore tail** — resolves every materialized kernel name to this
   process's addresses (first-layer graph nodes → dlsym →
   cuModuleEnumerateFunctions), fills pointers and constants back into
   fresh graph nodes via the indirect index pointer table (§4.2), rebuilds
   the dependency edges, and instantiates ready-to-execute graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.artifact import MaterializedModel, MaterializedNode, ReplayEvent
from repro.core.binfmt import LazyArtifact
from repro.core.fastpath import VectorizedRestorer, resolve_kernel_addresses
from repro.core.pointer_analysis import CONST, POINTER
from repro.engine.capture_runner import (
    CaptureArtifacts,
    capture_one,
    prepare_capture_stage,
    run_capture_stage,
)
from repro.engine.engine import ColdStartReport, LLMEngine
from repro.engine.kvcache import BlockManager, KVCacheConfig, KVCacheRegion
from repro.engine.strategies import (
    Strategy,
    chunked_medusa_plan,
    pipelined_medusa_plan,
)
from repro.errors import (
    CudaError,
    MaterializationError,
    RestorationError,
    TriggerTimeoutError,
)
from repro.faults.ladder import (
    DEGRADE_EAGER,
    DEGRADE_KV_PROFILE,
    DEGRADE_PARTIAL,
    DEGRADE_RECAPTURE,
    RESTORE_VERIFY,
    DegradationPolicy,
    DegradationReport,
    LadderStep,
    Rung,
)
from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel
from repro.simgpu.graph import CudaGraph, CudaGraphNode, GraphExecMeta
from repro.simgpu.kernels import PAYLOAD_DIM, KernelParam
from repro.simgpu.memory import Buffer
from repro.simgpu.process import CudaProcess, ExecutionMode

#: What the degradation ladder may catch and recover from: Medusa-level
#: restore failures and realistic driver/runtime errors.  Engine-level
#: errors (mis-wired plans, exhausted KV budgets) still propagate.
_LADDER_ERRORS = (MaterializationError, CudaError)


class OnlineRestorer:
    """Restores one materialized model into a fresh process.

    ``injector``: optional :class:`repro.faults.FaultInjector` whose faults
    fire at this restorer's injection sites (chaos testing).
    ``policy``: optional :class:`repro.faults.DegradationPolicy`.  When set,
    restore failures walk the degradation ladder (partial → recapture →
    eager) instead of killing the cold start; when ``None`` (the default)
    every failure propagates exactly as before.
    """

    #: Action names :meth:`stage_actions` registers (identical for the
    #: strict and ladder variants).  The static plan verifier
    #: (`repro.analysis.planlint`) resolves PLN004 bindings against this.
    STAGE_ACTION_NAMES = ("restore_kv", "restore_warmup", "restore_tail")

    def __init__(self, artifact: MaterializedModel,
                 injector=None,
                 policy: Optional[DegradationPolicy] = None):
        active = injector is not None and injector.active
        if active:
            injector.prepare(artifact)
            artifact = injector.corrupted_artifact(artifact)
        self.artifact = artifact
        self.injector = injector if active else None
        self.policy = policy
        self.degradation = DegradationReport()
        self._verify_dumps = policy is not None and (
            policy.verify_dumps if policy.verify_dumps is not None
            else active)
        self._verify_outputs = policy is not None and (
            policy.verify_outputs if policy.verify_outputs is not None
            else active)
        self._buffers: Dict[int, Buffer] = {}
        self._replay_allocated: List[Buffer] = []
        self._replay_cursor = 0
        self._name_to_address: Dict[str, int] = {}
        self._kv_broken = False
        self._warmup_ok = False
        self._warm: Optional[Tuple[Buffer, Buffer, CudaGraph]] = None

    def stage_actions(self, engine: LLMEngine) -> Dict[str, object]:
        """The restore actions Medusa's LoadPlan binds its stages to.

        ``restore_kv`` replaces the profiling-based KV init;
        ``restore_warmup`` runs the overlappable warm-up window and
        ``restore_tail`` reports the serial tail measured by the same
        :meth:`restore_graphs` call (the tail runs immediately after the
        warm-up; the plan's dependencies place it after every branch).

        With a :class:`DegradationPolicy`, each action additionally catches
        restore faults and records ladder steps; the tail action finishes by
        resolving the ladder (drop / recapture / eager capture) so the
        engine always leaves the cold start able to serve.
        """
        if self.policy is None:
            return self._strict_stage_actions(engine)
        return self._ladder_stage_actions(engine)

    def _strict_stage_actions(self, engine: LLMEngine) -> Dict[str, object]:
        clock = engine.process.clock
        measured: Dict[str, float] = {}

        def restore_kv() -> float:
            start = clock.now
            self.restore_kv(engine)
            return clock.now - start

        def restore_warmup() -> float:
            measured["warmup"], measured["tail"] = self.restore_graphs(engine)
            return measured["warmup"]

        def restore_tail() -> float:
            if "tail" not in measured:
                raise RestorationError(
                    "restore tail scheduled before the warm-up ran — the "
                    "plan must order medusa_warmup before medusa_restore")
            return measured["tail"]

        return {"restore_kv": restore_kv,
                "restore_warmup": restore_warmup,
                "restore_tail": restore_tail}

    # ------------------------------------------------------------------
    # Ladder-aware stage actions (policy set)
    # ------------------------------------------------------------------

    def _ladder_stage_actions(self, engine: LLMEngine) -> Dict[str, object]:
        clock = engine.process.clock

        def restore_kv() -> float:
            start = clock.now
            try:
                self.restore_kv(engine)
            except _LADDER_ERRORS as exc:
                base = clock.now - start
                self.degradation.note_failure("kv_restore", exc)
                self._kv_broken = True
                fallback_start = clock.now
                # The aborted replay leaked whatever it had allocated so
                # far (possibly the near-full KV region): release it and
                # collapse the allocator's high-water mark, or the
                # re-profiling below sees a peak it cannot size under.
                self._rollback_replay(engine.process)
                engine.adopt_kv_bytes(engine.profile_available_kv_bytes())
                self.degradation.record(LadderStep(
                    rung=Rung.EAGER, stage=DEGRADE_KV_PROFILE,
                    reason="allocation replay broke before the KV region; "
                           "re-profiled KV sizing eagerly",
                    duration=clock.now - fallback_start))
                return base
            return clock.now - start

        def restore_warmup() -> float:
            if self._kv_broken:
                return 0.0
            start = clock.now
            try:
                self._warm = self._run_warmup(engine)
                self._warmup_ok = True
            except _LADDER_ERRORS as exc:
                self.degradation.note_failure("warmup", exc)
                stream = engine.process.default_stream
                if stream.is_capturing:
                    stream.end_capture()   # abandon the half-built capture
            return clock.now - start

        def restore_tail() -> float:
            start = clock.now
            artifacts: Optional[CaptureArtifacts] = None
            poisoned: set = set()
            if self._warmup_ok:
                try:
                    artifacts, poisoned = self._run_tail_tolerant(
                        engine, self._warm)
                except _LADDER_ERRORS as exc:
                    self.degradation.note_failure("restore_tail", exc)
                    artifacts, poisoned = None, set(self.artifact.graphs)
            base = clock.now - start
            poisoned |= self._verify_restored(engine, artifacts)
            self._resolve_ladder(engine, artifacts, poisoned)
            return base

        return {"restore_kv": restore_kv,
                "restore_warmup": restore_warmup,
                "restore_tail": restore_tail}

    # ------------------------------------------------------------------
    # Stage 1: materialized KV initialization (§6)
    # ------------------------------------------------------------------

    def restore_kv(self, engine: LLMEngine) -> None:
        artifact = self.artifact
        process = engine.process
        process.clock.advance(engine.cost_model.kv_restore_time)
        self._verify_structure_prefix(engine)
        consumed = self._replay_until(process,
                                      stop_alloc_index=artifact.kv_alloc_index)
        process.clock.advance(
            engine.cost_model.alloc_replay_per_event * consumed)
        kv_buffer = self._buffer(artifact.kv_alloc_index)
        kv_buffer.write(np.zeros((PAYLOAD_DIM, PAYLOAD_DIM)))
        engine.kv_bytes = artifact.kv_bytes
        engine.kv_region = KVCacheRegion(
            buffer=kv_buffer,
            num_blocks=artifact.kv_num_blocks,
            block_bytes=engine.kv_config.block_bytes(engine.config),
            layer_stride=artifact.kv_layer_stride,
        )
        engine.block_manager = BlockManager(
            artifact.kv_num_blocks, engine.kv_config.block_size_tokens)

    def _verify_structure_prefix(self, engine: LLMEngine) -> None:
        """Check the deterministic-control-flow assumption (§2.5) holds."""
        history = engine.process.allocator.history
        expected = self.artifact.structure_prefix
        if len(history) < len(expected):
            raise RestorationError(
                f"online process made {len(history)} allocations before "
                f"restore; artifact expects a {len(expected)}-allocation "
                f"structure-init prefix")
        for position, (size, tag) in enumerate(expected):
            buffer = history[position]
            if (buffer.size, buffer.tag) != (size, tag):
                raise RestorationError(
                    f"allocation {position} diverged from the offline run: "
                    f"got ({buffer.size}, {buffer.tag!r}), artifact has "
                    f"({size}, {tag!r}) — control flow is not deterministic")
            self._buffers[buffer.alloc_index] = buffer

    # ------------------------------------------------------------------
    # Stages 2+3: graph restoration (§4.2, §5)
    # ------------------------------------------------------------------

    def restore_graphs(self, engine: LLMEngine) -> Tuple[float, float]:
        """Returns (warm-up duration, serial restore duration)."""
        clock = engine.process.clock
        warmup_start = clock.now
        warm = self._run_warmup(engine)
        warmup_duration = clock.now - warmup_start
        restore_start = clock.now
        self._run_tail_strict(engine, warm)
        restore_duration = clock.now - restore_start
        return warmup_duration, restore_duration

    def _run_warmup(self, engine: LLMEngine
                    ) -> Tuple[Buffer, Buffer, CudaGraph]:
        """The overlappable warm-up window: finish the allocation replay,
        restore permanent contents, warm up + capture the first layer."""
        artifact = self.artifact
        process = engine.process
        cm = engine.cost_model
        clock = process.clock
        consumed = self._replay_until(process, stop_alloc_index=None)
        clock.advance(cm.alloc_replay_per_event * consumed)
        self._restore_permanent_contents()
        graph_input = self._buffer(artifact.graph_input_alloc_index)
        graph_output = self._buffer(artifact.graph_output_alloc_index)
        zeros = np.zeros((PAYLOAD_DIM, PAYLOAD_DIM))
        graph_input.write(zeros)
        graph_output.write(zeros)

        batch_order = sorted(artifact.graphs, reverse=True)
        for batch_size in batch_order:
            self._launch_first_layer(engine, batch_size)
        self._run_trigger_plans(engine)
        first_layer_graph = self._capture_first_layer(engine, batch_order[0])
        return graph_input, graph_output, first_layer_graph

    def _run_tail_strict(self, engine: LLMEngine, warm) -> None:
        """The serial restore tail: address table, fill, instantiate."""
        artifact = self.artifact
        process = engine.process
        cm = engine.cost_model
        clock = process.clock
        graph_input, graph_output, first_layer_graph = warm
        clock.advance(cm.artifact_load_base
                      + cm.artifact_deserialize_per_node * artifact.total_nodes)
        self._build_address_table(engine, first_layer_graph)
        capture_artifacts = CaptureArtifacts(
            graph_input=graph_input,
            graph_output=graph_output,
            capture_marker=artifact.capture_marker,
        )
        for batch_size in sorted(artifact.graphs, reverse=True):
            materialized = artifact.graph(batch_size)
            graph = self._assemble_graph(engine, materialized)
            capture_artifacts.graphs[batch_size] = graph
            capture_artifacts.execs[batch_size] = graph.instantiate(process)
        clock.advance(cm.restore_fill_per_node * artifact.total_nodes)
        engine.capture_artifacts = capture_artifacts

    def _run_tail_tolerant(self, engine: LLMEngine, warm
                           ) -> Tuple[CaptureArtifacts, set]:
        """The restore tail, per-graph fault isolation (ladder mode).

        Unresolvable kernels and per-graph assembly failures poison only
        the batch sizes they touch; every other graph restores normally.
        Returns ``(capture_artifacts, poisoned batch sizes)``.
        """
        artifact = self.artifact
        process = engine.process
        cm = engine.cost_model
        clock = process.clock
        graph_input, graph_output, first_layer_graph = warm
        clock.advance(cm.artifact_load_base
                      + cm.artifact_deserialize_per_node * artifact.total_nodes)
        unresolved = self._build_address_table(engine, first_layer_graph,
                                               tolerate=True)
        if unresolved:
            self.degradation.note_failure(
                "address_table",
                RestorationError(f"unresolved kernel address(es): "
                                 f"{sorted(unresolved)}"))
        capture_artifacts = CaptureArtifacts(
            graph_input=graph_input,
            graph_output=graph_output,
            capture_marker=artifact.capture_marker,
        )
        poisoned: set = set()
        for batch_size in sorted(artifact.graphs, reverse=True):
            materialized = artifact.graph(batch_size)
            if unresolved & {n.kernel_name for n in materialized.nodes}:
                poisoned.add(batch_size)
                continue
            try:
                graph = self._assemble_graph(engine, materialized)
                capture_artifacts.graphs[batch_size] = graph
                capture_artifacts.execs[batch_size] = \
                    graph.instantiate(process)
            except _LADDER_ERRORS as exc:
                self.degradation.note_failure(
                    f"assemble batch {batch_size}", exc)
                capture_artifacts.graphs.pop(batch_size, None)
                capture_artifacts.execs.pop(batch_size, None)
                poisoned.add(batch_size)
        clock.advance(cm.restore_fill_per_node * artifact.total_nodes)
        engine.capture_artifacts = capture_artifacts
        return capture_artifacts, poisoned

    # -- ladder resolution (policy set) ------------------------------------------

    def _verify_restored(self, engine: LLMEngine,
                         artifacts: Optional[CaptureArtifacts]) -> set:
        """Output-oracle verification of every restored graph (§4).

        Replays each restored graph against an eager forwarding over
        identical inputs and KV state; mismatching batch sizes are poisoned
        and dropped.  COMPUTE mode only (the oracle is a real forwarding);
        recorded as its own ``restore_verify`` timeline stage.
        """
        if (not self._verify_outputs
                or engine.process.mode is not ExecutionMode.COMPUTE
                or artifacts is None or not artifacts.execs
                or engine.kv_region is None):
            return set()
        clock = engine.process.clock
        start = clock.now
        ctx = artifacts.context(engine.kv_region)
        bad: set = set()
        batches = sorted(artifacts.execs)
        # Settle one-time eager-path state (workspace setup) first, so the
        # reference forwarding and the replay see identical process state.
        ctx.input_buffer.write(_verify_input(batches[0]))
        engine.model.forward(batches[0], batches[0], ctx)
        for batch_size in batches:
            ctx.input_buffer.write(_verify_input(batch_size))
            engine.reset_kv_state()
            snapshot = engine.process.snapshot_payloads()
            engine.model.forward(batch_size, batch_size, ctx)
            expected = ctx.output_buffer.read().copy()
            engine.process.restore_payloads(snapshot)
            artifacts.execs[batch_size].replay()
            if not np.array_equal(ctx.output_buffer.read(), expected):
                bad.add(batch_size)
        for batch_size in bad:
            artifacts.graphs.pop(batch_size, None)
            artifacts.execs.pop(batch_size, None)
            self.degradation.note_failure(
                f"verify batch {batch_size}",
                RestorationError("restored graph output diverged from the "
                                 "eager oracle"))
        self.degradation.record(LadderStep(
            rung=Rung.FULL, stage=RESTORE_VERIFY,
            reason=f"output verification over batches {batches}",
            batches=tuple(sorted(bad)),
            duration=clock.now - start))
        return bad

    def _resolve_ladder(self, engine: LLMEngine,
                        artifacts: Optional[CaptureArtifacts],
                        poisoned: set) -> None:
        """Walk the ladder until the engine can serve every batch size."""
        policy = self.policy
        clock = engine.process.clock
        all_batches = set(self.artifact.graphs)
        if self._kv_broken:
            # No trustworthy replay at all: vanilla eager capture on the
            # re-profiled KV region (the bottom rung).
            start = clock.now
            engine.capture_artifacts = run_capture_stage(
                engine.process, engine.model, engine.kv_region)
            self.degradation.record(LadderStep(
                rung=Rung.EAGER, stage=DEGRADE_EAGER,
                reason="replay broken before the KV region; captured all "
                       "graphs eagerly",
                batches=tuple(sorted(all_batches)),
                duration=clock.now - start))
            return
        if self._warmup_ok and artifacts is not None and not poisoned:
            return   # full restore — stay on the top rung
        survivors = set(artifacts.execs) if artifacts is not None else set()
        missing = sorted(all_batches - survivors)
        if survivors and policy.allow_partial:
            self.degradation.record(LadderStep(
                rung=Rung.PARTIAL, stage=DEGRADE_PARTIAL,
                reason="dropped poisoned graphs; their batch sizes serve "
                       "through padding to a surviving graph",
                batches=tuple(missing)))
            return
        if policy.allow_recapture:
            start = clock.now
            if artifacts is None:
                artifacts = prepare_capture_stage(engine.process,
                                                  engine.model)
                engine.capture_artifacts = artifacts
            for batch_size in sorted(missing, reverse=True):
                capture_one(engine.process, engine.model, artifacts,
                            engine.kv_region, batch_size)
            self.degradation.record(LadderStep(
                rung=Rung.RECAPTURE, stage=DEGRADE_RECAPTURE,
                reason="re-captured poisoned graphs live (restored KV "
                       "region kept)",
                batches=tuple(missing),
                duration=clock.now - start))
            return
        start = clock.now
        engine.capture_artifacts = run_capture_stage(
            engine.process, engine.model, engine.kv_region)
        self.degradation.record(LadderStep(
            rung=Rung.EAGER, stage=DEGRADE_EAGER,
            reason="degradation policy forbids partial/recapture; captured "
                   "all graphs eagerly",
            batches=tuple(sorted(all_batches)),
            duration=clock.now - start))

    # -- allocation replay (§4.2) -----------------------------------------------

    def _rollback_replay(self, process: CudaProcess) -> None:
        """Undo an aborted allocation replay before degrading to profiling.

        Frees every buffer the replay allocated that is still live, flushes
        the caching allocator's free lists, and resets the peak watermark —
        the fallback ``profile_available_kv_bytes`` sizes against
        ``peak_bytes``, which must reflect the post-rollback state, not the
        replay's leak.  Structure-init allocations predate the replay and
        stay untouched.
        """
        allocator = process.allocator
        for buffer in reversed(self._replay_allocated):
            if allocator.is_live(buffer.address):
                process.free(buffer.address)
        process.empty_cache()
        allocator.reset_peak()
        self._replay_allocated.clear()

    def _replay_until(self, process: CudaProcess,
                      stop_alloc_index: Optional[int]) -> int:
        """Replay recorded events; stop after allocating ``stop_alloc_index``."""
        events = self.artifact.replay_events
        consumed = 0
        while self._replay_cursor < len(events):
            position = self._replay_cursor
            event = events[position]
            self._replay_cursor += 1
            consumed += 1
            self._apply_event(process, event, position)
            if (stop_alloc_index is not None and event.kind == "alloc"
                    and event.alloc_index == stop_alloc_index):
                break
        return consumed

    def _apply_event(self, process: CudaProcess, event: ReplayEvent,
                     position: int = 0) -> None:
        if self.injector is not None:
            # May raise OutOfMemoryError (REPLAY_OOM) or return a diverged
            # event (REPLAY_DIVERGENCE) — both surface as replay faults.
            event = self.injector.on_replay_event(position, event)
        if event.kind == "alloc":
            buffer = process.malloc(event.size, tag=event.tag,
                                    pool=event.pool)
            self._replay_allocated.append(buffer)
            if buffer.alloc_index != event.alloc_index:
                raise RestorationError(
                    f"replay drift: allocation came back as index "
                    f"{buffer.alloc_index}, artifact expects "
                    f"{event.alloc_index}")
            self._buffers[event.alloc_index] = buffer
        elif event.kind == "free":
            buffer = self._buffer(event.alloc_index)
            if event.pooled:
                process.pool_free(buffer.address)
            else:
                process.free(buffer.address)
        elif event.kind == "empty_cache":
            process.empty_cache()
        else:
            raise RestorationError(f"unknown replay event kind {event.kind!r}")

    def _buffer(self, alloc_index: int) -> Buffer:
        buffer = self._buffers.get(alloc_index)
        if buffer is None:
            raise RestorationError(
                f"indirect index {alloc_index} points outside the replayed "
                f"allocation sequence")
        return buffer

    def _restore_permanent_contents(self) -> None:
        for alloc_index in sorted(self.artifact.permanent_contents):
            payload = self.artifact.permanent_payload(alloc_index)
            if self.injector is not None:
                payload = self.injector.permanent_payload(alloc_index,
                                                          payload)
            buffer = self._buffer(alloc_index)
            buffer.write(payload)
            if self._verify_dumps:
                expected = self.artifact.permanent_payload(alloc_index)
                if not np.array_equal(buffer.read(), expected):
                    raise RestorationError(
                        f"permanent dump readback mismatch at alloc "
                        f"{alloc_index} — the stored dump is corrupt (§4.3)")

    # -- pointer restoration (§4.2) ------------------------------------------------

    def _restore_params(self, node: MaterializedNode) -> List[KernelParam]:
        params: List[KernelParam] = []
        for size, restore in zip(node.param_sizes, node.param_restores):
            if restore.kind == CONST:
                params.append(KernelParam(size, restore.value))
            elif restore.kind == POINTER:
                buffer = self._buffer(restore.alloc_index)
                if restore.offset >= buffer.size:
                    raise RestorationError(
                        f"offset {restore.offset} exceeds replayed buffer "
                        f"size {buffer.size} (alloc {restore.alloc_index})")
                params.append(KernelParam(size, buffer.address + restore.offset))
            else:
                raise RestorationError(
                    f"unknown param restore kind {restore.kind!r}")
        return params

    # -- triggering-kernels (§5.1, §5.2) ----------------------------------------------

    def _check_trigger(self, engine: LLMEngine, kernel_name: str) -> None:
        """Watchdog on a triggering-kernel launch (fault-injection site).

        A wedged trigger launch charges its full watchdog budget to the
        clock and raises, instead of hanging the warm-up window forever.
        """
        if self.injector is None \
                or not self.injector.trigger_times_out(kernel_name):
            return
        budget = engine.cost_model.trigger_timeout_seconds
        engine.process.clock.advance(budget)
        raise TriggerTimeoutError(
            f"triggering kernel {kernel_name} exceeded its {budget}s "
            f"watchdog budget during warm-up")

    def _launch_first_layer(self, engine: LLMEngine, batch_size: int) -> None:
        """Warm up the prologue + first layer eagerly (restored params)."""
        artifact = self.artifact
        process = engine.process
        graph = artifact.graph(batch_size)
        plan = graph.nodes[:artifact.first_layer_nodes]
        for node in plan:
            self._check_trigger(engine, node.kernel_name)
            spec = engine.catalog.kernel(node.kernel_name)
            process.launch(spec, self._restore_params(node),
                           launch_dims=dict(node.launch_dims),
                           preset_magic=True)
        cm = engine.cost_model
        layer_gpu = (cm.forward_gpu_time(engine.config.param_bytes, batch_size)
                     / max(1, engine.config.num_layers))
        process.clock.advance(layer_gpu + len(plan) * cm.launch_gap)

    def _run_trigger_plans(self, engine: LLMEngine) -> None:
        for plan in self.artifact.trigger_plans:
            self._check_trigger(engine, plan.kernel_name)
            batch_size, node_index = plan.node_ref
            node = self.artifact.graph(batch_size).nodes[node_index]
            spec = engine.catalog.kernel(plan.kernel_name)
            engine.process.launch(spec, self._restore_params(node),
                                  launch_dims=dict(node.launch_dims),
                                  preset_magic=True)
            engine.process.clock.advance(engine.cost_model.launch_gap)

    def _capture_first_layer(self, engine: LLMEngine,
                             batch_size: int) -> CudaGraph:
        """Capture the warmed-up first layer; its nodes expose addresses."""
        artifact = self.artifact
        process = engine.process
        stream = process.default_stream
        graph = artifact.graph(batch_size)
        plan = graph.nodes[:artifact.first_layer_nodes]
        stream.begin_capture(GraphExecMeta(
            param_bytes=0, num_tokens=batch_size, batch_size=batch_size))
        for node in plan:
            spec = engine.catalog.kernel(node.kernel_name)
            process.launch(spec, self._restore_params(node),
                           launch_dims=dict(node.launch_dims),
                           preset_magic=True)
        return stream.end_capture()

    # -- kernel address restoration (§5) ----------------------------------------------

    def _build_address_table(self, engine: LLMEngine,
                             first_layer_graph: CudaGraph,
                             tolerate: bool = False) -> set:
        """Resolve materialized kernel names to this process's addresses.

        With ``tolerate=True`` (ladder mode) unresolvable kernels are
        collected and returned instead of raising, so the caller can poison
        only the graphs that reference them.  Returns the unresolved set
        (always empty in strict mode).  The resolution itself lives in
        :func:`repro.core.fastpath.resolve_kernel_addresses`, shared with
        the vectorized restorer.
        """
        needed = {node.kernel_name
                  for graph in self.artifact.graphs.values()
                  for node in graph.nodes}
        return resolve_kernel_addresses(
            engine, first_layer_graph, needed,
            self.artifact.kernel_libraries, self._name_to_address,
            tolerate=tolerate)

    # -- graph assembly -----------------------------------------------------------------

    def _assemble_graph(self, engine: LLMEngine, materialized) -> CudaGraph:
        nodes = []
        for node in materialized.nodes:
            address = self._name_to_address.get(node.kernel_name)
            if address is None:
                raise RestorationError(
                    f"no restored address for kernel {node.kernel_name}")
            nodes.append(CudaGraphNode(
                kernel_address=address,
                params=self._restore_params(node),
                launch_dims=dict(node.launch_dims),
            ))
        return CudaGraph(
            nodes=nodes,
            edges={tuple(edge) for edge in materialized.edges},
            exec_meta=GraphExecMeta(
                param_bytes=materialized.param_bytes,
                num_tokens=materialized.num_tokens,
                batch_size=materialized.batch_size,
            ),
        )


def _verify_input(batch_size: int) -> np.ndarray:
    """Deterministic oracle input for restore-time output verification."""
    base = np.arange(PAYLOAD_DIM, dtype=np.float64)
    grid = np.outer(base + batch_size, np.ones(PAYLOAD_DIM))
    return grid / PAYLOAD_DIM


def prepare_medusa_cold_start(config, artifact, seed: int = 1,
                              mode: ExecutionMode = ExecutionMode.TIMING,
                              cost_model: Optional[CostModel] = None,
                              kv_config: Optional[KVCacheConfig] = None,
                              checkpoints=None, injector=None,
                              policy: Optional[DegradationPolicy] = None,
                              fast: Optional[bool] = None):
    """Build the (engine, restorer) pair for one Medusa cold start.

    The path-selection logic in one place: ``artifact`` may be an eager
    :class:`MaterializedModel` or a :class:`repro.core.binfmt.LazyArtifact`.
    ``fast=None`` (the default) auto-routes — a lazy artifact with no
    :class:`~repro.faults.FaultInjector` and no
    :class:`~repro.faults.DegradationPolicy` gets the pipelined
    :class:`~repro.core.fastpath.VectorizedRestorer`
    (``pipelined_medusa_plan`` over its batch sizes); anything needing
    per-event hooks falls back to the object-path
    :class:`OnlineRestorer` (materializing the lazy artifact first).
    ``fast=False`` forces the object path — the comparison baseline
    ``benchmarks/bench_wallclock.py`` measures; ``fast=True`` with an eager
    artifact raises, since the vectorized path reads the packed arrays.

    Exposed separately from :func:`medusa_cold_start` so callers (the
    wall-clock bench) can wrap the restorer before running
    ``engine.cold_start(restorer=...)``.
    """
    if isinstance(config, str):
        config = get_model_config(config)
    if artifact.model_name != config.name:
        raise RestorationError(
            f"artifact is for {artifact.model_name}, engine wants {config.name}")
    lazy = isinstance(artifact, LazyArtifact)
    hooks = (injector is not None and injector.active) or policy is not None
    if fast is None:
        fast = lazy and not hooks
    if fast and not lazy:
        raise RestorationError(
            "fast=True needs a binary artifact opened with "
            "repro.core.binfmt.LazyArtifact (save it with save_binary "
            "first)")
    if fast and hooks:
        # The vectorized path has no per-event injection/ladder hooks;
        # defer to the object path whenever they are requested.
        fast = False
    if lazy and not fast:
        artifact = artifact.materialize()
    plan = None
    if fast:
        manifest = getattr(artifact, "chunk_manifest", None)
        if manifest is not None:
            # Chunk-backed lazy artifact: stream fetches per chunk, with
            # only the first graph's chunks in the foreground.
            plan = chunked_medusa_plan(manifest)
        else:
            plan = pipelined_medusa_plan(artifact.batches)
    engine = LLMEngine(config, Strategy.MEDUSA, seed=seed, mode=mode,
                       cost_model=cost_model, kv_config=kv_config,
                       checkpoints=checkpoints, plan=plan, injector=injector)
    # Artifacts are keyed by <GPU type, model type> (§3): the profiled KV
    # memory and graph structure are only valid on the GPU they came from.
    if artifact.gpu_name != engine.cost_model.gpu.name:
        raise RestorationError(
            f"artifact was materialized on {artifact.gpu_name!r}, this "
            f"engine runs on {engine.cost_model.gpu.name!r} — the offline "
            f"phase is per <GPU type, model type> (§3)")
    if fast:
        restorer: object = VectorizedRestorer(artifact)
    else:
        restorer = OnlineRestorer(artifact, injector=injector, policy=policy)
    return engine, restorer


def medusa_cold_start(config, artifact, seed: int = 1,
                      mode: ExecutionMode = ExecutionMode.TIMING,
                      cost_model: Optional[CostModel] = None,
                      kv_config: Optional[KVCacheConfig] = None,
                      checkpoints=None, injector=None,
                      policy: Optional[DegradationPolicy] = None,
                      fast: Optional[bool] = None
                      ) -> Tuple[LLMEngine, ColdStartReport]:
    """One Medusa cold start: fresh process, restore-based loading phase.

    ``injector`` threads a :class:`repro.faults.FaultInjector` through the
    process/driver and the restorer; ``policy`` opts the restorer into the
    graceful-degradation ladder (see :mod:`repro.faults.ladder`).
    ``artifact`` may be eager or a :class:`~repro.core.binfmt.LazyArtifact`;
    ``fast`` selects the restoration path (see
    :func:`prepare_medusa_cold_start` for the auto-routing rules).
    """
    engine, restorer = prepare_medusa_cold_start(
        config, artifact, seed=seed, mode=mode, cost_model=cost_model,
        kv_config=kv_config, checkpoints=checkpoints, injector=injector,
        policy=policy, fast=fast)
    report = engine.cold_start(restorer=restorer)
    return engine, report


def cold_start_for(config, strategy: Strategy, artifact=None, seed: int = 0,
                   **engine_kwargs) -> Tuple[LLMEngine, ColdStartReport]:
    """One cold start under any strategy; returns ``(engine, report)``.

    The single entry point the CLI (and tooling) routes every strategy
    through: ``MEDUSA`` requires a :class:`MaterializedModel` ``artifact``
    and goes through :func:`medusa_cold_start`; every other strategy runs
    a plain :class:`LLMEngine` cold start.
    """
    if strategy is Strategy.MEDUSA:
        if artifact is None:
            raise RestorationError(
                "Strategy.MEDUSA requires a materialized artifact "
                "(run the offline phase first)")
        return medusa_cold_start(config, artifact, seed=seed,
                                 **engine_kwargs)
    engine = LLMEngine(config, strategy, seed=seed, **engine_kwargs)
    return engine, engine.cold_start()
