"""Output validation of restored CUDA graphs (paper §4).

The pointer-likeness heuristic can misclassify (rare address-shaped
constants), so Medusa "runs a model forwarding and compares the outputs of
the original and speculative versions of CUDA graphs".  We validate the
strongest version of that claim: a *fresh process* performs a full online
restore (new heap base, new ASLR layout), and the restored graph's replay
output is compared bit-for-bit against an eager forwarding in that same
process over identical inputs and KV state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.artifact import MaterializedModel
from repro.core.online import medusa_cold_start
from repro.errors import ValidationError
from repro.simgpu.kernels import PAYLOAD_DIM
from repro.simgpu.process import ExecutionMode


@dataclass
class ValidationReport:
    model: str
    batches_checked: List[int] = field(default_factory=list)
    max_abs_error: float = 0.0
    # Static-analysis findings (repro.analysis) that accompanied this run,
    # so runtime validation and lint results travel through one structure
    # (rendered via repro.reporting.tables.format_diagnostics).
    diagnostics: List = field(default_factory=list)
    # DegradationReport when the restore walked the ladder (see
    # repro.faults.ladder); None on a strict validation run.
    degradation: Optional[object] = None
    # The ColdStartReport from the restore this validation exercised, so
    # callers (``repro validate``) can print the per-stage schedule.
    cold_report: Optional[object] = None

    @property
    def passed(self) -> bool:
        return bool(self.batches_checked)

    @property
    def degraded(self) -> bool:
        return self.degradation is not None \
            and getattr(self.degradation, "degraded", False)


def make_input_ids(seed: int = 0) -> np.ndarray:
    """A deterministic token-id payload for validation forwardings."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, PAYLOAD_DIM,
                        size=(PAYLOAD_DIM, PAYLOAD_DIM)).astype(float)


def validate_restoration(config, artifact: MaterializedModel,
                         batches: Optional[Sequence[int]] = None,
                         seed: int = 77, cost_model=None,
                         kv_config=None,
                         static_lint: bool = True,
                         injector=None,
                         policy=None) -> ValidationReport:
    """Restore in a fresh process and compare replay vs eager outputs.

    ``static_lint``: run the zero-execution artifact verifier first; its
    diagnostics land on the report, and error-severity findings abort
    before the restore touches the artifact (a corrupt artifact should
    fail fast, not fault mid-replay).

    ``policy``: a :class:`repro.faults.DegradationPolicy`.  When set, lint
    errors no longer abort (the ladder is expected to survive them), the
    restore runs in degradation-ladder mode, and only the batch sizes the
    engine actually serves with a graph are output-checked; the ladder's
    :class:`DegradationReport` lands on ``report.degradation``.
    ``injector`` threads a :class:`repro.faults.FaultInjector` through
    (chaos testing).

    ``artifact`` may be a :class:`repro.core.binfmt.LazyArtifact`; the
    restore then runs on the vectorized fast path (unless hooks force the
    object path), and static lint checks a materialized copy.
    """
    report = ValidationReport(model=artifact.model_name)
    degraded_ok = policy is not None
    if static_lint:
        from repro.analysis import lint_artifact
        from repro.core.binfmt import LazyArtifact
        lint_target = artifact.materialize() \
            if isinstance(artifact, LazyArtifact) else artifact
        lint = lint_artifact(lint_target)
        report.diagnostics = list(lint.diagnostics)
        if lint.errors and not degraded_ok:
            raise ValidationError(
                f"{artifact.model_name}: static verification found "
                f"{len(lint.errors)} error(s) ({', '.join(lint.codes())}); "
                f"refusing to restore a corrupt artifact")
        # Plan-lint prepass (PLN0xx): verify the load plan this restore
        # will execute, with PLN004 bindings resolved against the action
        # registries the restore would actually bind.  Mirrors the path
        # selection in repro.core.online.prepare_medusa_cold_start.
        from repro.analysis.planlint import lint_plan
        from repro.engine.engine import ENGINE_STAGE_ACTIONS
        from repro.engine.strategies import (
            Strategy,
            pipelined_medusa_plan,
            plan_for,
        )
        hooks = (injector is not None and injector.active) \
            or policy is not None
        if isinstance(artifact, LazyArtifact) and not hooks:
            from repro.core.fastpath import VectorizedRestorer
            plan = pipelined_medusa_plan(artifact.batches)
            known = ENGINE_STAGE_ACTIONS \
                + VectorizedRestorer(artifact).stage_action_names()
        else:
            from repro.core.online import OnlineRestorer
            plan = plan_for(Strategy.MEDUSA)
            known = ENGINE_STAGE_ACTIONS + OnlineRestorer.STAGE_ACTION_NAMES
        plan_lint = lint_plan(plan, known_actions=known,
                              cost_model=cost_model)
        report.diagnostics.extend(plan_lint.diagnostics)
        if plan_lint.errors and not degraded_ok:
            raise ValidationError(
                f"{artifact.model_name}: load plan {plan.name!r} failed "
                f"static verification "
                f"({', '.join(d.code for d in plan_lint.errors)}); "
                f"refusing to execute an unsafe plan")
    engine, cold = medusa_cold_start(
        config, artifact, seed=seed, mode=ExecutionMode.COMPUTE,
        cost_model=cost_model, kv_config=kv_config,
        injector=injector, policy=policy)
    report.degradation = getattr(cold, "degradation", None)
    report.cold_report = cold
    check_batches = list(batches) if batches is not None else \
        [min(artifact.graphs)]
    if degraded_ok:
        available = set(engine.capture_artifacts.execs) \
            if engine.capture_artifacts is not None else set()
        kept = [b for b in check_batches if b in available]
        check_batches = kept or sorted(available)[:1]
        if not check_batches:
            raise ValidationError(
                f"{artifact.model_name}: degraded restore left no "
                f"executable graphs to validate")
    ctx = engine.serving_context()
    # Settle one-time eager-path state (cuBLAS-style workspace setup) before
    # the first snapshot, so snapshot/restore cycles preserve it.
    ctx.input_buffer.write(make_input_ids(seed=seed))
    engine.model.forward(min(check_batches), min(check_batches), ctx)
    for batch_size in check_batches:
        ctx.input_buffer.write(make_input_ids(seed=batch_size))
        # Eager reference under a frozen state snapshot...
        engine.reset_kv_state()
        snapshot = engine.process.snapshot_payloads()
        engine.model.forward(batch_size, batch_size, ctx)
        expected = ctx.output_buffer.read().copy()
        # ...then the restored graph's replay from the same state.
        engine.process.restore_payloads(snapshot)
        engine.capture_artifacts.execs[batch_size].replay()
        actual = ctx.output_buffer.read()
        error = float(np.max(np.abs(actual - expected)))
        report.max_abs_error = max(report.max_abs_error, error)
        if not np.array_equal(actual, expected):
            raise ValidationError(
                f"{artifact.model_name} batch {batch_size}: restored graph "
                f"output diverges from eager forwarding "
                f"(max abs error {error:.3e}) — speculative pointer "
                f"classification is wrong somewhere")
        report.batches_checked.append(batch_size)
    return report
