"""Medusa: state materialization for serverless LLM cold starts.

The paper's contribution.  The *offline phase* (:mod:`repro.core.offline`)
runs one intercepted cold start per <GPU type, model type>, capturing the
CUDA graphs, the buffer (de)allocation sequence, the kernel-launch trace,
and the profiled KV memory; the *analysis stage* turns raw node parameters
into indirect index pointers (§4.1), classifies buffer contents for
copy-free restoration (§4.3), and materializes kernel names (§5).  The
*online phase* (:mod:`repro.core.online`) replays the allocation sequence,
fills pointers and kernel addresses back into the nodes — using first-layer
triggering-kernels for hidden cuBLAS symbols — and hands the engine
ready-to-execute graphs plus the materialized KV size (§6), skipping both
the profiling forwarding and 34/35ths of the capture work.
"""

from repro.core.artifact import MaterializedModel
from repro.core.binfmt import LazyArtifact, load_binary, save_binary
from repro.core.fastpath import VectorizedRestorer
from repro.core.offline import OfflinePhase, OfflineReport, run_offline
from repro.core.online import (OnlineRestorer, cold_start_for,
                               medusa_cold_start,
                               prepare_medusa_cold_start)
from repro.core.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "LazyArtifact",
    "MaterializedModel",
    "OfflinePhase",
    "OfflineReport",
    "OnlineRestorer",
    "VectorizedRestorer",
    "cold_start_for",
    "load_binary",
    "medusa_cold_start",
    "prepare_medusa_cold_start",
    "run_offline",
    "save_binary",
]
