"""Alternative cold-start mitigations the paper compares against (§2.4, §9).

- :class:`CheckpointRestoreBaseline` — the checkpoint/restore line of work
  (FaaSnap, Catalyzer, SEUSS, ...): persist the complete state of a launched
  instance and restore it wholesale.  Restoring works, but the checkpoint
  carries the full device image (weights + KV region + graph pool + host
  state), so it is orders of magnitude heavier than Medusa's artifact,
  which materializes only the CUDA graphs and the KV-init value (§9: Medusa
  "is more lightweight and could be combined with these previous works").
- Hot spares and deferred capture are modeled in
  :mod:`repro.serverless.simulator` (``hot_spares``/``deferred_capture``)
  and :class:`repro.engine.strategies.Strategy.DEFERRED` respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.artifact import MaterializedModel
from repro.models.config import ModelConfig
from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel

#: Rough serialized size of one CUDA graph node inside a device snapshot.
_NODE_STATE_BYTES = 256
#: Host-side process image (python heap, runtime, tokenizer, ...).
_HOST_IMAGE_BYTES = int(1.5 * 1024**3)


@dataclass
class CheckpointRestoreBaseline:
    """Analytic model of a full-instance checkpoint/restore cold start."""

    config: ModelConfig
    cost_model: CostModel = field(default_factory=CostModel)
    restore_fixup_time: float = 0.25    # page-table/driver reattachment

    def __post_init__(self) -> None:
        if isinstance(self.config, str):
            self.config = get_model_config(self.config)

    def checkpoint_bytes(self, kv_bytes: int) -> int:
        """Size of the full snapshot: device image + host image."""
        graph_state = self.config.total_graph_nodes * _NODE_STATE_BYTES
        return (self.config.param_bytes + kv_bytes + graph_state
                + _HOST_IMAGE_BYTES)

    def restore_time(self, kv_bytes: int) -> float:
        """Cold start latency: stream the snapshot back + fix up handles."""
        return (self.checkpoint_bytes(kv_bytes)
                / self.cost_model.gpu.h2d_bandwidth
                + self.restore_fixup_time)

    def compare_with_artifact(self, artifact: MaterializedModel) -> dict:
        """Storage/latency comparison against a Medusa artifact (§9)."""
        kv_bytes = artifact.kv_bytes
        artifact_bytes = len(artifact.to_json())
        checkpoint = self.checkpoint_bytes(kv_bytes)
        return {
            "checkpoint_bytes": checkpoint,
            "artifact_bytes": artifact_bytes,
            "size_ratio": checkpoint / max(1, artifact_bytes),
            "checkpoint_restore_time": self.restore_time(kv_bytes),
        }
