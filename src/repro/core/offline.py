"""The offline phase: capturing stage + analysis stage (paper §3, Fig. 5).

Runs once per <GPU type, model type>:

- **Capturing stage** — a full vanilla cold start with the allocator and
  ``cudaLaunchKernel`` intercepted (§4.1), producing the CUDA graphs, the
  global event trace, and the profiled KV memory; each graph's nodes are
  then inspected and dumped (kernel names via ``cuFuncGetName``).
- **Analysis stage** — indirect index pointer analysis with trace-based
  backward matching, buffer contents classification, kernel name table and
  trigger-plan construction; everything lands in one
  :class:`repro.core.artifact.MaterializedModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.artifact import (
    MaterializedGraph,
    MaterializedModel,
    MaterializedNode,
    ReplayEvent,
    TriggerPlan,
)
from repro.core.classify import classify_buffers
from repro.core.interception import attach, detach
from repro.core.pointer_analysis import (
    POINTER,
    AllocationIndex,
    AnalysisStats,
    analyze_graph_params,
)
from repro.core.trace import (
    AllocTraceEvent,
    EmptyCacheTraceEvent,
    FreeTraceEvent,
    LaunchTraceEvent,
    Trace,
)
from repro.engine.engine import LLMEngine
from repro.engine.kvcache import KVCacheConfig
from repro.engine.strategies import Strategy
from repro.errors import MaterializationError
from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel
from repro.simgpu.process import ExecutionMode


@dataclass
class OfflineReport:
    """Figure 9's quantities: per-stage offline overhead."""

    model: str
    capture_stage_time: float
    analysis_time: float
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.capture_stage_time + self.analysis_time


class OfflinePhase:
    """Materializes one model on one (simulated) GPU type."""

    def __init__(self, config, seed: int = 5000,
                 mode: ExecutionMode = ExecutionMode.TIMING,
                 cost_model: Optional[CostModel] = None,
                 kv_config: Optional[KVCacheConfig] = None,
                 naive_pointer_matching: bool = False,
                 batch_subset: Optional[Tuple[int, ...]] = None,
                 lint: bool = True):
        """``batch_subset``: materialize only these batch sizes (must be a
        subset of the config's capture list).  Fewer sizes cut the offline
        time and artifact size at the cost of coarser padding when serving
        (uncovered batch sizes replay the next larger graph).

        ``lint``: statically verify the finished artifact (zero GPU-time;
        see :mod:`repro.analysis`) and refuse to emit one that carries
        error-severity diagnostics.  Off only for ablations that *want*
        broken artifacts (e.g. naive pointer matching)."""
        if isinstance(config, str):
            config = get_model_config(config)
        if batch_subset is not None:
            missing = set(batch_subset) - set(config.capture_batch_sizes)
            if missing:
                raise MaterializationError(
                    f"batch subset {sorted(missing)} outside the capture "
                    f"list of {config.name}")
        self.batch_subset = tuple(sorted(batch_subset)) \
            if batch_subset is not None else None
        self.config = config
        self.seed = seed
        self.mode = mode
        self.cost_model = cost_model or CostModel()
        self.kv_config = kv_config or KVCacheConfig()
        self.naive_pointer_matching = naive_pointer_matching
        self.lint = lint
        self.engine: Optional[LLMEngine] = None

    # ------------------------------------------------------------------

    def run(self) -> Tuple[MaterializedModel, OfflineReport]:
        engine, trace, capture_stage_time = self._capturing_stage()
        artifact, analysis_time, stats = self._analysis_stage(engine, trace)
        if self.lint:
            stats["lint_diagnostics"] = float(
                self._lint_artifact(engine, artifact))
        report = OfflineReport(
            model=self.config.name,
            capture_stage_time=capture_stage_time,
            analysis_time=analysis_time,
            stats=stats,
        )
        artifact.stats.update(stats)
        return artifact, report

    def _lint_artifact(self, engine: LLMEngine,
                       artifact: MaterializedModel) -> int:
        """Lint-on-materialize: never emit an artifact that cannot restore."""
        from repro.analysis import lint_artifact
        from repro.errors import LintError
        report = lint_artifact(artifact, catalog=engine.catalog)
        if report.errors:
            raise LintError(
                f"materialized artifact for {self.config.name} failed "
                f"static verification with {len(report.errors)} error(s): "
                f"{', '.join(report.codes())}", report=report)
        return len(report.diagnostics)

    # -- capturing stage ------------------------------------------------------

    def _capturing_stage(self) -> Tuple[LLMEngine, Trace, float]:
        engine = LLMEngine(self.config, Strategy.VLLM, seed=self.seed,
                           mode=self.mode, cost_model=self.cost_model,
                           kv_config=self.kv_config,
                           capture_batch_sizes=self.batch_subset)
        self._guard_supported_kernels(engine)
        self.engine = engine
        interceptor = attach(engine.process)
        engine.cold_start()
        trace = detach(engine.process, interceptor)
        total_nodes = sum(g.num_nodes
                          for g in engine.capture_artifacts.graphs.values())
        engine.process.clock.advance(
            self.cost_model.graph_dump_per_node * total_nodes)
        capture_stage_time = (self.cost_model.runtime_init_time
                              + engine.process.clock.now)
        return engine, trace, capture_stage_time

    @staticmethod
    def _guard_supported_kernels(engine: LLMEngine) -> None:
        """Refuse parameter shapes outside Medusa's current scope (§8).

        Device-side allocations and indirect pointers (pointers to arrays
        of pointers) are explicitly unsupported in the paper; it found none
        across 139,364 nodes, and neither do our catalogs — but a custom
        kernel could introduce them, so fail loudly before capturing rather
        than mis-restore later.
        """
        for library in engine.catalog.libraries():
            for spec in library.iter_kernels():
                for slot in spec.params:
                    if slot.role.startswith("indirect"):
                        raise MaterializationError(
                            f"kernel {spec.name} takes an indirect pointer "
                            f"parameter ({slot.role!r}); materializing "
                            f"pointers to pointer arrays is future work (§8)")

    # -- analysis stage ----------------------------------------------------------

    def _analysis_stage(self, engine: LLMEngine,
                        trace: Trace) -> Tuple[MaterializedModel, float, Dict]:
        config = self.config
        process = engine.process
        driver = process.driver
        catalog = engine.catalog
        capture_artifacts = engine.capture_artifacts
        index = AllocationIndex(trace)

        artifact = MaterializedModel(
            model_name=config.name,
            gpu_name=self.cost_model.gpu.name,
            kv_bytes=engine.kv_bytes,
            kv_num_blocks=engine.kv_region.num_blocks,
            kv_layer_stride=engine.kv_region.layer_stride,
            capture_marker=capture_artifacts.capture_marker,
        )

        # Allocation bookkeeping: structure prefix + replay suffix (§4.2).
        weight_count = config.weight_buffer_count()
        allocations = trace.allocations()
        if len(allocations) < weight_count:
            raise MaterializationError(
                f"trace has {len(allocations)} allocations, expected at "
                f"least {weight_count} structure-init weight buffers")
        prefix = allocations[:weight_count]
        if any(event.tag != "weight" for event in prefix):
            raise MaterializationError(
                "structure-init prefix contains non-weight allocations; "
                "the deterministic-control-flow assumption is violated")
        artifact.structure_prefix = [(e.size, e.tag) for e in prefix]
        boundary_seq = prefix[-1].seq
        artifact.replay_events = _replay_events(trace, boundary_seq)

        for event in allocations:
            if event.tag == "kv":
                artifact.kv_alloc_index = event.alloc_index
            elif event.tag == "graph_input":
                artifact.graph_input_alloc_index = event.alloc_index
            elif event.tag == "graph_output":
                artifact.graph_output_alloc_index = event.alloc_index
        if artifact.kv_alloc_index < 0:
            raise MaterializationError("trace contains no KV region allocation")

        # Per-graph pointer analysis, in the order capture ran.
        captured = trace.captured_launches()
        cursor = 0
        referenced: Set[int] = set()
        totals = AnalysisStats()
        batch_order = sorted(capture_artifacts.graphs, reverse=True)
        for batch_size in batch_order:
            graph = capture_artifacts.graphs[batch_size]
            node_launches = captured[cursor:cursor + graph.num_nodes]
            cursor += graph.num_nodes
            if len(node_launches) != graph.num_nodes:
                raise MaterializationError(
                    f"captured-launch trace is short for batch {batch_size}")
            restores, stats = analyze_graph_params(
                index, node_launches, naive=self.naive_pointer_matching)
            totals.pointer_params += stats.pointer_params
            totals.const_params += stats.const_params
            totals.interior_pointers += stats.interior_pointers
            totals.demoted_false_positives += stats.demoted_false_positives
            nodes: List[MaterializedNode] = []
            for node, launch, node_restores in zip(graph.nodes, node_launches,
                                                   restores):
                kernel_name = driver.cu_func_get_name(node.kernel_address)
                if kernel_name != launch.kernel_name:
                    raise MaterializationError(
                        f"node/launch mismatch: {kernel_name} vs "
                        f"{launch.kernel_name}")
                artifact.kernel_libraries.setdefault(
                    kernel_name, catalog.kernel(kernel_name).library)
                for restore in node_restores:
                    if restore.kind == POINTER:
                        referenced.add(restore.alloc_index)
                nodes.append(MaterializedNode(
                    kernel_name=kernel_name,
                    param_sizes=list(node.param_sizes()),
                    param_restores=node_restores,
                    launch_dims=dict(node.launch_dims),
                ))
            artifact.graphs[batch_size] = MaterializedGraph(
                batch_size=batch_size,
                nodes=nodes,
                edges=sorted(graph.edges),
                param_bytes=graph.exec_meta.param_bytes,
                num_tokens=graph.exec_meta.num_tokens,
            )
        if cursor != len(captured):
            raise MaterializationError(
                f"{len(captured) - cursor} captured launches were not "
                f"attributed to any graph")

        # Copy-free contents classification (§4.3).
        plan = classify_buffers(trace, capture_artifacts.capture_marker,
                                referenced)
        permanent_bytes = 0
        for alloc_index in sorted(plan.permanent):
            buffer = process.allocator.buffer_by_alloc_index(alloc_index)
            payload = buffer.payload
            if payload is None:
                raise MaterializationError(
                    f"permanent buffer {alloc_index} has no contents to dump")
            artifact.permanent_contents[alloc_index] = payload.tolist()
            permanent_bytes += buffer.size

        # First-layer triggering plus handwritten fallbacks (§5).
        template = config.kernel_template()
        artifact.first_layer_nodes = 1 + len(template.layer_kernels)
        artifact.trigger_plans = _trigger_plans(artifact, catalog)

        analysis_time = (self.cost_model.analysis_per_node
                         * artifact.total_nodes
                         + self.cost_model.artifact_write_base)

        magic_kernels = sum(
            1 for graph in artifact.graphs.values() for node in graph.nodes
            if any(r.alloc_index in plan.permanent
                   for r in node.param_restores if r.kind == POINTER))
        stats = {
            "total_nodes": float(artifact.total_nodes),
            "pointer_params": float(totals.pointer_params),
            "const_params": float(totals.const_params),
            "interior_pointers": float(totals.interior_pointers),
            "demoted_false_positives": float(totals.demoted_false_positives),
            "pre_capture_buffers": float(len(plan.pre_capture)),
            "temporary_buffers": float(len(plan.temporary)),
            "permanent_buffers": float(len(plan.permanent)),
            "permanent_bytes": float(permanent_bytes),
            "permanent_kernel_fraction": (
                magic_kernels / artifact.total_nodes
                if artifact.total_nodes else 0.0),
            "replay_events": float(artifact.total_replay_events),
        }
        return artifact, analysis_time, stats


def _replay_events(trace: Trace, boundary_seq: int) -> List[ReplayEvent]:
    events: List[ReplayEvent] = []
    for event in trace.events:
        if event.seq <= boundary_seq:
            continue
        if isinstance(event, AllocTraceEvent):
            events.append(ReplayEvent("alloc", alloc_index=event.alloc_index,
                                      size=event.size, tag=event.tag,
                                      pool=event.pool))
        elif isinstance(event, FreeTraceEvent):
            events.append(ReplayEvent("free", alloc_index=event.alloc_index,
                                      pooled=event.pooled))
        elif isinstance(event, EmptyCacheTraceEvent):
            events.append(ReplayEvent("empty_cache"))
    return events


def _trigger_plans(artifact: MaterializedModel, catalog) -> List[TriggerPlan]:
    """Handwritten triggering kernels for modules first-layer misses (§5.1).

    A module is already covered if a first-layer kernel lives in it (the
    first-layer warm-up loads it) or if any of its needed kernels is visible
    (the dlsym path loads it).  Whatever remains needs an explicit trigger:
    we reuse one captured node's parameters to launch a representative
    kernel of the module eagerly.
    """
    needed: Dict[Tuple[str, str], Tuple[str, int, int]] = {}
    covered: Set[Tuple[str, str]] = set()
    for batch_size, graph in artifact.graphs.items():
        for node_index, node in enumerate(graph.nodes):
            spec = catalog.kernel(node.kernel_name)
            module_key = (spec.library, spec.module)
            if node_index < artifact.first_layer_nodes or not spec.hidden:
                covered.add(module_key)
            needed.setdefault(module_key,
                              (node.kernel_name, batch_size, node_index))
    plans: List[TriggerPlan] = []
    for module_key, (kernel_name, batch_size, node_index) in sorted(
            needed.items()):
        if module_key in covered:
            continue
        plans.append(TriggerPlan(kernel_name=kernel_name,
                                 node_ref=(batch_size, node_index)))
    return plans


def run_offline(config, **kwargs) -> Tuple[MaterializedModel, OfflineReport]:
    """Convenience wrapper: materialize ``config`` with default settings."""
    return OfflinePhase(config, **kwargs).run()
