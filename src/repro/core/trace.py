"""Offline capture-stage traces: the raw material of Medusa's analysis.

The trace is one globally ordered stream of allocation, free, empty-cache,
and kernel-launch events, exactly what interposing on the allocator and on
``cudaLaunchKernel`` yields (§4.1).  Sequence numbers give the "backwards
from its corresponding cudaLaunchKernel()" ordering the trace-based matching
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class AllocTraceEvent:
    seq: int
    alloc_index: int      # global allocation index in the process
    address: int
    size: int
    tag: str
    pool: str = "default"


@dataclass(frozen=True)
class FreeTraceEvent:
    seq: int
    alloc_index: int      # allocation being freed
    address: int
    pooled: bool


@dataclass(frozen=True)
class EmptyCacheTraceEvent:
    seq: int


@dataclass(frozen=True)
class LaunchTraceEvent:
    seq: int
    kernel_name: str
    library: str
    param_sizes: Tuple[int, ...]
    param_values: Tuple[int, ...]
    launch_dims: Tuple[Tuple[str, int], ...]
    captured: bool        # recorded into a CUDA graph (vs eager warm-up)


@dataclass
class Trace:
    """The full intercepted event stream of one offline capture stage."""

    events: List[object] = field(default_factory=list)

    def allocations(self) -> List[AllocTraceEvent]:
        return [e for e in self.events if isinstance(e, AllocTraceEvent)]

    def frees(self) -> List[FreeTraceEvent]:
        return [e for e in self.events if isinstance(e, FreeTraceEvent)]

    def launches(self) -> List[LaunchTraceEvent]:
        return [e for e in self.events if isinstance(e, LaunchTraceEvent)]

    def captured_launches(self) -> List[LaunchTraceEvent]:
        return [e for e in self.launches() if e.captured]

    def freed_alloc_indices(self) -> Dict[int, int]:
        """alloc_index -> seq of its free event (pool or cudaFree)."""
        return {e.alloc_index: e.seq for e in self.frees()}

    @property
    def num_events(self) -> int:
        return len(self.events)
