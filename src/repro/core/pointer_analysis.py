"""Indirect index pointer analysis (paper §4).

Kernel parameters inside a raw CUDA graph node are just (size, value) pairs.
This module turns every 8-byte, heap-prefixed value into an *indirect index
pointer* — (allocation index, offset within that allocation) — by matching
it against the intercepted allocation sequence, **backwards from the
parameter's own cudaLaunchKernel event** (trace-based matching, §4.1).
Backward matching is what defeats the Figure 6 false positive: when an
address was returned by several allocations (LIFO pool reuse), the kernel
always used the most recent one still live at launch time, i.e. the first
match scanning backwards.

Two extra concerns from the paper are handled here:

- *interior pointers*: a parameter may point inside a buffer (the per-layer
  KV pointers do); matches accept any allocation whose range contains the
  address, and the offset is preserved ("within the range of the allocated
  buffer", §4.1);
- *false-positive pointer-like constants*: an 8-byte constant can
  accidentally carry a heap-prefixed value.  Instances of the same kernel
  recur across layers and batch sizes with identical parameter layouts, so a
  positional majority vote demotes the rare pointer-like instance of a
  mostly-constant position back to a constant; output validation (§4,
  :mod:`repro.core.validation`) remains the final guard.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PointerAnalysisError
from repro.core.trace import AllocTraceEvent, LaunchTraceEvent, Trace

#: Values at or above this look like device-heap pointers.  The simulated
#: heap lives at 0x7F00_0000_0000+, libraries at 0x5500_0000_0000+; plain
#: integer constants are far below.
POINTER_PREFIX = 0x5000_0000_0000

#: Give up interval-walking after this many bases (junk queries only).
_MAX_WALK = 4096

CONST = "const"
POINTER = "ptr"


@dataclass(frozen=True)
class ParamRestore:
    """Materialized restoration rule for one node parameter."""

    kind: str                     # CONST or POINTER
    value: int = 0                # CONST: the plain value to restore
    alloc_index: int = -1         # POINTER: index in the allocation sequence
    offset: int = 0               # POINTER: byte offset inside that buffer

    @staticmethod
    def const(value: int) -> "ParamRestore":
        return ParamRestore(kind=CONST, value=value)

    @staticmethod
    def pointer(alloc_index: int, offset: int) -> "ParamRestore":
        return ParamRestore(kind=POINTER, alloc_index=alloc_index, offset=offset)


def is_pointer_like(size: int, value: int) -> bool:
    """The paper's heuristic: 8 bytes long with a high address prefix."""
    return size == 8 and value >= POINTER_PREFIX


class AllocationIndex:
    """Search structure over the intercepted allocation sequence.

    Built for two query shapes: *exact* (the parameter equals a returned
    address — the overwhelming majority) and *interior* (the parameter lands
    inside a buffer, e.g. per-layer KV pointers).  At any instant live
    allocations never overlap, so "the most recent allocation before the
    launch containing the address" is exactly "the allocation live at launch
    time containing the address" — unique, which lets both paths stop at the
    first liveness-checked hit.
    """

    def __init__(self, trace: Trace):
        # address -> [(seq, alloc_index, size, free_seq, end)] ascending by
        # seq; ``end`` = base + size, precomputed once so the lookup loops
        # compare against a stored bound instead of re-deriving it per entry.
        self._by_address: Dict[
            int, List[Tuple[int, int, int, float, int]]] = {}
        freed = trace.freed_alloc_indices()
        for event in trace.allocations():
            free_seq = freed.get(event.alloc_index, float("inf"))
            self._by_address.setdefault(event.address, []).append(
                (event.seq, event.alloc_index, event.size, free_seq,
                 event.address + event.size))
        self._bases = sorted(self._by_address)
        # prefix_reach[i] = max end address over bases[0..i] — a monotone
        # bound that tells the interior walk when no further base can cover
        # the queried address.
        self._prefix_reach: List[int] = []
        reach = 0
        for base in self._bases:
            end = max(entry[4] for entry in self._by_address[base])
            reach = max(reach, end)
            self._prefix_reach.append(reach)

    # -- trace-based backward matching (§4.1) -------------------------------

    def backward_match(self, address: int,
                       before_seq: int) -> Optional[Tuple[int, int]]:
        """The most recent allocation before ``before_seq`` containing
        ``address``; returns (alloc_index, offset) or None."""
        # Exact fast path: newest allocation of this very address that was
        # live at launch time.
        entries = self._by_address.get(address)
        if entries is not None:
            for seq, alloc_index, _size, free_seq, _end in reversed(entries):
                if seq < before_seq and free_seq >= before_seq:
                    return alloc_index, 0
        # Interior path: walk bases leftward; the first allocation live at
        # launch time containing the address is the unique answer.
        position = bisect.bisect_right(self._bases, address) - 1
        walked = 0
        while position >= 0 and walked < _MAX_WALK:
            if self._prefix_reach[position] <= address:
                break
            base = self._bases[position]
            for seq, alloc_index, _size, free_seq, end in reversed(
                    self._by_address[base]):
                if (seq < before_seq and free_seq >= before_seq
                        and base <= address < end):
                    return alloc_index, address - base
            position -= 1
            walked += 1
        return None

    # -- the naive strategy of Figure 6 (ablation baseline) -------------------

    def naive_match(self, address: int) -> Optional[Tuple[int, int]]:
        """First allocation *ever* containing the address (earliest seq).

        This is the strawman matching whose false positives Figure 6
        illustrates: with pool reuse, the earliest match may be a long-freed
        allocation, restoring the pointer to the wrong buffer online.
        """
        best: Optional[Tuple[int, int, int]] = None
        entries = self._by_address.get(address)
        if entries is not None:
            seq, alloc_index, _size, _free, _end = entries[0]
            best = (seq, alloc_index, 0)
        position = bisect.bisect_right(self._bases, address) - 1
        walked = 0
        while position >= 0 and walked < _MAX_WALK:
            if self._prefix_reach[position] <= address:
                break
            base = self._bases[position]
            for seq, alloc_index, _size, _free, end in self._by_address[base]:
                if base <= address < end:
                    if best is None or seq < best[0]:
                        best = (seq, alloc_index, address - base)
                    break   # entries ascend by seq; later ones cannot beat it
            position -= 1
            walked += 1
        if best is None:
            return None
        return best[1], best[2]


@dataclass
class AnalysisStats:
    pointer_params: int = 0
    const_params: int = 0
    interior_pointers: int = 0
    demoted_false_positives: int = 0


def analyze_graph_params(
        index: AllocationIndex,
        node_launches: Sequence[LaunchTraceEvent],
        naive: bool = False,
) -> Tuple[List[List[ParamRestore]], AnalysisStats]:
    """Materialize restoration rules for every node of one captured graph.

    ``node_launches`` are the captured-launch trace events of the graph, in
    node order; each carries the launch sequence number bounding the
    backward search.  ``naive=True`` switches to forward-first matching (the
    ablation baseline), still applying the pointer-likeness heuristic.
    """
    stats = AnalysisStats()
    per_node: List[List[ParamRestore]] = []
    votes = _positional_votes(node_launches)
    for launch in node_launches:
        restores: List[ParamRestore] = []
        for position, (size, value) in enumerate(
                zip(launch.param_sizes, launch.param_values)):
            if not is_pointer_like(size, value):
                restores.append(ParamRestore.const(value))
                stats.const_params += 1
                continue
            if not _position_is_pointer(votes, launch.kernel_name, position):
                # Positional majority vote: this slot is a constant in most
                # instances of this kernel — a false-positive address-shaped
                # constant (§4: "rare... validates and corrects").
                restores.append(ParamRestore.const(value))
                stats.demoted_false_positives += 1
                continue
            if naive:
                match = index.naive_match(value)
            else:
                match = index.backward_match(value, launch.seq)
            if match is None:
                raise PointerAnalysisError(
                    f"kernel {launch.kernel_name} param {position}: pointer "
                    f"0x{value:x} matches no intercepted allocation")
            alloc_index, offset = match
            if offset:
                stats.interior_pointers += 1
            restores.append(ParamRestore.pointer(alloc_index, offset))
            stats.pointer_params += 1
        per_node.append(restores)
    return per_node, stats


def _positional_votes(
        launches: Sequence[LaunchTraceEvent]) -> Dict[Tuple[str, int],
                                                      Tuple[int, int]]:
    """(kernel, position) -> (pointer-like count, total count)."""
    votes: Dict[Tuple[str, int], List[int]] = {}
    for launch in launches:
        for position, (size, value) in enumerate(
                zip(launch.param_sizes, launch.param_values)):
            if size != 8:
                continue
            tally = votes.setdefault((launch.kernel_name, position), [0, 0])
            tally[0] += 1 if is_pointer_like(size, value) else 0
            tally[1] += 1
    return {key: (tally[0], tally[1]) for key, tally in votes.items()}


def _position_is_pointer(votes, kernel_name: str, position: int) -> bool:
    pointer_count, total = votes.get((kernel_name, position), (0, 0))
    if total == 0:
        return True
    return pointer_count * 2 > total
