"""Vectorized, pipelined restoration fast path (perf counterpart of §4.2).

:class:`repro.core.online.OnlineRestorer` rehydrates the artifact into
per-node Python objects and rewrites every parameter in serial loops.  This
module is the array-native alternative over a
:class:`repro.core.binfmt.LazyArtifact`:

- **Pointer substitution is one gather** — per graph, the flat
  ``param_values`` column is copied once, the pointer slots are translated
  ``alloc_index -> fresh base address + byte offset`` through two int64
  lookup tables built from the replayed allocations, and the bounds checks
  (unknown index, offset past the buffer end) are vector comparisons.
- **Parameters stay packed** — each restored node holds a
  :class:`PackedParams` view into the resolved arrays; individual
  :class:`~repro.simgpu.kernels.KernelParam` objects materialize only when
  something indexes or iterates them (COMPUTE-mode execution, validation).
- **Restoration is pipelined** — the stage actions match
  :func:`repro.engine.strategies.pipelined_medusa_plan`: ``fetch_artifact``
  (DISK), ``restore_kv``, ``replay_alloc`` (CPU), ``restore_warmup``, and
  one ``restore_graph[bs]`` per captured batch size, the largest in the
  foreground and the rest behind the serving-ready instant.

The fast path has no per-event hooks: with a
:class:`~repro.faults.FaultInjector` or
:class:`~repro.faults.DegradationPolicy` present,
:func:`repro.core.online.prepare_medusa_cold_start` falls back to the
object path, which is also the measured baseline for
``benchmarks/bench_wallclock.py``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.binfmt import GraphTable, LazyArtifact
from repro.engine.capture_runner import CaptureArtifacts
from repro.engine.kvcache import BlockManager, KVCacheRegion
from repro.engine.loadplan import FETCH_ARTIFACT, REPLAY_ALLOC, \
    fetch_chunk_stage, restore_graph_stage
from repro.errors import (
    ModuleNotLoadedError,
    RestorationError,
    SymbolNotFoundError,
)
from repro.simgpu.graph import CudaGraph, CudaGraphNode, GraphExecMeta
from repro.simgpu.kernels import PAYLOAD_DIM, KernelParam
from repro.simgpu.memory import Buffer

#: On-disk code for pointer-kind parameter slots (see ``binfmt._KIND_CODES``).
_POINTER_CODE = 1


class PackedParams:
    """A node's parameter array as a view into the resolved flat arrays.

    Quacks like the ``List[KernelParam]`` a :class:`CudaGraphNode` stores —
    ``len``, indexing, iteration, and item assignment (what
    ``CudaGraphNode.set_param`` uses) all work — but holds only two array
    references and a slot range.  A 16k-node graph therefore restores
    without creating ~112k ``KernelParam`` objects; they materialize lazily
    when COMPUTE-mode execution iterates the node.
    """

    __slots__ = ("sizes", "values", "start", "stop")

    def __init__(self, sizes: np.ndarray, values: np.ndarray,
                 start: int, stop: int):
        self.sizes = sizes          # flat per-slot byte sizes (shared)
        self.values = values        # flat resolved values (shared, mutable)
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def _position(self, index: int) -> int:
        length = self.stop - self.start
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"param index {index} out of range "
                             f"for {length} slots")
        return self.start + index

    def __getitem__(self, index: int) -> KernelParam:
        position = self._position(index)
        return KernelParam(int(self.sizes[position]),
                           int(self.values[position]))

    def __setitem__(self, index: int, param: KernelParam) -> None:
        # Slot sizes are fixed by the kernel ABI; only the value moves.
        self.values[self._position(index)] = param.value

    def __iter__(self) -> Iterator[KernelParam]:
        sizes = self.sizes[self.start:self.stop].tolist()
        values = self.values[self.start:self.stop].tolist()
        for size, value in zip(sizes, values):
            yield KernelParam(size, value)


# ---------------------------------------------------------------------------
# Kernel address resolution (§5) — shared with the object path
# ---------------------------------------------------------------------------

def resolve_kernel_addresses(engine, first_layer_graph: CudaGraph,
                             needed_names, kernel_libraries: Dict[str, str],
                             table: Dict[str, int],
                             tolerate: bool = False) -> set:
    """Resolve materialized kernel names to this process's addresses (§5).

    Fills ``table`` in place from three sources, in order: the captured
    first-layer graph nodes (they carry fresh addresses), ``dlsym`` ->
    ``cudaGetFuncBySymbol`` for visible kernels, and
    ``cuModuleEnumerateFunctions`` over already-loaded modules for the
    hidden remainder (their modules were loaded by the triggering kernels).
    With ``tolerate=True`` unresolvable kernels are collected and returned
    instead of raising (the degradation ladder poisons only the graphs
    referencing them); strict mode always returns an empty set.
    """
    driver = engine.process.driver
    cm = engine.cost_model
    for node in first_layer_graph.nodes:
        table[driver.cu_func_get_name(node.kernel_address)] = \
            node.kernel_address
    needed = sorted(set(needed_names) - set(table))
    enumerated: Dict[Tuple[str, str], Dict[str, int]] = {}
    unresolved: set = set()
    for kernel_name in needed:
        library = kernel_libraries.get(kernel_name)
        if library is None:
            if tolerate:
                unresolved.add(kernel_name)
                continue
            raise RestorationError(
                f"artifact has no library mapping for {kernel_name}")
        try:
            symbol = driver.dlsym(library, kernel_name)
        except SymbolNotFoundError:
            try:
                address = _enumerate_modules(engine, library, kernel_name,
                                             enumerated)
            except (RestorationError, ModuleNotLoadedError):
                if tolerate:
                    unresolved.add(kernel_name)
                    continue
                raise
        else:
            address = driver.cuda_get_func_by_symbol(symbol)
        table[kernel_name] = address
    total_enumerated = sum(len(v) for v in enumerated.values())
    engine.process.clock.advance(
        cm.module_enumerate_per_kernel * total_enumerated)
    return unresolved


def _enumerate_modules(engine, library: str, kernel_name: str,
                       enumerated) -> int:
    """cuModuleEnumerateFunctions over loaded modules of ``library``."""
    driver = engine.process.driver
    for lib_name, module_name in driver.loaded_modules():
        if lib_name != library:
            continue
        key = (lib_name, module_name)
        if key not in enumerated:
            names: Dict[str, int] = {}
            for address in driver.cu_module_enumerate_functions(
                    lib_name, module_name):
                names[driver.cu_func_get_name(address)] = address
            enumerated[key] = names
        address = enumerated[key].get(kernel_name)
        if address is not None:
            return address
    raise RestorationError(
        f"kernel {kernel_name} is hidden and its module was never "
        f"loaded — no triggering kernel covered it (§5)")


# ---------------------------------------------------------------------------
# The vectorized restorer
# ---------------------------------------------------------------------------

class VectorizedRestorer:
    """Array-native restoration of a :class:`LazyArtifact`.

    Binds the stage actions of
    :func:`repro.engine.strategies.pipelined_medusa_plan`; outputs are
    identical to :class:`repro.core.online.OnlineRestorer` over the same
    artifact (the COMPUTE-mode equivalence is pinned by
    ``tests/core/test_fastpath.py``), only the inner loops differ.
    ``verify_dumps`` turns on the permanent-dump readback check, done as
    one stacked comparison per payload shape rather than per buffer.
    """

    def __init__(self, artifact: LazyArtifact, verify_dumps: bool = False):
        if not isinstance(artifact, LazyArtifact):
            raise RestorationError(
                "the vectorized fast path reads a LazyArtifact — open the "
                ".npz with repro.core.binfmt.LazyArtifact (or use "
                "OnlineRestorer for eager artifacts)")
        self.artifact = artifact
        self.verify_dumps = verify_dumps
        #: No ladder on the fast path (hooks fall back to the object path).
        self.degradation = None
        self._buffers: Dict[int, Buffer] = {}
        self._replay_cursor = 0
        self._name_to_address: Dict[str, int] = {}
        self._addr_by_alloc: Optional[np.ndarray] = None
        self._size_by_alloc: Optional[np.ndarray] = None
        self._capture: Optional[CaptureArtifacts] = None
        self._warm: Optional[Tuple[Buffer, Buffer, CudaGraph]] = None

    # -- stage actions ------------------------------------------------------

    def stage_action_names(self) -> Tuple[str, ...]:
        """The action names :meth:`stage_actions` will register.

        Static (no engine needed), so the plan verifier
        (`repro.analysis.planlint`) can resolve PLN004 bindings before a
        restore binds anything.
        """
        from repro.engine.loadplan import restore_graph_stage
        manifest = getattr(self.artifact, "chunk_manifest", None)
        chunk_names = () if manifest is None else tuple(
            fetch_chunk_stage(position)
            for position in range(len(manifest.chunks)))
        return ("fetch_artifact", "restore_kv", "replay_alloc",
                "restore_warmup") + chunk_names + tuple(
                    restore_graph_stage(batch)
                    for batch in sorted(self.artifact.graphs, reverse=True))

    def stage_actions(self, engine) -> Dict[str, object]:
        """The actions the pipelined Medusa plan binds its stages to.

        Keys: ``fetch_artifact``, ``restore_kv``, ``replay_alloc``,
        ``restore_warmup``, and one ``restore_graph[bs]`` per captured
        batch size (largest first; the first one also builds the kernel
        address table and publishes ``engine.capture_artifacts``, so the
        instance can serve as soon as its foreground stage ends).
        """
        artifact = self.artifact
        process = engine.process
        clock = process.clock
        cm = engine.cost_model

        def fetch_artifact() -> float:
            start = clock.now
            clock.advance(cm.artifact_load_base)
            # The real I/O: decompress the replay columns + name table.
            artifact.replay_table().rows()
            artifact.kernel_name_table()
            return clock.now - start

        def restore_kv() -> float:
            start = clock.now
            clock.advance(cm.kv_restore_time)
            self._verify_structure_prefix(engine)
            consumed = self._replay_until(
                process, stop_alloc_index=artifact.kv_alloc_index)
            clock.advance(cm.alloc_replay_per_event * consumed)
            kv_buffer = self._buffer(artifact.kv_alloc_index)
            kv_buffer.write(np.zeros((PAYLOAD_DIM, PAYLOAD_DIM)))
            engine.kv_bytes = artifact.kv_bytes
            engine.kv_region = KVCacheRegion(
                buffer=kv_buffer,
                num_blocks=artifact.kv_num_blocks,
                block_bytes=engine.kv_config.block_bytes(engine.config),
                layer_stride=artifact.kv_layer_stride,
            )
            engine.block_manager = BlockManager(
                artifact.kv_num_blocks, engine.kv_config.block_size_tokens)
            return clock.now - start

        def replay_alloc() -> float:
            start = clock.now
            consumed = self._replay_until(process, stop_alloc_index=None)
            clock.advance(cm.alloc_replay_per_event * consumed)
            self._build_alloc_tables()
            return clock.now - start

        def restore_warmup() -> float:
            start = clock.now
            self._restore_permanent_contents()
            graph_input = self._buffer(artifact.graph_input_alloc_index)
            graph_output = self._buffer(artifact.graph_output_alloc_index)
            zeros = np.zeros((PAYLOAD_DIM, PAYLOAD_DIM))
            graph_input.write(zeros)
            graph_output.write(zeros)
            batch_order = sorted(artifact.batches, reverse=True)
            for batch_size in batch_order:
                self._launch_first_layer(engine, batch_size)
            self._run_trigger_plans(engine)
            first_layer_graph = self._capture_first_layer(
                engine, batch_order[0])
            self._warm = (graph_input, graph_output, first_layer_graph)
            return clock.now - start

        actions: Dict[str, object] = {
            FETCH_ARTIFACT: fetch_artifact,
            "restore_kv": restore_kv,
            REPLAY_ALLOC: replay_alloc,
            "restore_warmup": restore_warmup,
        }
        manifest = getattr(artifact, "chunk_manifest", None)
        if manifest is not None:
            # Chunk-backed artifact: one fetch action per manifest chunk.
            # The simulated cost splits ``artifact_load_base`` by chunk
            # size (the whole stream still sums to one monolithic fetch);
            # the real I/O decompresses exactly this chunk into the
            # reader's cache.
            total_bytes = float(manifest.total_bytes) or 1.0
            for position, ref in enumerate(manifest.chunks):
                actions[fetch_chunk_stage(position)] = \
                    self._make_fetch_chunk(engine, ref, total_bytes)
        batches = sorted(artifact.batches, reverse=True)
        for position, batch_size in enumerate(batches):
            actions[restore_graph_stage(batch_size)] = \
                self._make_restore_graph(engine, batch_size,
                                         first=position == 0)
        return actions

    def _make_fetch_chunk(self, engine, ref, total_bytes: float):
        def fetch_chunk() -> float:
            clock = engine.process.clock
            start = clock.now
            clock.advance(engine.cost_model.artifact_load_base
                          * (ref.nbytes / total_bytes))
            self.artifact.reader.chunk(ref.name)
            return clock.now - start
        return fetch_chunk

    def _make_restore_graph(self, engine, batch_size: int, first: bool):
        def restore_graph() -> float:
            clock = engine.process.clock
            cm = engine.cost_model
            start = clock.now
            table = self.artifact.graph_table(batch_size)
            clock.advance(cm.artifact_deserialize_per_node * table.num_nodes)
            if first:
                if self._warm is None:
                    raise RestorationError(
                        "restore_graph scheduled before the warm-up ran — "
                        "the plan must order medusa_warmup before the first "
                        "restore_graph stage")
                graph_input, graph_output, first_layer_graph = self._warm
                resolve_kernel_addresses(
                    engine, first_layer_graph,
                    self.artifact.kernel_name_table(),
                    self.artifact.kernel_libraries,
                    self._name_to_address)
                self._capture = CaptureArtifacts(
                    graph_input=graph_input,
                    graph_output=graph_output,
                    capture_marker=self.artifact.capture_marker,
                )
                # Published before the background graphs restore: the
                # engine serves (by padding to this batch size) while the
                # rest finish behind the ready instant.
                engine.capture_artifacts = self._capture
            if self._capture is None:
                raise RestorationError(
                    "restore_graph for a non-first batch size ran before "
                    "the first one — the plan must chain them")
            graph = self._assemble_graph(table)
            self._capture.graphs[batch_size] = graph
            self._capture.execs[batch_size] = \
                graph.instantiate(engine.process)
            clock.advance(cm.restore_fill_per_node * table.num_nodes)
            return clock.now - start
        return restore_graph

    # -- allocation replay (§4.2) -------------------------------------------

    def _verify_structure_prefix(self, engine) -> None:
        """Check the deterministic-control-flow assumption (§2.5) holds."""
        history = engine.process.allocator.history
        expected = self.artifact.structure_prefix
        if len(history) < len(expected):
            raise RestorationError(
                f"online process made {len(history)} allocations before "
                f"restore; artifact expects a {len(expected)}-allocation "
                f"structure-init prefix")
        for position, (size, tag) in enumerate(expected):
            buffer = history[position]
            if (buffer.size, buffer.tag) != (size, tag):
                raise RestorationError(
                    f"allocation {position} diverged from the offline run: "
                    f"got ({buffer.size}, {buffer.tag!r}), artifact has "
                    f"({size}, {tag!r}) — control flow is not deterministic")
            self._buffers[buffer.alloc_index] = buffer

    def _replay_until(self, process, stop_alloc_index: Optional[int]) -> int:
        """Replay recorded events from plain-tuple rows (no event objects)."""
        rows = self.artifact.replay_table().rows()
        buffers = self._buffers
        cursor = self._replay_cursor
        consumed = 0
        total = len(rows)
        while cursor < total:
            kind, alloc_index, size, pooled, tag, pool = rows[cursor]
            cursor += 1
            consumed += 1
            if kind == 0:            # alloc
                buffer = process.malloc(size, tag=tag, pool=pool)
                if buffer.alloc_index != alloc_index:
                    raise RestorationError(
                        f"replay drift: allocation came back as index "
                        f"{buffer.alloc_index}, artifact expects "
                        f"{alloc_index}")
                buffers[alloc_index] = buffer
                if stop_alloc_index is not None \
                        and alloc_index == stop_alloc_index:
                    break
            elif kind == 1:          # free
                buffer = self._buffer(alloc_index)
                if pooled:
                    process.pool_free(buffer.address)
                else:
                    process.free(buffer.address)
            else:                    # empty_cache
                process.empty_cache()
        self._replay_cursor = cursor
        return consumed

    def _buffer(self, alloc_index: int) -> Buffer:
        buffer = self._buffers.get(alloc_index)
        if buffer is None:
            raise RestorationError(
                f"indirect index {alloc_index} points outside the replayed "
                f"allocation sequence")
        return buffer

    def _build_alloc_tables(self) -> None:
        """Dense alloc-index -> (base address, size) lookup tables.

        Mirrors the object path's ``_buffers`` dict exactly: freed buffers
        keep their entries (pointers into them restore the recorded base),
        and never-allocated indices translate to -1, caught by the gather's
        bounds check.
        """
        buffers = self._buffers
        limit = max(buffers) + 1 if buffers else 0
        addresses = np.full(limit, -1, dtype=np.int64)
        sizes = np.zeros(limit, dtype=np.int64)
        for alloc_index, buffer in buffers.items():
            addresses[alloc_index] = buffer.address
            sizes[alloc_index] = buffer.size
        self._addr_by_alloc = addresses
        self._size_by_alloc = sizes

    # -- permanent dumps (§4.3) ---------------------------------------------

    def _restore_permanent_contents(self) -> None:
        """Write every dumped payload; verify as one comparison per shape."""
        artifact = self.artifact
        written: List[Tuple[Buffer, np.ndarray]] = []
        for alloc_index in sorted(artifact.permanent_contents):
            payload = artifact.permanent_payload(alloc_index)
            buffer = self._buffer(alloc_index)
            buffer.write(payload)
            written.append((buffer, payload))
        if not self.verify_dumps or not written:
            return
        by_shape: Dict[Tuple[int, ...], Tuple[list, list]] = {}
        for buffer, payload in written:
            actual, expected = by_shape.setdefault(payload.shape, ([], []))
            actual.append(buffer.read())
            expected.append(payload)
        for shape in sorted(by_shape):
            actual, expected = by_shape[shape]
            if not np.array_equal(np.stack(actual), np.stack(expected)):
                raise RestorationError(
                    "permanent dump readback mismatch — a stored dump is "
                    "corrupt (§4.3)")

    # -- pointer substitution (§4.2, the gather) ----------------------------

    def _resolved_values(self, table: GraphTable,
                         stop: Optional[int] = None) -> np.ndarray:
        """Translate one graph's flat param column in a single gather.

        Returns an int64 copy of ``param_values[:stop]`` with every
        pointer slot rewritten to ``fresh base address + byte offset``;
        both failure modes of the object path (unknown allocation index,
        offset past the buffer end) are vector comparisons raising the
        same errors.
        """
        if self._addr_by_alloc is None or self._size_by_alloc is None:
            raise RestorationError(
                "pointer substitution before the allocation replay — the "
                "plan must order replay_alloc before graph restoration")
        end = int(table.param_offsets[-1]) if stop is None else stop
        values = table.param_values[:end].astype(np.int64, copy=True)
        pointer_mask = table.param_kinds[:end] == _POINTER_CODE
        if not pointer_mask.any():
            return values
        alloc_indices = values[pointer_mask]
        offsets = table.param_byte_offsets[:end][pointer_mask]
        known = self._addr_by_alloc.shape[0]
        bad = (alloc_indices < 0) | (alloc_indices >= known)
        if bad.any():
            raise RestorationError(
                f"indirect index {int(alloc_indices[bad][0])} points "
                f"outside the replayed allocation sequence")
        bases = self._addr_by_alloc[alloc_indices]
        missing = bases < 0
        if missing.any():
            raise RestorationError(
                f"indirect index {int(alloc_indices[missing][0])} points "
                f"outside the replayed allocation sequence")
        limits = self._size_by_alloc[alloc_indices]
        over = offsets >= limits
        if over.any():
            raise RestorationError(
                f"offset {int(offsets[over][0])} exceeds replayed buffer "
                f"size {int(limits[over][0])} "
                f"(alloc {int(alloc_indices[over][0])})")
        values[pointer_mask] = bases + offsets
        return values

    # -- triggering-kernel warm-up (§5.1, §5.2) -----------------------------

    def _first_layer_plan(self, engine, batch_size: int):
        """The prologue + first-layer launches as (spec, params, dims)."""
        artifact = self.artifact
        # first_layer_table is the whole graph on a monolithic npz, but a
        # chunk-backed artifact serves just the head chunk — the warmup
        # never forces a tail decompress.
        table = artifact.first_layer_table(batch_size)
        count = min(artifact.first_layer_nodes, table.num_nodes)
        stop = int(table.param_offsets[count])
        resolved = self._resolved_values(table, stop=stop)
        names = table.kernel_names
        kernel_ids = table.kernel_ids[:count].tolist()
        offsets = table.param_offsets[:count + 1].tolist()
        dims = table.batch_dims[:count].tolist()
        plan = []
        for position, kernel_id in enumerate(kernel_ids):
            spec = engine.catalog.kernel(names[kernel_id])
            params = PackedParams(table.param_sizes, resolved,
                                  offsets[position], offsets[position + 1])
            plan.append((spec, params, {"batch_size": dims[position]}))
        return plan

    def _launch_first_layer(self, engine, batch_size: int) -> None:
        """Warm up the prologue + first layer eagerly (restored params)."""
        process = engine.process
        plan = self._first_layer_plan(engine, batch_size)
        for spec, params, launch_dims in plan:
            process.launch(spec, params, launch_dims=launch_dims,
                           preset_magic=True)
        cm = engine.cost_model
        layer_gpu = (cm.forward_gpu_time(engine.config.param_bytes,
                                         batch_size)
                     / max(1, engine.config.num_layers))
        process.clock.advance(layer_gpu + len(plan) * cm.launch_gap)

    def _run_trigger_plans(self, engine) -> None:
        """Handwritten trigger launches for modules the first layer misses."""
        for plan in self.artifact.trigger_plans:
            batch_size, node_index = plan.node_ref
            table = self.artifact.graph_table(batch_size)
            start = int(table.param_offsets[node_index])
            end = int(table.param_offsets[node_index + 1])
            resolved = self._resolved_values(table, stop=end)
            spec = engine.catalog.kernel(plan.kernel_name)
            params = PackedParams(table.param_sizes, resolved, start, end)
            engine.process.launch(
                spec, params,
                launch_dims={"batch_size": int(table.batch_dims[node_index])},
                preset_magic=True)
            engine.process.clock.advance(engine.cost_model.launch_gap)

    def _capture_first_layer(self, engine, batch_size: int) -> CudaGraph:
        """Capture the warmed-up first layer; its nodes expose addresses."""
        process = engine.process
        stream = process.default_stream
        plan = self._first_layer_plan(engine, batch_size)
        stream.begin_capture(GraphExecMeta(
            param_bytes=0, num_tokens=batch_size, batch_size=batch_size))
        for spec, params, launch_dims in plan:
            process.launch(spec, params, launch_dims=launch_dims,
                           preset_magic=True)
        return stream.end_capture()

    # -- graph assembly -----------------------------------------------------

    def _assemble_graph(self, table: GraphTable) -> CudaGraph:
        """Build one restored graph around the gathered parameter arrays."""
        resolved = self._resolved_values(table)
        name_table = self._name_to_address
        addresses = []
        for name in table.node_kernel_names():
            address = name_table.get(name)
            if address is None:
                raise RestorationError(
                    f"no restored address for kernel {name}")
            addresses.append(address)
        offsets = table.param_offsets.tolist()
        dims = table.batch_dims.tolist()
        sizes = table.param_sizes
        nodes = [
            CudaGraphNode(
                kernel_address=addresses[index],
                params=PackedParams(sizes, resolved,
                                    offsets[index], offsets[index + 1]),
                launch_dims={"batch_size": dims[index]},
            )
            for index in range(table.num_nodes)
        ]
        return CudaGraph(
            nodes=nodes,
            edges={tuple(edge) for edge in table.edges.tolist()},
            exec_meta=GraphExecMeta(
                param_bytes=table.param_bytes,
                num_tokens=table.num_tokens,
                batch_size=table.batch_size,
            ),
        )
