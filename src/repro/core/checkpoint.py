"""A working checkpoint/restore baseline (§9's line of related work).

FaaSnap/Catalyzer/SEUSS-style systems snapshot a launched instance and
restore it wholesale.  For GPUs this only works because the snapshot is
restored at *identical* virtual addresses (CRIU semantics) — raw pointers
inside driver objects, including captured CUDA graphs, stay valid.  This
module implements that world mechanically on the simulated substrate:

- :func:`checkpoint_engine` snapshots a cold-started engine: every live
  buffer (address, declared size, payload), the driver's loaded-module and
  initialized-library state, the magic workspace registry, and the captured
  graphs verbatim (raw addresses included);
- :func:`restore_engine` recreates the *same* process layout (same seed →
  same heap base and ASLR bases), maps every buffer back at its recorded
  address (``DeviceAllocator.map_fixed``), reinstates driver state, and
  adopts the graphs — paying the snapshot's full transfer size.

The contrast with Medusa (§9): this restores gigabytes and is glued to one
address layout, while Medusa's artifact is megabytes and address-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.baselines import _HOST_IMAGE_BYTES
from repro.engine.capture_runner import CaptureArtifacts
from repro.engine.engine import LLMEngine
from repro.engine.kvcache import BlockManager, KVCacheRegion
from repro.engine.strategies import Strategy
from repro.errors import RestorationError
from repro.simgpu.graph import CudaGraph, CudaGraphNode, GraphExecMeta
from repro.simgpu.kernels import KernelParam
from repro.simgpu.process import ExecutionMode

#: Driver/page-table reattachment cost on restore.
_RESTORE_FIXUP_TIME = 0.25


@dataclass
class BufferSnapshot:
    address: int
    size: int
    tag: str
    pool: str
    payload: Optional[List[List[float]]]


@dataclass
class GraphSnapshot:
    batch_size: int
    nodes: List[Tuple[int, List[Tuple[int, int]], Dict[str, int]]]
    edges: List[Tuple[int, int]]
    param_bytes: int
    num_tokens: int


@dataclass
class InstanceCheckpoint:
    """The complete state of one cold-started serving instance."""

    model_name: str
    gpu_name: str
    strategy: str
    process_seed: int
    buffers: List[BufferSnapshot] = field(default_factory=list)
    weight_keys: Dict[str, int] = field(default_factory=dict)  # key -> addr
    magic: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    initialized_libraries: List[str] = field(default_factory=list)
    loaded_modules: List[Tuple[str, str]] = field(default_factory=list)
    kv_address: int = 0
    kv_num_blocks: int = 0
    kv_layer_stride: int = 0
    kv_bytes: int = 0
    graph_input_address: int = 0
    graph_output_address: int = 0
    capture_marker: int = 0
    graphs: List[GraphSnapshot] = field(default_factory=list)
    tokenizer_loaded: bool = True

    @property
    def device_bytes(self) -> int:
        return sum(snapshot.size for snapshot in self.buffers)

    @property
    def total_bytes(self) -> int:
        """Snapshot transfer size: device image + host process image."""
        return self.device_bytes + _HOST_IMAGE_BYTES


def checkpoint_engine(engine: LLMEngine) -> InstanceCheckpoint:
    """Snapshot a cold-started engine's full instance state."""
    if engine.kv_region is None or engine.capture_artifacts is None:
        raise RestorationError(
            "checkpointing requires a completed cold start with graphs")
    process = engine.process
    checkpoint = InstanceCheckpoint(
        model_name=engine.config.name,
        gpu_name=engine.cost_model.gpu.name,
        strategy=engine.strategy.value,
        process_seed=process.seed,
        kv_address=engine.kv_region.buffer.address,
        kv_num_blocks=engine.kv_region.num_blocks,
        kv_layer_stride=engine.kv_region.layer_stride,
        kv_bytes=engine.kv_bytes or 0,
        graph_input_address=engine.capture_artifacts.graph_input.address,
        graph_output_address=engine.capture_artifacts.graph_output.address,
        capture_marker=engine.capture_artifacts.capture_marker,
        initialized_libraries=[
            lib.name for lib in engine.catalog.libraries()
            if process.driver.library_initialized(lib.name)],
        loaded_modules=list(process.driver.loaded_modules()),
        magic={name: addrs for name, addrs in process._magic.items()},
        weight_keys={key: buffer.address
                     for key, buffer in engine.model.weight_buffers.items()},
    )
    for buffer in sorted(process.allocator.live_buffers,
                         key=lambda b: b.address):
        checkpoint.buffers.append(BufferSnapshot(
            address=buffer.address, size=buffer.size, tag=buffer.tag,
            pool=buffer.pool,
            payload=None if buffer.payload is None
            else buffer.payload.tolist()))
    for batch_size, graph in engine.capture_artifacts.graphs.items():
        checkpoint.graphs.append(GraphSnapshot(
            batch_size=batch_size,
            nodes=[(node.kernel_address,
                    [(p.size, p.value) for p in node.params],
                    dict(node.launch_dims)) for node in graph.nodes],
            edges=sorted(graph.edges),
            param_bytes=graph.exec_meta.param_bytes,
            num_tokens=graph.exec_meta.num_tokens,
        ))
    return checkpoint


def restore_engine(checkpoint: InstanceCheckpoint,
                   cost_model=None, kv_config=None,
                   mode: ExecutionMode = ExecutionMode.TIMING,
                   ) -> Tuple[LLMEngine, float]:
    """Restore a snapshot into a fresh process at identical addresses.

    Returns (engine, restore_latency).  The restore pays the full snapshot
    transfer (device image + host image over the H2D path) plus driver
    fixup — the baseline's cold-start cost.
    """
    engine = LLMEngine(checkpoint.model_name,
                       Strategy(checkpoint.strategy),
                       seed=checkpoint.process_seed, mode=mode,
                       cost_model=cost_model, kv_config=kv_config)
    process = engine.process
    if engine.cost_model.gpu.name != checkpoint.gpu_name:
        raise RestorationError(
            f"checkpoint from {checkpoint.gpu_name!r} cannot restore on "
            f"{engine.cost_model.gpu.name!r}")
    start = process.clock.now

    # CRIU semantics: map every buffer back at its recorded address.  The
    # fresh process has the same seed, hence the same heap base, so the
    # recorded addresses fall inside this process's heap.
    by_address: Dict[int, object] = {}
    for snapshot in checkpoint.buffers:
        payload = None if snapshot.payload is None \
            else np.array(snapshot.payload, dtype=np.float64)
        buffer = process.allocator.map_fixed(
            snapshot.address, snapshot.size, tag=snapshot.tag,
            pool=snapshot.pool, payload=payload)
        by_address[snapshot.address] = buffer

    # Driver state: loaded modules, initialized libraries, workspaces.
    for library in checkpoint.initialized_libraries:
        process.driver.dlopen(library)
        process.driver.mark_library_initialized(library)
    for library, module in checkpoint.loaded_modules:
        dynamic_library = process.driver.dlopen(library)
        for spec in dynamic_library.modules:
            if spec.name == module:
                process.driver.load_module_for(spec.kernels[0])
    for kernel_name, (addr_a, addr_b) in checkpoint.magic.items():
        process.register_magic(kernel_name, addr_a, addr_b)

    # Engine-level state: weights, KV region, graphs.
    for key, address in checkpoint.weight_keys.items():
        engine.model.weight_buffers[key] = by_address[address]
    engine.model._weights_loaded = True
    engine.tokenizer.load()
    engine.kv_bytes = checkpoint.kv_bytes
    engine.kv_region = KVCacheRegion(
        buffer=by_address[checkpoint.kv_address],
        num_blocks=checkpoint.kv_num_blocks,
        block_bytes=engine.kv_config.block_bytes(engine.config),
        layer_stride=checkpoint.kv_layer_stride)
    engine.block_manager = BlockManager(
        checkpoint.kv_num_blocks, engine.kv_config.block_size_tokens)
    artifacts = CaptureArtifacts(
        graph_input=by_address[checkpoint.graph_input_address],
        graph_output=by_address[checkpoint.graph_output_address],
        capture_marker=checkpoint.capture_marker)
    for snapshot in checkpoint.graphs:
        graph = CudaGraph(
            nodes=[CudaGraphNode(
                kernel_address=address,
                params=[KernelParam(size, value) for size, value in params],
                launch_dims=dims)
                for address, params, dims in snapshot.nodes],
            edges=set(map(tuple, snapshot.edges)),
            exec_meta=GraphExecMeta(param_bytes=snapshot.param_bytes,
                                    num_tokens=snapshot.num_tokens,
                                    batch_size=snapshot.batch_size))
        artifacts.graphs[snapshot.batch_size] = graph
        artifacts.execs[snapshot.batch_size] = graph.instantiate(process)
    engine.capture_artifacts = artifacts

    # The baseline's cost: stream the whole snapshot back + fix up driver.
    process.clock.advance(
        checkpoint.total_bytes / engine.cost_model.gpu.h2d_bandwidth
        + _RESTORE_FIXUP_TIME)
    return engine, process.clock.now - start
