"""A deterministic stand-in tokenizer.

Real tokenizers are large vocabulary data structures whose load time the
paper measures as a distinct stage (~0.21 s for Qwen1.5-4B, Figure 8).  This
one is a stable hash tokenizer: cheap, deterministic, reversible enough for
round-trip tests, with a load-time model driven by the vocabulary size.
"""

from __future__ import annotations

from typing import List

from repro.errors import InvalidValueError
from repro.models.config import ModelConfig
from repro.simgpu.kernels import hash_stable


class Tokenizer:
    """Hash tokenizer over whitespace-separated words."""

    def __init__(self, config: ModelConfig):
        self.config = config
        self.vocab_size = config.vocab_size
        self._loaded = False

    def load(self) -> None:
        """Mark the tokenizer ready (the engine accounts for the time)."""
        self._loaded = True

    @property
    def loaded(self) -> bool:
        return self._loaded

    def encode(self, text: str) -> List[int]:
        if not self._loaded:
            raise InvalidValueError("tokenizer used before loading")
        return [hash_stable(word) % self.vocab_size for word in text.split()]

    def decode(self, token_ids: List[int]) -> str:
        if not self._loaded:
            raise InvalidValueError("tokenizer used before loading")
        for token_id in token_ids:
            if not 0 <= token_id < self.vocab_size:
                raise InvalidValueError(
                    f"token id {token_id} outside vocab of {self.vocab_size}")
        return " ".join(f"<tok{tid}>" for tid in token_ids)
