"""The simulated transformer model: structure init, weights, forwarding.

``Model.forward`` launches the model's kernels on the simulated stream —
eagerly, or recorded into an ongoing stream capture — with the exact
allocation behaviour the Medusa analysis depends on: weight buffers are
allocated once in deterministic layer order (structure initialization),
activations are transient pool allocations freed per layer (creating the
address-reuse aliasing of Figure 6), and cuBLAS-style kernels acquire their
permanent magic workspace on first launch (warm-up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import EngineError, InvalidValueError
from repro.models.config import (
    EPILOGUE_BASE_KERNELS,
    WEIGHTED_LAYER_KERNELS,
    ModelConfig,
)
from repro.models.kernels_catalog import all_kernel_keys, kernel_spec
from repro.models.weights import CheckpointStore, declared_sizes, weight_buffer_keys
from repro.simgpu.kernels import KernelParam, KernelSpec, ParamKind, magic_values
from repro.simgpu.memory import Buffer
from repro.simgpu.process import CudaProcess


@dataclass
class ForwardContext:
    """Persistent buffers a forwarding reads and writes.

    ``input_buffer``/``output_buffer`` are the engine's persistent graph I/O
    buffers (allocated once, before capture — so their contents never need
    materializing).  ``kv_buffer`` is the engine's KV cache region; layer ``i``
    addresses the interior pointer ``kv_buffer.address + i * kv_layer_stride``
    (exercising §4.1's within-range pointer matching).
    """

    input_buffer: Buffer
    output_buffer: Buffer
    kv_buffer: Buffer
    kv_layer_stride: int = 0


class Model:
    """One model instance living inside one simulated process."""

    def __init__(self, config: ModelConfig, process: CudaProcess):
        self.config = config
        self.process = process
        self.weight_buffers: Dict[str, Buffer] = {}
        self._specs: Dict[str, KernelSpec] = {
            key: kernel_spec(config, key) for key in all_kernel_keys(config)
        }
        self._weights_loaded = False

    # -- loading-phase stages (timing is accounted by the engine) ------------

    def initialize_structure(self) -> None:
        """Stage 1: allocate every weight buffer, in deterministic order."""
        if self.weight_buffers:
            raise EngineError(f"{self.config.name}: structure already initialized")
        sizes = declared_sizes(self.config)
        for key in weight_buffer_keys(self.config):
            self.weight_buffers[key] = self.process.malloc(
                sizes[key], tag="weight")

    def load_weights(self, store: CheckpointStore) -> None:
        """Stage 2: stream the checkpoint into the pre-allocated buffers.

        Each tensor is a host->device copy paying real (simulated) PCIe/SSD
        bandwidth, so the stage's duration emerges from the copies rather
        than being asserted.
        """
        if not self.weight_buffers:
            raise EngineError(f"{self.config.name}: structure not initialized")
        for key, payload in store.iter_payloads(self.config):
            self.process.memcpy_h2d(self.weight_buffers[key], payload)
        self._weights_loaded = True

    @property
    def weights_loaded(self) -> bool:
        return self._weights_loaded

    # -- forwarding ------------------------------------------------------------

    def num_forward_kernels(self, batch_size: int) -> int:
        return self.config.nodes_for_batch(batch_size)

    def forward(self, batch_size: int, num_tokens: int,
                ctx: ForwardContext) -> Buffer:
        """Run one forwarding (eager, or recorded if the stream is capturing).

        Returns the output buffer.  Transient activations are pool-freed per
        layer; the caller supplies persistent I/O and KV buffers via ``ctx``.
        """
        process = self.process
        stream = process.default_stream
        capturing = stream.is_capturing
        template = self.config.kernel_template()

        launched = 0

        def launch(key: str, roles: Dict[str, int],
                   consts: Optional[Dict[str, int]] = None,
                   dims: Optional[Dict[str, int]] = None) -> None:
            nonlocal launched
            spec = self._specs[key]
            process.launch(spec, self._params(spec, roles, consts or {}),
                           launch_dims=dims or {"batch_size": batch_size})
            launched += 1

        temp_bytes = max(256, batch_size * self.config.hidden_size * 2)

        def temp() -> Buffer:
            return process.malloc(temp_bytes, tag="act")

        # Prologue: embedding.
        hidden = temp()
        launch("embed_tokens", {
            "input": ctx.input_buffer.address,
            "weight": self._weight("embed_tokens.weight").address,
            "output": hidden.address,
        })

        # The structurally identical layer stack (§5.2).
        for layer in range(self.config.num_layers):
            hidden = self._forward_layer(layer, hidden, batch_size,
                                         ctx, temp, launch,
                                         template.layer_kernels)

        # Epilogue: final norm -> lm head -> sampling -> aux.
        normed = temp()
        launch("final_layernorm", {
            "input": hidden.address,
            "weight": self._weight("final_layernorm.weight").address,
            "output": normed.address,
        }, consts={"n": self.config.hidden_size})
        process.pool_free(hidden.address)
        logits = temp()
        launch("lm_head", {
            "input": normed.address,
            "weight": self._weight("lm_head.weight").address,
            "output": logits.address,
        })
        process.pool_free(normed.address)
        launch("sample", {
            "input": logits.address,
            "output": ctx.output_buffer.address,
        })
        for aux_index in range(template.epilogue_aux):
            aux_out = temp()
            launch(f"aux_{aux_index:02d}", {
                "input": ctx.output_buffer.address,
                "output": aux_out.address,
            })
            process.pool_free(aux_out.address)
        if batch_size in template.reduce_batches:
            reduce_out = temp()
            launch("batch_reduce", {
                "input": logits.address,
                "output": reduce_out.address,
            })
            process.pool_free(reduce_out.address)
        process.pool_free(logits.address)

        expected = self.num_forward_kernels(batch_size)
        if launched != expected:
            raise EngineError(
                f"{self.config.name}: forward launched {launched} kernels, "
                f"expected {expected} (batch {batch_size})")

        if not capturing:
            process.clock.advance(process.cost_model.eager_step_time(
                self.config.param_bytes, num_tokens, launched))
        return ctx.output_buffer

    # -- internals ---------------------------------------------------------------

    def _forward_layer(self, layer: int, hidden: Buffer, batch_size: int,
                       ctx: ForwardContext, temp, launch,
                       layer_kernels) -> Buffer:
        """One transformer layer; returns the carried hidden buffer."""
        w = lambda kernel_key: self._weight(
            f"layer{layer:03d}.{kernel_key}.weight").address
        kv_pointer = ctx.kv_buffer.address + layer * ctx.kv_layer_stride
        has = set(layer_kernels)
        consts_n = {"n": self.config.hidden_size}
        temps: List[Buffer] = []

        def new_temp() -> Buffer:
            buffer = temp()
            temps.append(buffer)
            return buffer

        x = hidden
        normed = new_temp()
        launch("input_layernorm", {
            "input": x.address, "weight": w("input_layernorm"),
            "output": normed.address}, consts=consts_n)
        qkv = new_temp()
        launch("qkv_proj", {
            "input": normed.address, "weight": w("qkv_proj"),
            "output": qkv.address}, consts={"seed": layer + 1})
        rotated = new_temp()
        launch("rotary_embed", {
            "input": qkv.address, "output": rotated.address},
            consts={"rot_steps": layer})
        attn = new_temp()
        launch("paged_attention", {
            "input": rotated.address, "kv": kv_pointer,
            "output": attn.address}, consts={"layer_idx": layer})
        o_out = new_temp()
        launch("o_proj", {
            "input": attn.address, "weight": w("o_proj"),
            "output": o_out.address})
        carry = new_temp()
        launch("attn_residual", {
            "input": x.address, "input_b": o_out.address,
            "output": carry.address})

        if "post_layernorm" in has:
            normed2 = new_temp()
            launch("post_layernorm", {
                "input": carry.address, "weight": w("post_layernorm"),
                "output": normed2.address}, consts=consts_n)
        else:
            normed2 = carry
        if "gate_up_proj" in has:
            gate = new_temp()
            launch("gate_up_proj", {
                "input": normed2.address, "weight": w("gate_up_proj"),
                "output": gate.address})
            mlp_in = gate
        else:
            mlp_in = normed2
        if "silu_and_mul" in has:
            activated = new_temp()
            launch("silu_and_mul", {
                "input": mlp_in.address, "input_b": normed2.address,
                "output": activated.address})
            mlp_in = activated
        if "down_proj" in has:
            down = new_temp()
            launch("down_proj", {
                "input": mlp_in.address, "weight": w("down_proj"),
                "output": down.address})
            mlp_in = down
        if "mlp_residual" in has:
            merged = new_temp()
            launch("mlp_residual", {
                "input": carry.address, "input_b": mlp_in.address,
                "output": merged.address})
            out = merged
        else:
            out = mlp_in
        if "attn_output_scale" in has:
            scaled = new_temp()
            launch("attn_output_scale", {
                "input": out.address, "output": scaled.address})
            out = scaled
        if "extra_layernorm" in has:
            extra = new_temp()
            launch("extra_layernorm", {
                "input": out.address, "weight": w("extra_layernorm"),
                "output": extra.address}, consts=consts_n)
            out = extra

        # Free this layer's transients (and the carried-in hidden), keeping
        # only the buffer carried to the next layer.  LIFO pool reuse across
        # layers is what recreates Figure 6's aliasing.
        process = self.process
        process.pool_free(x.address)
        for buffer in temps:
            if buffer is not out:
                process.pool_free(buffer.address)
        return out

    def _weight(self, key: str) -> Buffer:
        buffer = self.weight_buffers.get(key)
        if buffer is None:
            raise EngineError(f"{self.config.name}: no weight buffer {key!r}; "
                              f"structure not initialized?")
        return buffer

    def _params(self, spec: KernelSpec, roles: Dict[str, int],
                consts: Dict[str, int]) -> List[KernelParam]:
        want_a, want_b = magic_values(spec.name)
        defaults = {
            "magic_a_expected": want_a,
            "magic_b_expected": want_b,
            "seed": 1,
            "n": self.config.hidden_size,
            "rot_steps": 0,
            "layer_idx": 0,
        }
        params: List[KernelParam] = []
        for slot in spec.params:
            if slot.kind is ParamKind.POINTER:
                params.append(KernelParam(slot.size, roles.get(slot.role, 0)))
            else:
                value = consts.get(slot.role, defaults.get(slot.role))
                if value is None:
                    raise InvalidValueError(
                        f"kernel {spec.name}: missing const {slot.role!r}")
                params.append(KernelParam(slot.size, int(value)))
        return params
