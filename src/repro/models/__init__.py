"""The simulated LLM model zoo.

Ten models from the paper's Table 1 (Falcon, Llama2, Qwen1.5, Yi families)
with the paper's parameter sizes and *exact* total CUDA-graph node counts,
plus tiny test configurations.  A model is a real layer-structured program
over the simulated CUDA substrate: structure initialization allocates weight
buffers in deterministic order, forwarding launches named kernels (visible
torch-style ones and hidden cuBLAS-style GEMMs), and layers are structurally
identical — the property Medusa's first-layer triggering relies on (§5.2).
"""

from repro.models.config import KernelTemplate, ModelConfig
from repro.models.model import Model
from repro.models.tokenizer import Tokenizer
from repro.models.weights import CheckpointStore, FileCheckpointStore
from repro.models.zoo import (
    PAPER_MODELS,
    TINY_MODELS,
    get_model_config,
    paper_model_names,
)

__all__ = [
    "CheckpointStore",
    "FileCheckpointStore",
    "KernelTemplate",
    "Model",
    "ModelConfig",
    "PAPER_MODELS",
    "TINY_MODELS",
    "Tokenizer",
    "get_model_config",
    "paper_model_names",
]
