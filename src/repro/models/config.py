"""Model configuration and the Table 1 node-count arithmetic.

The paper reports, per model, the total number of CUDA graph nodes summed
over the 35 captured batch sizes (Table 1).  We decompose that total into a
layer-repeated kernel count plus prologue/epilogue kernels:

    nodes(batch) = num_layers * kernels_per_layer + epilogue_kernels
                   (+1 reduce kernel for the ``remainder`` largest batches)

    total = 35 * (L * k + c) + remainder          — exactly Table 1.

``kernels_per_layer`` (k) and ``epilogue_kernels`` (c) are solved from the
published total and the model's real layer count, so the reproduction's
graphs have both the right totals and the right repetitive layer structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import InvalidValueError

#: vLLM's default capture list: batch sizes 1, 2, 4 and 8..256 step 8 — 35
#: sizes, matching "capturing 35 different batch sizes" (§7.1).
CAPTURE_BATCH_SIZES: Tuple[int, ...] = (1, 2, 4) + tuple(range(8, 257, 8))

#: Per-layer kernel template, in launch order.  A model with
#: ``kernels_per_layer = k`` uses the first k entries (k >= MIN_LAYER_KERNELS).
#: Exactly one of these (qkv_proj) is a magic-workspace cuBLAS kernel, so for
#: k = 11 about 9% of a graph's kernels need permanent buffers — the paper's
#: measured fraction (§4.3).
LAYER_KERNEL_TEMPLATE: Tuple[str, ...] = (
    "input_layernorm",    # visible, libtorch
    "qkv_proj",           # hidden gemm_magic, libcublas
    "rotary_embed",       # visible, libvllm
    "paged_attention",    # visible, libvllm
    "o_proj",             # hidden gemm, libcublas
    "attn_residual",      # visible, libtorch
    "post_layernorm",     # visible, libtorch
    "gate_up_proj",       # hidden gemm, libcublas
    "silu_and_mul",       # visible, libtorch
    "down_proj",          # hidden gemm, libcublas
    "mlp_residual",       # visible, libtorch
    "attn_output_scale",  # visible, libtorch (wider architectures)
    "extra_layernorm",    # visible, libtorch (wider architectures)
)

MIN_LAYER_KERNELS = 6
MAX_LAYER_KERNELS = len(LAYER_KERNEL_TEMPLATE)

#: Layer kernels that read a per-layer weight buffer.
WEIGHTED_LAYER_KERNELS = frozenset({
    "input_layernorm", "qkv_proj", "o_proj", "post_layernorm",
    "gate_up_proj", "down_proj", "extra_layernorm",
})

#: Fixed prologue/epilogue kernels every model has (in launch order:
#: embed runs before the layers; the rest after).
PROLOGUE_KERNELS: Tuple[str, ...] = ("embed_tokens",)
EPILOGUE_BASE_KERNELS: Tuple[str, ...] = ("final_layernorm", "lm_head", "sample")


@dataclass(frozen=True)
class KernelTemplate:
    """The resolved kernel plan of one model."""

    layer_kernels: Tuple[str, ...]      # repeated num_layers times
    epilogue_aux: int                   # number of aux copy kernels appended
    reduce_batches: Tuple[int, ...]     # batch sizes with the +1 reduce kernel

    @property
    def fixed_kernels(self) -> int:
        """Prologue + epilogue kernel count (the 'c' of the decomposition)."""
        return (len(PROLOGUE_KERNELS) + len(EPILOGUE_BASE_KERNELS)
                + self.epilogue_aux)


@dataclass(frozen=True)
class ModelConfig:
    """Static description of one model (paper Table 1 plus architecture)."""

    name: str
    family: str                 # falcon / llama / qwen / yi / tiny
    param_bytes: int            # Table 1 "parameter size"
    num_layers: int             # the real model's layer count
    hidden_size: int            # the real model's hidden dimension
    vocab_size: int
    total_graph_nodes: int      # Table 1 "CUDA graph nodes" over 35 batches
    capture_batch_sizes: Tuple[int, ...] = CAPTURE_BATCH_SIZES
    max_seq_len: int = 4096
    checkpoint_seed: int = 0    # weights identity (fixed per model, not per run)

    def __post_init__(self) -> None:
        # Validate that the published node total decomposes.
        self.kernel_template()

    # -- node-count decomposition ------------------------------------------

    def kernel_template(self) -> KernelTemplate:
        """Solve (k, c, remainder) from the published node total."""
        num_batches = len(self.capture_batch_sizes)
        base = self.total_graph_nodes // num_batches
        remainder = self.total_graph_nodes - num_batches * base
        kernels_per_layer = min(MAX_LAYER_KERNELS, base // self.num_layers)
        fixed = base - kernels_per_layer * self.num_layers
        min_fixed = len(PROLOGUE_KERNELS) + len(EPILOGUE_BASE_KERNELS)
        while fixed < min_fixed and kernels_per_layer > MIN_LAYER_KERNELS:
            kernels_per_layer -= 1
            fixed = base - kernels_per_layer * self.num_layers
        if kernels_per_layer < MIN_LAYER_KERNELS or fixed < min_fixed:
            raise InvalidValueError(
                f"{self.name}: cannot decompose {self.total_graph_nodes} nodes "
                f"into {self.num_layers} layers of >= {MIN_LAYER_KERNELS} kernels")
        reduce_batches = tuple(sorted(self.capture_batch_sizes)[-remainder:]
                               if remainder else ())
        return KernelTemplate(
            layer_kernels=LAYER_KERNEL_TEMPLATE[:kernels_per_layer],
            epilogue_aux=fixed - min_fixed,
            reduce_batches=reduce_batches,
        )

    def nodes_for_batch(self, batch_size: int) -> int:
        """Graph node count for one captured batch size."""
        template = self.kernel_template()
        base = (self.num_layers * len(template.layer_kernels)
                + template.fixed_kernels)
        return base + (1 if batch_size in template.reduce_batches else 0)

    @property
    def num_params(self) -> float:
        """Approximate parameter count (fp16 storage)."""
        return self.param_bytes / 2.0

    def weight_buffer_count(self) -> int:
        """Number of weight buffers structure initialization allocates."""
        template = self.kernel_template()
        per_layer = sum(1 for k in template.layer_kernels
                        if k in WEIGHTED_LAYER_KERNELS)
        return self.num_layers * per_layer + 3   # + embed, final_norm, lm_head
