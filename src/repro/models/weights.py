"""Simulated model checkpoints.

A checkpoint is identified by the model's ``checkpoint_seed``: weight payload
matrices are generated deterministically from (seed, buffer key), so every
process that "loads" a model gets bit-identical weights — the invariant that
lets Medusa skip re-saving model-parameter buffer contents (§4.3: "the model
parameters are already prepared before capturing").

Declared byte sizes split the paper's parameter size across the model's
weight buffers, so device-memory accounting happens at real-model scale.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.models.config import (
    EPILOGUE_BASE_KERNELS,
    WEIGHTED_LAYER_KERNELS,
    ModelConfig,
)
from repro.simgpu.kernels import PAYLOAD_DIM
from repro.utils.rng import SeedSequence


def weight_buffer_keys(config: ModelConfig) -> List[str]:
    """Deterministic allocation order of every weight buffer.

    Layers are initialized sequentially (paper §3: "the control flow would
    also allocate each layer's data buffers in order"), then the
    prologue/epilogue weights.
    """
    template = config.kernel_template()
    keys: List[str] = []
    for layer in range(config.num_layers):
        for kernel_key in template.layer_kernels:
            if kernel_key in WEIGHTED_LAYER_KERNELS:
                keys.append(f"layer{layer:03d}.{kernel_key}.weight")
    keys.append("embed_tokens.weight")
    keys.append("final_layernorm.weight")
    keys.append("lm_head.weight")
    return keys


def declared_sizes(config: ModelConfig) -> Dict[str, int]:
    """Split ``param_bytes`` across the weight buffers (first gets remainder)."""
    keys = weight_buffer_keys(config)
    share = config.param_bytes // len(keys)
    sizes = {key: share for key in keys}
    sizes[keys[0]] += config.param_bytes - share * len(keys)
    return sizes


class CheckpointStore:
    """Deterministic weight payload source for all models."""

    def payload(self, config: ModelConfig, key: str) -> np.ndarray:
        rng = SeedSequence(config.checkpoint_seed).generator("weights", key)
        matrix = rng.normal(scale=0.5, size=(PAYLOAD_DIM, PAYLOAD_DIM))
        # Keep norms bounded so deep stacks stay numerically tame.
        return matrix / max(1.0, np.linalg.norm(matrix, 2))

    def iter_payloads(self, config: ModelConfig) -> Iterator[Tuple[str, np.ndarray]]:
        for key in weight_buffer_keys(config):
            yield key, self.payload(config, key)


class FileCheckpointStore(CheckpointStore):
    """Checkpoints persisted as sharded files on disk.

    Mirrors the original artifact's ``--save_tensor`` step, which writes
    model parameters to the SSDs before any serving: ``save_checkpoint``
    shards the weight payloads into ``.npz`` files plus a manifest;
    ``iter_payloads`` then streams them back from disk in allocation order.
    """

    SHARD_SIZE = 64   # weight tensors per .npz shard

    def __init__(self, root):
        import pathlib
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _model_dir(self, config: ModelConfig):
        import re
        return self.root / re.sub(r"[^A-Za-z0-9._-]+", "_", config.name)

    def save_checkpoint(self, config: ModelConfig) -> int:
        """Write the model's weights to disk; returns total payload bytes."""
        import json
        model_dir = self._model_dir(config)
        model_dir.mkdir(parents=True, exist_ok=True)
        keys = weight_buffer_keys(config)
        shards = []
        total = 0
        for shard_index in range(0, len(keys), self.SHARD_SIZE):
            shard_keys = keys[shard_index:shard_index + self.SHARD_SIZE]
            shard_name = f"shard-{shard_index // self.SHARD_SIZE:04d}.npz"
            arrays = {key: self.payload(config, key) for key in shard_keys}
            np.savez(model_dir / shard_name, **arrays)
            total += sum(a.nbytes for a in arrays.values())
            shards.append({"file": shard_name, "keys": shard_keys})
        manifest = {
            "model": config.name,
            "checkpoint_seed": config.checkpoint_seed,
            "param_bytes": config.param_bytes,
            "shards": shards,
        }
        (model_dir / "manifest.json").write_text(json.dumps(manifest))
        return total

    def is_saved(self, config: ModelConfig) -> bool:
        return (self._model_dir(config) / "manifest.json").exists()

    def iter_payloads(self, config: ModelConfig
                      ) -> Iterator[Tuple[str, np.ndarray]]:
        """Stream weights back from the saved shards, allocation order."""
        import json
        from repro.errors import ArtifactError
        manifest_path = self._model_dir(config) / "manifest.json"
        if not manifest_path.exists():
            raise ArtifactError(
                f"no checkpoint for {config.name} under {self.root}; run "
                f"save_checkpoint first (the artifact's --save_tensor step)")
        manifest = json.loads(manifest_path.read_text())
        if manifest["checkpoint_seed"] != config.checkpoint_seed:
            raise ArtifactError(
                f"checkpoint for {config.name} was written from seed "
                f"{manifest['checkpoint_seed']}, config has "
                f"{config.checkpoint_seed}")
        for shard in manifest["shards"]:
            with np.load(self._model_dir(config) / shard["file"]) as arrays:
                for key in shard["keys"]:
                    yield key, arrays[key]
