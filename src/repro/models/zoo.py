"""The paper's ten models (Table 1) and tiny configurations for tests.

Parameter sizes and total CUDA-graph node counts are taken verbatim from
Table 1; layer counts, hidden sizes, and vocabulary sizes are the real
published architectures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import InvalidValueError
from repro.models.config import ModelConfig

GB = 1024**3


def _gb(value: float) -> int:
    return int(value * GB)


PAPER_MODELS: Tuple[ModelConfig, ...] = (
    ModelConfig(name="Falcon-7B", family="falcon", param_bytes=_gb(13.4),
                num_layers=32, hidden_size=4544, vocab_size=65024,
                total_graph_nodes=14406, checkpoint_seed=101),
    ModelConfig(name="Llama2-7B", family="llama", param_bytes=_gb(12.6),
                num_layers=32, hidden_size=4096, vocab_size=32000,
                total_graph_nodes=12518, checkpoint_seed=102),
    ModelConfig(name="Llama2-13B", family="llama", param_bytes=_gb(24.2),
                num_layers=40, hidden_size=5120, vocab_size=32000,
                total_graph_nodes=16150, checkpoint_seed=103),
    ModelConfig(name="Qwen1.5-0.5B", family="qwen", param_bytes=_gb(1.2),
                num_layers=24, hidden_size=1024, vocab_size=151936,
                total_graph_nodes=9118, checkpoint_seed=104),
    ModelConfig(name="Qwen1.5-1.8B", family="qwen", param_bytes=_gb(3.4),
                num_layers=24, hidden_size=2048, vocab_size=151936,
                total_graph_nodes=9550, checkpoint_seed=105),
    ModelConfig(name="Qwen1.5-4B", family="qwen", param_bytes=_gb(7.4),
                num_layers=40, hidden_size=2560, vocab_size=151936,
                total_graph_nodes=16150, checkpoint_seed=106),
    ModelConfig(name="Qwen1.5-7B", family="qwen", param_bytes=_gb(14.4),
                num_layers=32, hidden_size=4096, vocab_size=151936,
                total_graph_nodes=12902, checkpoint_seed=107),
    ModelConfig(name="Qwen1.5-14B", family="qwen", param_bytes=_gb(26.4),
                num_layers=40, hidden_size=5120, vocab_size=152064,
                total_graph_nodes=16350, checkpoint_seed=108),
    ModelConfig(name="Yi-6B", family="yi", param_bytes=_gb(11.3),
                num_layers=32, hidden_size=4096, vocab_size=64000,
                total_graph_nodes=12902, checkpoint_seed=109),
    ModelConfig(name="Yi-9B", family="yi", param_bytes=_gb(16.4),
                num_layers=48, hidden_size=4096, vocab_size=64000,
                total_graph_nodes=19318, checkpoint_seed=110),
)

#: Small configurations used throughout the test suite: real structure,
#: few layers, few batch sizes, megabyte-scale "weights".
TINY_MODELS: Tuple[ModelConfig, ...] = (
    ModelConfig(name="Tiny-2L", family="tiny", param_bytes=16 * 1024**2,
                num_layers=2, hidden_size=64, vocab_size=256,
                total_graph_nodes=3 * (2 * 10 + 5) + 1,
                capture_batch_sizes=(1, 2, 4), checkpoint_seed=7,
                max_seq_len=128),
    ModelConfig(name="Tiny-4L", family="tiny", param_bytes=64 * 1024**2,
                num_layers=4, hidden_size=128, vocab_size=512,
                total_graph_nodes=4 * (4 * 11 + 6) + 2,
                capture_batch_sizes=(1, 2, 4, 8), checkpoint_seed=8,
                max_seq_len=256),
    # Exercises the full 13-kernel layer template (Falcon-style wide layers).
    ModelConfig(name="Tiny-Wide", family="tiny", param_bytes=24 * 1024**2,
                num_layers=2, hidden_size=96, vocab_size=384,
                total_graph_nodes=3 * (2 * 13 + 7) + 2,
                capture_batch_sizes=(1, 2, 8), checkpoint_seed=9,
                max_seq_len=128),
)

_BY_NAME: Dict[str, ModelConfig] = {
    config.name: config for config in PAPER_MODELS + TINY_MODELS
}


def get_model_config(name: str) -> ModelConfig:
    """Look up a model by name (paper zoo + tiny test configurations)."""
    config = _BY_NAME.get(name)
    if config is None:
        known = ", ".join(sorted(_BY_NAME))
        raise InvalidValueError(f"unknown model {name!r}; known: {known}")
    return config


def paper_model_names() -> List[str]:
    """The ten Table 1 model names, in the paper's order."""
    return [config.name for config in PAPER_MODELS]
