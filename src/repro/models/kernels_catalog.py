"""Per-model kernel catalogs: the libraries a model's forwarding launches.

Each model gets three simulated libraries, mirroring a vLLM deployment:

- ``libtorch_sim``  — visible elementwise/norm/embedding kernels (no init);
- ``libvllm_sim``   — visible rotary/paged-attention/reduce kernels;
- ``libcublas_sim`` — *hidden* GEMM kernels reachable only through the
  exported ``cublasGemmEx`` host entry; the library performs one-time
  initialization (implicit synchronization) on first use, and its ``qkv``
  GEMM additionally needs per-kernel magic workspace buffers (§4.3).

Kernel (mangled) names embed the model slug, so every model's graphs carry
distinct symbols, as different model binaries would.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import InvalidValueError
from repro.models.config import (
    EPILOGUE_BASE_KERNELS,
    LAYER_KERNEL_TEMPLATE,
    PROLOGUE_KERNELS,
    ModelConfig,
)
from repro.simgpu.kernels import KernelSpec, ParamKind, ParamSpec
from repro.simgpu.libraries import DynamicLibrary, LibraryCatalog
from repro.simgpu.modules import CudaModule

PTR = ParamKind.POINTER
C32 = ParamKind.CONST32
C64 = ParamKind.CONST64

LIBTORCH = "libtorch_sim"
LIBVLLM = "libvllm_sim"
LIBCUBLAS = "libcublas_sim"

#: (library, module, op, roles) per template kernel.  Roles list the pointer
#: and constant parameters in ABI order; "magic" expands to the 4-slot magic
#: suffix.  hidden/needs_magic are per-entry flags.
_KERNEL_SHAPES: Dict[str, dict] = {
    "input_layernorm": dict(library=LIBTORCH, module="mod_norm",
                            op="layernorm", weighted=True),
    "qkv_proj": dict(library=LIBCUBLAS, module="mod_gemm_qkv",
                     op="gemm_magic", weighted=True, hidden=True,
                     needs_magic=True, host_entry="cublasGemmEx"),
    "rotary_embed": dict(library=LIBVLLM, module="mod_rope", op="rotary"),
    "paged_attention": dict(library=LIBVLLM, module="mod_attn",
                            op="attention", kv=True),
    "o_proj": dict(library=LIBCUBLAS, module="mod_gemm_attn", op="gemm",
                   weighted=True, hidden=True, host_entry="cublasGemmEx"),
    "attn_residual": dict(library=LIBTORCH, module="mod_elementwise",
                          op="residual_add", binary=True),
    "post_layernorm": dict(library=LIBTORCH, module="mod_norm",
                           op="layernorm", weighted=True),
    "gate_up_proj": dict(library=LIBCUBLAS, module="mod_gemm_mlp", op="gemm",
                         weighted=True, hidden=True,
                         host_entry="cublasGemmEx"),
    "silu_and_mul": dict(library=LIBTORCH, module="mod_act", op="silu_mul",
                         binary=True),
    "down_proj": dict(library=LIBCUBLAS, module="mod_gemm_mlp", op="gemm",
                      weighted=True, hidden=True, host_entry="cublasGemmEx"),
    "mlp_residual": dict(library=LIBTORCH, module="mod_elementwise",
                         op="residual_add", binary=True),
    "attn_output_scale": dict(library=LIBTORCH, module="mod_elementwise",
                              op="copy"),
    "extra_layernorm": dict(library=LIBTORCH, module="mod_norm",
                            op="layernorm", weighted=True),
    "embed_tokens": dict(library=LIBTORCH, module="mod_embed", op="embed",
                         weighted=True),
    "final_layernorm": dict(library=LIBTORCH, module="mod_norm",
                            op="layernorm", weighted=True),
    "lm_head": dict(library=LIBCUBLAS, module="mod_gemm_mlp", op="gemm",
                    weighted=True, hidden=True, host_entry="cublasGemmEx"),
    "sample": dict(library=LIBTORCH, module="mod_sample", op="sample"),
    "aux": dict(library=LIBTORCH, module="mod_aux", op="copy"),
    "batch_reduce": dict(library=LIBVLLM, module="mod_reduce", op="copy"),
}


def model_slug(config: ModelConfig) -> str:
    """A lowercase identifier embedded in the model's kernel symbols."""
    return re.sub(r"[^a-z0-9]", "", config.name.lower())


def mangled_name(config: ModelConfig, kernel_key: str) -> str:
    """A mangled-looking, model-unique kernel symbol."""
    slug = model_slug(config)
    return f"_ZN{len(slug)}{slug}{len(kernel_key)}{kernel_key}Ev"


def _param_specs(shape: dict) -> Tuple[ParamSpec, ...]:
    params: List[ParamSpec] = [ParamSpec(PTR, "input")]
    if shape.get("binary"):
        params.append(ParamSpec(PTR, "input_b"))
    if shape.get("weighted"):
        params.append(ParamSpec(PTR, "weight"))
    if shape.get("kv"):
        params.append(ParamSpec(PTR, "kv"))
    params.append(ParamSpec(PTR, "output"))
    if shape.get("needs_magic"):
        params.extend((
            ParamSpec(PTR, "magic_a"),
            ParamSpec(PTR, "magic_b"),
            ParamSpec(C32, "magic_a_expected"),
            ParamSpec(C32, "magic_b_expected"),
            ParamSpec(C64, "seed"),
        ))
    op = shape["op"]
    if op == "layernorm":
        params.append(ParamSpec(C32, "n"))
    elif op == "rotary":
        params.append(ParamSpec(C32, "rot_steps"))
    elif op == "attention":
        params.append(ParamSpec(C32, "layer_idx"))
    return tuple(params)


def kernel_spec(config: ModelConfig, kernel_key: str) -> KernelSpec:
    """The KernelSpec of one template kernel instantiated for ``config``."""
    base_key = "aux" if kernel_key.startswith("aux_") else kernel_key
    shape = _KERNEL_SHAPES.get(base_key)
    if shape is None:
        raise InvalidValueError(f"unknown kernel template key {kernel_key!r}")
    return KernelSpec(
        name=mangled_name(config, kernel_key),
        library=shape["library"],
        module=shape["module"],
        op=shape["op"],
        params=_param_specs(shape),
        hidden=bool(shape.get("hidden")),
        host_entry=shape.get("host_entry"),
        needs_magic=bool(shape.get("needs_magic")),
    )


def all_kernel_keys(config: ModelConfig) -> List[str]:
    """Every kernel key this model can launch (template order)."""
    template = config.kernel_template()
    keys = list(PROLOGUE_KERNELS)
    keys.extend(template.layer_kernels)
    keys.extend(EPILOGUE_BASE_KERNELS)
    keys.extend(f"aux_{i:02d}" for i in range(template.epilogue_aux))
    if template.reduce_batches:
        keys.append("batch_reduce")
    return keys


def build_catalog(config: ModelConfig) -> LibraryCatalog:
    """Build the three-library catalog for one model."""
    by_library_module: Dict[Tuple[str, str], List[KernelSpec]] = {}
    for key in all_kernel_keys(config):
        spec = kernel_spec(config, key)
        by_library_module.setdefault((spec.library, spec.module), []).append(spec)

    libraries = []
    for library_name, requires_init in ((LIBTORCH, False), (LIBVLLM, False),
                                        (LIBCUBLAS, True)):
        modules = tuple(
            CudaModule(module_name, library_name, tuple(specs))
            for (lib, module_name), specs in sorted(by_library_module.items())
            if lib == library_name)
        if modules:
            libraries.append(DynamicLibrary(
                name=library_name, modules=modules,
                requires_init=requires_init))
    return LibraryCatalog(tuple(libraries))
