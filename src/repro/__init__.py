"""Reproduction of "Medusa: Accelerating Serverless LLM Inference with
Materialization" (ASPLOS '25) on a simulated CUDA substrate.

Public API tour:

- :mod:`repro.simgpu` -- the simulated CUDA driver/GPU (allocator with
  non-deterministic addresses, ASLR'd libraries with hidden kernels, stream
  capture, graph replay, analytic cost model);
- :mod:`repro.models` -- the paper's ten models (Table 1) plus tiny test
  configurations;
- :mod:`repro.engine` -- the vLLM-like engine: five-stage loading phase,
  KV cache blocks, capture runner, serving with/without CUDA graphs;
- :mod:`repro.core` -- **Medusa itself**: offline materialization (indirect
  index pointers, copy-free contents classification, kernel name tables)
  and online restoration (allocation replay, first-layer triggering,
  module enumeration), plus output validation;
- :mod:`repro.faults` -- deterministic fault injection for every layer the
  restore crosses, plus the graceful-degradation ladder (partial ->
  recapture -> eager) that keeps a faulted cold start serving;
- :mod:`repro.serverless` -- the discrete-event cluster simulator producing
  the paper's TTFT tail / throughput figures.

Quickstart::

    from repro import LLMEngine, Strategy, run_offline, medusa_cold_start

    vllm = LLMEngine("Qwen1.5-4B", Strategy.VLLM).cold_start()
    artifact, offline_report = run_offline("Qwen1.5-4B")
    engine, medusa = medusa_cold_start("Qwen1.5-4B", artifact)
    print(vllm.loading_time, "->", medusa.loading_time)
"""

from repro.core import (
    ArtifactStore,
    LazyArtifact,
    MaterializedModel,
    OfflinePhase,
    OfflineReport,
    OnlineRestorer,
    VectorizedRestorer,
    cold_start_for,
    load_binary,
    medusa_cold_start,
    prepare_medusa_cold_start,
    run_offline,
    save_binary,
)
from repro.core.validation import validate_restoration
from repro.engine import ColdStartReport, LLMEngine, Strategy
from repro.faults import (
    DegradationPolicy,
    DegradationReport,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    Rung,
)
from repro.models import (
    PAPER_MODELS,
    TINY_MODELS,
    Model,
    ModelConfig,
    get_model_config,
    paper_model_names,
)
from repro.serverless import (
    ClusterSimulator,
    ServingCostModel,
    ShareGPTWorkload,
    SimulationConfig,
)
from repro.simgpu import CostModel, CudaProcess, ExecutionMode, GpuProperties

__version__ = "1.0.0"

__all__ = [
    "ArtifactStore",
    "ClusterSimulator",
    "ColdStartReport",
    "CostModel",
    "CudaProcess",
    "DegradationPolicy",
    "DegradationReport",
    "ExecutionMode",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "GpuProperties",
    "LLMEngine",
    "LazyArtifact",
    "Rung",
    "MaterializedModel",
    "Model",
    "ModelConfig",
    "OfflinePhase",
    "OfflineReport",
    "OnlineRestorer",
    "PAPER_MODELS",
    "ServingCostModel",
    "ShareGPTWorkload",
    "SimulationConfig",
    "Strategy",
    "TINY_MODELS",
    "VectorizedRestorer",
    "get_model_config",
    "cold_start_for",
    "load_binary",
    "medusa_cold_start",
    "paper_model_names",
    "prepare_medusa_cold_start",
    "run_offline",
    "save_binary",
    "validate_restoration",
]
