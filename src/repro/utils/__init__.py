"""Small shared utilities: deterministic RNG streams, ids, stats."""

from repro.utils.rng import SeedSequence, derive_seed
from repro.utils.stats import mean, percentile, summarize

__all__ = ["SeedSequence", "derive_seed", "mean", "percentile", "summarize"]
