"""Deterministic, hierarchical random streams.

Every source of simulated non-determinism (malloc addresses, ASLR bases,
arrival processes, request lengths) draws from a named child stream derived
from one root seed.  Two process launches with *different* seeds therefore
see different addresses — the non-determinism Medusa must defeat — while the
whole test suite stays reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    The derivation is stable across runs and platforms (SHA-256 based), so a
    simulation seeded with ``root_seed`` always unfolds identically.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode())
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode())
    return int.from_bytes(hasher.digest()[:8], "little")


class SeedSequence:
    """A named tree of numpy Generators rooted at a single seed."""

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def child(self, *names: object) -> "SeedSequence":
        return SeedSequence(derive_seed(self.root_seed, *names))

    def generator(self, *names: object) -> np.random.Generator:
        return np.random.default_rng(derive_seed(self.root_seed, *names))
