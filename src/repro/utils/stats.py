"""Latency statistics used by the serving metrics and benchmark reports."""

from __future__ import annotations

from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) using linear interpolation.

    Implemented directly (rather than via numpy) so the serverless simulator
    has no array dependency on its hot path and so the behaviour is pinned
    for the property tests.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """A standard latency summary: count/mean/p50/p90/p99/max."""
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "p50": percentile(values, 50.0),
        "p90": percentile(values, 90.0),
        "p99": percentile(values, 99.0),
        "max": max(values) if values else 0.0,
    }
