"""Shared fixtures: a small hand-built library catalog and processes."""

from __future__ import annotations

import pytest

from repro.simgpu.kernels import KernelSpec, ParamKind, ParamSpec
from repro.simgpu.libraries import DynamicLibrary, LibraryCatalog
from repro.simgpu.modules import CudaModule
from repro.simgpu.process import CudaProcess, ExecutionMode

PTR = ParamKind.POINTER
C32 = ParamKind.CONST32
C64 = ParamKind.CONST64


def make_small_catalog() -> LibraryCatalog:
    """Two libraries: a visible 'torch-like' one and a hidden 'cublas-like' one."""
    norm = KernelSpec(
        name="_Z9layernormPfS_S_i", library="libtorch_sim",
        module="mod_norm", op="layernorm",
        params=(
            ParamSpec(PTR, "input"),
            ParamSpec(PTR, "weight"),
            ParamSpec(PTR, "output"),
            ParamSpec(C32, "n"),
        ))
    add = KernelSpec(
        name="_Z12residual_addPfS_S_", library="libtorch_sim",
        module="mod_elementwise", op="residual_add",
        params=(
            ParamSpec(PTR, "input"),
            ParamSpec(PTR, "input_b"),
            ParamSpec(PTR, "output"),
        ))
    copy = KernelSpec(
        name="_Z11copy_kernelPfS_", library="libtorch_sim",
        module="mod_elementwise", op="copy",
        params=(
            ParamSpec(PTR, "input"),
            ParamSpec(PTR, "output"),
        ))
    libtorch = DynamicLibrary(
        name="libtorch_sim",
        modules=(
            CudaModule("mod_norm", "libtorch_sim", (norm,)),
            CudaModule("mod_elementwise", "libtorch_sim", (add, copy)),
        ),
        requires_init=False)

    gemm_hidden = KernelSpec(
        name="_ZN7cublas_sim4gemmEv", library="libcublas_sim",
        module="mod_gemm", op="gemm_magic", hidden=True,
        host_entry="cublasGemmEx",
        needs_magic=True,
        params=(
            ParamSpec(PTR, "input"),
            ParamSpec(PTR, "weight"),
            ParamSpec(PTR, "output"),
            ParamSpec(PTR, "magic_a"),
            ParamSpec(PTR, "magic_b"),
            ParamSpec(C32, "magic_a_expected"),
            ParamSpec(C32, "magic_b_expected"),
            ParamSpec(C64, "seed"),
        ))
    gemm_plain = KernelSpec(
        name="_ZN7cublas_sim10gemm_plainEv", library="libcublas_sim",
        module="mod_gemm", op="gemm", hidden=True,
        host_entry="cublasGemmEx",
        params=(
            ParamSpec(PTR, "input"),
            ParamSpec(PTR, "weight"),
            ParamSpec(PTR, "output"),
        ))
    libcublas = DynamicLibrary(
        name="libcublas_sim",
        modules=(CudaModule("mod_gemm", "libcublas_sim",
                            (gemm_hidden, gemm_plain)),),
        requires_init=True)
    return LibraryCatalog((libtorch, libcublas))


@pytest.fixture
def catalog() -> LibraryCatalog:
    return make_small_catalog()


@pytest.fixture
def process(catalog) -> CudaProcess:
    return CudaProcess(seed=1234, catalog=catalog, mode=ExecutionMode.COMPUTE)


@pytest.fixture
def process_factory(catalog):
    def factory(seed: int, mode: ExecutionMode = ExecutionMode.COMPUTE,
                name: str = "proc") -> CudaProcess:
        return CudaProcess(seed=seed, catalog=catalog, mode=mode, name=name)
    return factory


# ---------------------------------------------------------------------------
# Tiny-model engine/artifact fixtures (shared, expensive ones session-scoped)
# ---------------------------------------------------------------------------

from repro.simgpu.costmodel import CostModel, GpuProperties  # noqa: E402


def tiny_cost_model() -> CostModel:
    """A small simulated GPU so tiny-model KV block counts stay small."""
    return CostModel(gpu=GpuProperties(name="Tiny-GPU",
                                       total_memory_bytes=256 * 1024**2))


@pytest.fixture
def tiny_cm() -> CostModel:
    return tiny_cost_model()


@pytest.fixture(scope="session")
def tiny2l_artifact():
    """Offline artifact for Tiny-2L, materialized once per test session."""
    from repro.core.offline import run_offline
    from repro.simgpu.process import ExecutionMode
    artifact, report = run_offline("Tiny-2L", seed=1101,
                                   mode=ExecutionMode.COMPUTE,
                                   cost_model=tiny_cost_model())
    return artifact, report


@pytest.fixture(scope="session")
def tiny4l_artifact():
    from repro.core.offline import run_offline
    from repro.simgpu.process import ExecutionMode
    artifact, report = run_offline("Tiny-4L", seed=1102,
                                   mode=ExecutionMode.COMPUTE,
                                   cost_model=tiny_cost_model())
    return artifact, report
