"""Smoke tests: the shipped examples must actually run.

The two slowest examples (serverless_burst, tensor_parallel) are exercised
indirectly by the serverless/multigpu suites; the rest run here end to end
as subprocesses, the way a user would invoke them.
"""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=420, cwd=REPO)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_materialize_and_restore(self):
        output = run_example("materialize_and_restore.py")
        assert "indirect index pointer" in output
        assert "max abs error: 0.0" in output

    def test_custom_model(self):
        output = run_example("custom_model.py")
        assert "Loading-phase reduction vs vLLM" in output

    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Loading-phase reduction" in output
        assert "16150 CUDA graph nodes" in output

    def test_profile_coldstart(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        output = run_example("profile_coldstart.py", str(trace_path))
        assert trace_path.exists()
        assert "Medusa" in output

    def test_all_examples_have_main_guards(self):
        for path in EXAMPLES.glob("*.py"):
            text = path.read_text()
            assert '__name__ == "__main__"' in text, path.name
            assert text.startswith("#!/usr/bin/env python"), path.name
