"""Stream capture semantics: warm-up requirement, recording, replay."""

import numpy as np
import pytest

from repro.errors import CaptureViolationError, IllegalMemoryAccessError
from repro.simgpu.graph import GraphExecMeta
from repro.simgpu.process import ExecutionMode

from tests.simgpu.helpers import (
    launch_add,
    launch_gemm_magic,
    launch_norm,
    params_for,
    rand_payload,
)


def alloc(process, seed=None, tag="act"):
    payload = rand_payload(seed) if seed is not None else None
    return process.malloc(128, tag=tag, payload=payload)


class TestWarmUpRequirement:
    def test_capturing_uninitialized_library_fails(self, process):
        """First cuBLAS call inits the library -> sync -> capture violation."""
        x = alloc(process, 1)
        w = alloc(process, 2)
        out = alloc(process)
        process.default_stream.begin_capture()
        with pytest.raises(CaptureViolationError):
            launch_gemm_magic(process, x, w, out)
        assert not process.default_stream.is_capturing  # capture aborted

    def test_capturing_unloaded_module_fails(self, process):
        x = alloc(process, 1)
        w = alloc(process, 2)
        out = alloc(process)
        process.default_stream.begin_capture()
        with pytest.raises(CaptureViolationError):
            launch_norm(process, x, w, out)

    def test_capture_succeeds_after_warm_up(self, process):
        x = alloc(process, 1)
        w = alloc(process, 2)
        out = alloc(process)
        launch_norm(process, x, w, out)          # warm-up
        process.default_stream.begin_capture()
        launch_norm(process, x, w, out)
        graph = process.default_stream.end_capture()
        assert graph.num_nodes == 1

    def test_sync_during_capture_fails(self, process):
        process.default_stream.begin_capture()
        with pytest.raises(CaptureViolationError):
            process.synchronize()

    def test_nested_capture_fails(self, process):
        process.default_stream.begin_capture()
        with pytest.raises(CaptureViolationError):
            process.default_stream.begin_capture()

    def test_end_capture_without_begin_fails(self, process):
        with pytest.raises(CaptureViolationError):
            process.default_stream.end_capture()


class TestCapturedGraph:
    def _warmed_chain(self, process):
        """x --norm--> h --gemm--> y --add(x)--> out, all warmed up."""
        x = alloc(process, 1)
        w_norm = alloc(process, 2)
        w_gemm = alloc(process, 3)
        h = alloc(process)
        y = alloc(process)
        out = alloc(process)
        launch_norm(process, x, w_norm, h)
        launch_gemm_magic(process, h, w_gemm, y)
        launch_add(process, y, x, out)
        return x, w_norm, w_gemm, h, y, out

    def test_capture_records_kernels_not_executes(self, process):
        x, w_norm, w_gemm, h, y, out = self._warmed_chain(process)
        h.payload = None  # wipe intermediate
        process.default_stream.begin_capture()
        launch_norm(process, x, w_norm, h)
        graph = process.default_stream.end_capture()
        assert graph.num_nodes == 1
        assert h.payload is None  # capture did not execute the kernel

    def test_capture_records_dependencies(self, process):
        x, w_norm, w_gemm, h, y, out = self._warmed_chain(process)
        process.default_stream.begin_capture()
        launch_norm(process, x, w_norm, h)
        launch_gemm_magic(process, h, w_gemm, y)
        launch_add(process, y, x, out)
        graph = process.default_stream.end_capture()
        assert graph.num_nodes == 3
        assert (0, 1) in graph.edges  # h produced by 0, consumed by 1
        assert (1, 2) in graph.edges  # y produced by 1, consumed by 2

    def test_replay_matches_eager_output(self, process):
        x, w_norm, w_gemm, h, y, out = self._warmed_chain(process)
        eager_out = out.read().copy()
        process.default_stream.begin_capture(
            GraphExecMeta(param_bytes=1 << 20, num_tokens=1))
        launch_norm(process, x, w_norm, h)
        launch_gemm_magic(process, h, w_gemm, y)
        launch_add(process, y, x, out)
        graph = process.default_stream.end_capture()
        out.payload = np.zeros_like(eager_out)
        exec_graph = graph.instantiate(process)
        exec_graph.replay()
        np.testing.assert_allclose(out.read(), eager_out)

    def test_replay_after_free_is_illegal_access(self, process):
        """PyTorch must keep capture-referenced buffers alive (§2.2)."""
        x, w_norm, w_gemm, h, y, out = self._warmed_chain(process)
        process.default_stream.begin_capture()
        launch_norm(process, x, w_norm, h)
        graph = process.default_stream.end_capture()
        process.free(x.address)
        exec_graph = graph.instantiate(process)
        with pytest.raises(IllegalMemoryAccessError):
            exec_graph.replay()

    def test_magic_buffers_checked_at_replay(self, process):
        """Corrupting a permanent magic buffer silently corrupts output."""
        x, w_norm, w_gemm, h, y, out = self._warmed_chain(process)
        process.default_stream.begin_capture()
        launch_gemm_magic(process, h, w_gemm, y)
        graph = process.default_stream.end_capture()
        exec_graph = graph.instantiate(process)
        exec_graph.replay()
        good = y.read().copy()
        # Find the magic buffer through the node's own raw params.
        spec = process.catalog.kernel("_ZN7cublas_sim4gemmEv")
        magic_index = spec.param_index("magic_a")
        magic_addr = graph.nodes[0].params[magic_index].value
        process.allocator.resolve(magic_addr).write(np.full((1, 1), 999.0))
        exec_graph.replay()
        assert not np.allclose(y.read(), good)

    def test_timing_mode_replay_skips_compute(self, process_factory):
        process = process_factory(seed=5, mode=ExecutionMode.TIMING)
        x = alloc(process)
        w = alloc(process)
        out = alloc(process)
        launch_norm(process, x, w, out)     # warm-up, no compute in TIMING
        process.default_stream.begin_capture()
        launch_norm(process, x, w, out)
        graph = process.default_stream.end_capture()
        before = process.clock.now
        graph.instantiate(process).replay()
        assert process.clock.now > before
        assert out.payload is None
