"""Unit tests for the simulated clock."""

import pytest

from repro.errors import InvalidValueError
from repro.simgpu.clock import SimClock, Span
from repro.sim import Span as KernelSpan


class TestAdvance:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_rejects_negative_with_repo_error(self):
        # Routed through the event kernel's monotonicity check: the repo's
        # InvalidValueError, not a bare ValueError.
        clock = SimClock()
        with pytest.raises(InvalidValueError):
            clock.advance(-0.1)

    def test_span_type_is_the_kernel_span(self):
        assert Span is KernelSpan

    def test_advance_to_never_moves_backwards(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0


class TestSpans:
    def test_span_records_duration(self):
        clock = SimClock()
        with clock.span("stage"):
            clock.advance(2.0)
        span = clock.last("stage")
        assert span is not None
        assert span.duration == pytest.approx(2.0)

    def test_total_sums_repeated_spans(self):
        clock = SimClock()
        for _ in range(3):
            with clock.span("step"):
                clock.advance(1.0)
        assert clock.total("step") == pytest.approx(3.0)
        assert len(clock.spans_named("step")) == 3

    def test_last_returns_none_for_unknown_label(self):
        assert SimClock().last("nope") is None

    def test_nested_spans(self):
        clock = SimClock()
        with clock.span("outer"):
            clock.advance(1.0)
            with clock.span("inner"):
                clock.advance(2.0)
        assert clock.last("inner").duration == pytest.approx(2.0)
        assert clock.last("outer").duration == pytest.approx(3.0)
