"""CUDA events and multi-stream (fork/join) capture tests."""

import numpy as np
import pytest

from repro.errors import CaptureViolationError, InvalidValueError
from repro.simgpu.stream import CudaEvent, Stream

from tests.simgpu.helpers import launch_add, launch_norm, params_for, rand_payload


def alloc(process, seed=None):
    payload = rand_payload(seed) if seed is not None else None
    return process.malloc(128, tag="act", payload=payload)


def launch_on(process, stream, kernel_name, roles):
    spec = process.catalog.kernel(kernel_name)
    stream.launch_kernel(spec, params_for(spec, roles))


class TestEvents:
    def test_wait_on_unrecorded_event_rejected(self, process):
        stream = process.default_stream
        with pytest.raises(InvalidValueError):
            stream.wait_event(CudaEvent("e"))

    def test_record_and_wait_outside_capture(self, process):
        stream = process.default_stream
        event = CudaEvent("e")
        stream.record_event(event)
        stream.wait_event(event)   # ordering no-op outside capture

    def test_wait_on_uncaptured_event_during_capture_violates(self, process):
        stream = process.default_stream
        event = CudaEvent("e")
        stream.record_event(event)           # recorded outside any capture
        stream.begin_capture()
        with pytest.raises(CaptureViolationError):
            stream.wait_event(event)
        assert not stream.is_capturing       # capture aborted


class TestForkJoinCapture:
    def _warm(self, process):
        x = alloc(process, 1)
        w = alloc(process, 2)
        mid_a = alloc(process)
        mid_b = alloc(process)
        out = alloc(process)
        launch_norm(process, x, w, mid_a)    # warm up norm module
        launch_add(process, x, w, mid_b)     # warm up elementwise module
        return x, w, mid_a, mid_b, out

    def test_fork_join_produces_diamond_dependencies(self, process):
        x, w, mid_a, mid_b, out = self._warm(process)
        main = process.default_stream
        side = Stream(process, name="stream1")

        main.begin_capture()
        launch_on(process, main, "_Z9layernormPfS_S_i",
                  {"input": x.address, "weight": w.address,
                   "output": mid_a.address})                      # node 0
        fork = CudaEvent("fork")
        main.record_event(fork)
        side.wait_event(fork)                                     # join capture
        assert side.is_capturing
        launch_on(process, side, "_Z11copy_kernelPfS_",
                  {"input": mid_a.address, "output": mid_b.address})  # node 1
        join = CudaEvent("join")
        side.record_event(join)
        main.wait_event(join)
        launch_on(process, main, "_Z12residual_addPfS_S_",
                  {"input": mid_a.address, "input_b": mid_b.address,
                   "output": out.address})                        # node 2
        graph = main.end_capture()

        assert graph.num_nodes == 3
        assert (0, 1) in graph.edges     # fork: side depends on node 0
        assert (1, 2) in graph.edges     # join: main depends on side's node
        assert not side.is_capturing     # end_capture released everyone

    def test_joined_stream_cannot_end_capture(self, process):
        x, w, mid_a, mid_b, out = self._warm(process)
        main = process.default_stream
        side = Stream(process, name="stream1")
        main.begin_capture()
        launch_on(process, main, "_Z9layernormPfS_S_i",
                  {"input": x.address, "weight": w.address,
                   "output": mid_a.address})
        fork = CudaEvent("fork")
        main.record_event(fork)
        side.wait_event(fork)
        with pytest.raises(CaptureViolationError):
            side.end_capture()
        main.abort_capture()

    def test_fork_join_graph_replays_correctly(self, process):
        x, w, mid_a, mid_b, out = self._warm(process)
        main = process.default_stream
        side = Stream(process, name="stream1")

        # Eager reference for the same three-kernel program.
        launch_norm(process, x, w, mid_a)
        launch_on(process, side, "_Z11copy_kernelPfS_",
                  {"input": mid_a.address, "output": mid_b.address})
        launch_add(process, mid_a, mid_b, out)
        expected = out.read().copy()

        main.begin_capture()
        launch_on(process, main, "_Z9layernormPfS_S_i",
                  {"input": x.address, "weight": w.address,
                   "output": mid_a.address})
        fork = CudaEvent("fork")
        main.record_event(fork)
        side.wait_event(fork)
        launch_on(process, side, "_Z11copy_kernelPfS_",
                  {"input": mid_a.address, "output": mid_b.address})
        join = CudaEvent("join")
        side.record_event(join)
        main.wait_event(join)
        launch_on(process, main, "_Z12residual_addPfS_S_",
                  {"input": mid_a.address, "input_b": mid_b.address,
                   "output": out.address})
        graph = main.end_capture()

        out.payload = np.zeros_like(expected)
        graph.instantiate(process).replay()
        np.testing.assert_allclose(out.read(), expected)
