"""Cost-model formula tests, anchored on the paper's measured numbers."""

import pytest

from repro.models.zoo import get_model_config
from repro.simgpu.costmodel import CostModel, GpuProperties

QWEN4B = get_model_config("Qwen1.5-4B")


@pytest.fixture
def cm():
    return CostModel()


class TestCalibration:
    """The Qwen1.5-4B anchor (Figure 8a: 0.85/0.39/0.21/0.50 s)."""

    def test_structure_init_matches_paper(self, cm):
        assert cm.structure_init_time(QWEN4B.param_bytes) == \
            pytest.approx(0.85, rel=0.02)

    def test_weight_load_matches_paper(self, cm):
        assert cm.weight_load_time(QWEN4B.param_bytes) == \
            pytest.approx(0.39, rel=0.02)

    def test_tokenizer_matches_paper(self, cm):
        assert cm.tokenizer_load_time(QWEN4B.vocab_size) == \
            pytest.approx(0.21, rel=0.05)

    def test_kv_profile_near_half_second(self, cm):
        # Excludes library init / launch overhead, which the engine adds.
        assert 0.35 < cm.kv_profile_time(QWEN4B.param_bytes) < 0.50


class TestFormulas:
    def test_forward_gpu_time_is_memory_bound_at_small_batch(self, cm):
        t1 = cm.forward_gpu_time(QWEN4B.param_bytes, 1)
        t2 = cm.forward_gpu_time(QWEN4B.param_bytes, 2)
        assert t1 == t2  # both memory bound: weight read dominates

    def test_forward_gpu_time_becomes_compute_bound(self, cm):
        small = cm.forward_gpu_time(QWEN4B.param_bytes, 1)
        large = cm.forward_gpu_time(QWEN4B.param_bytes, 4096)
        assert large > small

    def test_graph_beats_eager_per_step(self, cm):
        kernels = QWEN4B.nodes_for_batch(1)
        eager = cm.eager_step_time(QWEN4B.param_bytes, 1, kernels)
        graph = cm.graph_step_time(QWEN4B.param_bytes, 1)
        assert graph < eager
        # Figure 3: up to ~2.4x acceleration.
        assert 1.5 < eager / graph < 3.0

    def test_capture_forward_scales_with_nodes(self, cm):
        assert cm.capture_forward_time(200) == \
            pytest.approx(2 * cm.capture_forward_time(100))

    def test_costs_are_positive(self, cm):
        assert cm.instantiate_time(100) > 0
        assert cm.weight_load_time(1) > 0
        assert cm.structure_init_time(0) > 0


class TestGpuProperties:
    def test_default_is_a100_40gb(self):
        gpu = GpuProperties()
        assert gpu.total_memory_bytes == 40 * 1024**3
        assert "A100" in gpu.name

    def test_custom_memory(self):
        gpu = GpuProperties(total_memory_bytes=1024)
        assert gpu.total_memory_bytes == 1024
