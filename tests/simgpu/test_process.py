"""Process-level tests: pools, magic workspaces, interception, snapshots."""

import numpy as np
import pytest

from repro.errors import IllegalMemoryAccessError
from repro.simgpu.kernels import magic_values
from repro.simgpu.memory import Buffer
from repro.simgpu.process import CudaProcess, ExecutionMode, Interceptor


class TestMemoryPools:
    def test_pools_do_not_share_free_lists(self, process):
        with process.memory_pool("graph"):
            graph_buf = process.malloc(512, tag="act")
            process.pool_free(graph_buf.address)
        default_buf = process.malloc(512, tag="act")
        assert default_buf.address != graph_buf.address

    def test_same_pool_reuses_lifo(self, process):
        with process.memory_pool("graph"):
            first = process.malloc(512)
            process.pool_free(first.address)
            second = process.malloc(512)
        assert second.address == first.address
        assert first.live is False      # superseded

    def test_pool_scope_restores_previous(self, process):
        with process.memory_pool("graph"):
            pass
        buf = process.malloc(256)
        assert buf.pool == "default"

    def test_pool_freed_buffer_still_readable(self, process):
        buf = process.malloc(256, payload=np.ones((2, 2)))
        process.pool_free(buf.address)
        np.testing.assert_array_equal(buf.read(), np.ones((2, 2)))

    def test_empty_cache_releases_pool_freed(self, process):
        buf = process.malloc(256, payload=np.ones((2, 2)))
        process.pool_free(buf.address)
        released = process.empty_cache()
        assert released == 256
        with pytest.raises(IllegalMemoryAccessError):
            process.allocator.resolve(buf.address)


class TestMagicWorkspaces:
    def test_setup_writes_magic_values(self, process):
        spec = process.catalog.kernel("_ZN7cublas_sim4gemmEv")
        addr_a, addr_b = process.setup_magic(spec)
        want_a, want_b = magic_values(spec.name)
        assert process.allocator.resolve(addr_a).read()[0, 0] == want_a
        assert process.allocator.resolve(addr_b).read()[0, 0] == want_b
        assert process.has_magic(spec.name)

    def test_reset_magic_workspaces_frees_and_clears(self, process):
        spec = process.catalog.kernel("_ZN7cublas_sim4gemmEv")
        addr_a, _addr_b = process.setup_magic(spec)
        process.reset_magic_workspaces()
        assert not process.has_magic(spec.name)
        # Buffers went back to the pool: same-size malloc reuses them.
        reused = process.malloc(4)
        assert reused.address in (addr_a, _addr_b)


class TestInterception:
    class _Recorder(Interceptor):
        def __init__(self):
            self.allocs = []
            self.frees = []
            self.empties = 0

        def on_alloc(self, buffer: Buffer):
            self.allocs.append(buffer.alloc_index)

        def on_free(self, buffer: Buffer):
            self.frees.append(buffer.alloc_index)

        def on_empty_cache(self):
            self.empties += 1

    def test_hooks_fire(self, process):
        recorder = self._Recorder()
        process.add_interceptor(recorder)
        buf = process.malloc(256)
        process.pool_free(buf.address)
        process.empty_cache()
        process.remove_interceptor(recorder)
        process.malloc(256)
        assert recorder.allocs == [buf.alloc_index]
        assert recorder.frees == [buf.alloc_index]
        assert recorder.empties == 1

    def test_interception_costs_time(self, process):
        before = process.clock.now
        process.malloc(256)
        assert process.clock.now == before   # no interceptor: free
        process.add_interceptor(self._Recorder())
        process.malloc(256)
        assert process.clock.now > before


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, process):
        buf = process.malloc(256, payload=np.ones((2, 2)))
        snapshot = process.snapshot_payloads()
        buf.write(np.zeros((2, 2)))
        process.restore_payloads(snapshot)
        np.testing.assert_array_equal(buf.read(), np.ones((2, 2)))

    def test_snapshot_handles_uninitialized(self, process):
        buf = process.malloc(256)
        snapshot = process.snapshot_payloads()
        buf.write(np.ones((2, 2)))
        process.restore_payloads(snapshot)
        assert buf.payload is None
