"""Helpers to drive the small test catalog's kernels."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.simgpu.kernels import (
    KernelParam,
    KernelSpec,
    ParamKind,
    magic_values,
)

D = 4


def rand_payload(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(D, D))


def params_for(spec: KernelSpec, role_addresses: dict,
               consts: dict = None) -> List[KernelParam]:
    """Build the flat parameter array for ``spec`` from role→address maps.

    Magic pointer roles default to 0 (the launch path patches them in);
    magic expectation constants default to the kernel's true magic values.
    """
    consts = dict(consts or {})
    want_a, want_b = magic_values(spec.name)
    consts.setdefault("magic_a_expected", want_a)
    consts.setdefault("magic_b_expected", want_b)
    consts.setdefault("seed", 42)
    consts.setdefault("n", D)
    consts.setdefault("rot_steps", 1)
    params = []
    for slot in spec.params:
        if slot.kind is ParamKind.POINTER:
            params.append(KernelParam(slot.size,
                                      role_addresses.get(slot.role, 0)))
        else:
            params.append(KernelParam(slot.size, int(consts[slot.role])))
    return params


def launch_norm(process, input_buf, weight_buf, output_buf):
    spec = process.catalog.kernel("_Z9layernormPfS_S_i")
    process.launch(spec, params_for(spec, {
        "input": input_buf.address,
        "weight": weight_buf.address,
        "output": output_buf.address,
    }))
    return spec


def launch_gemm_magic(process, input_buf, weight_buf, output_buf):
    spec = process.catalog.kernel("_ZN7cublas_sim4gemmEv")
    process.launch(spec, params_for(spec, {
        "input": input_buf.address,
        "weight": weight_buf.address,
        "output": output_buf.address,
    }))
    return spec


def launch_add(process, a_buf, b_buf, output_buf):
    spec = process.catalog.kernel("_Z12residual_addPfS_S_")
    process.launch(spec, params_for(spec, {
        "input": a_buf.address,
        "input_b": b_buf.address,
        "output": output_buf.address,
    }))
    return spec
