"""Graph structure tests: edges, topological order, node mutation."""

import pytest

from repro.errors import InvalidValueError
from repro.simgpu.graph import CudaGraph, CudaGraphNode, GraphExecMeta
from repro.simgpu.kernels import KernelParam


def node(addr=0x1000):
    return CudaGraphNode(kernel_address=addr,
                         params=[KernelParam(8, 0xDEAD), KernelParam(4, 7)])


class TestGraphStructure:
    def test_add_node_returns_index(self):
        graph = CudaGraph()
        assert graph.add_node(node()) == 0
        assert graph.add_node(node()) == 1
        assert graph.num_nodes == 2

    def test_add_edge_validates_range(self):
        graph = CudaGraph()
        graph.add_node(node())
        with pytest.raises(InvalidValueError):
            graph.add_edge(0, 5)

    def test_self_edge_rejected(self):
        graph = CudaGraph()
        graph.add_node(node())
        with pytest.raises(InvalidValueError):
            graph.add_edge(0, 0)

    def test_topological_order_respects_edges(self):
        graph = CudaGraph()
        for _ in range(4):
            graph.add_node(node())
        graph.add_edge(2, 0)
        graph.add_edge(0, 1)
        graph.add_edge(1, 3)
        order = graph.topological_order()
        assert order.index(2) < order.index(0) < order.index(1) < order.index(3)

    def test_cycle_detection(self):
        graph = CudaGraph()
        graph.add_node(node())
        graph.add_node(node())
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        with pytest.raises(InvalidValueError):
            graph.topological_order()

    def test_deterministic_tie_breaking(self):
        graph = CudaGraph()
        for _ in range(5):
            graph.add_node(node())
        # No edges: order must be node-index order.
        assert graph.topological_order() == [0, 1, 2, 3, 4]


class TestNodeMutation:
    def test_set_param_preserves_size(self):
        n = node()
        n.set_param(0, 0xBEEF)
        assert n.params[0].value == 0xBEEF
        assert n.params[0].size == 8

    def test_param_sizes(self):
        assert node().param_sizes() == (8, 4)


class TestExecMeta:
    def test_defaults(self):
        meta = GraphExecMeta()
        assert meta.param_bytes == 0
        assert meta.num_tokens == 1
