"""Tests for kernel specs, parameter layouts, and the compute ops."""

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.simgpu.kernels import (
    OPS,
    PAYLOAD_DIM,
    KernelParam,
    KernelSpec,
    ParamKind,
    ParamSpec,
    hash_stable,
    magic_values,
    run_op,
)


def _mat(seed):
    return np.random.default_rng(seed).normal(size=(PAYLOAD_DIM, PAYLOAD_DIM))


class TestParamSpecs:
    def test_sizes_follow_kind(self):
        assert ParamSpec(ParamKind.CONST32, "n").size == 4
        assert ParamSpec(ParamKind.CONST64, "seed").size == 8
        assert ParamSpec(ParamKind.POINTER, "input").size == 8

    def test_kernel_param_rejects_odd_sizes(self):
        with pytest.raises(InvalidValueError):
            KernelParam(size=2, value=0)

    def test_param_index_lookup(self):
        spec = KernelSpec(name="k", library="l", module="m", op="copy",
                          params=(ParamSpec(ParamKind.POINTER, "input"),
                                  ParamSpec(ParamKind.POINTER, "output")))
        assert spec.param_index("output") == 1
        with pytest.raises(InvalidValueError):
            spec.param_index("nope")

    def test_pointer_roles(self):
        spec = KernelSpec(name="k", library="l", module="m", op="copy",
                          params=(ParamSpec(ParamKind.POINTER, "input"),
                                  ParamSpec(ParamKind.CONST32, "n"),
                                  ParamSpec(ParamKind.POINTER, "output")))
        assert spec.pointer_roles() == ["input", "output"]


class TestStableHash:
    def test_deterministic(self):
        assert hash_stable("abc") == hash_stable("abc")

    def test_distinct_inputs(self):
        assert hash_stable("abc") != hash_stable("abd")

    def test_magic_values_positive_and_distinct(self):
        a, b = magic_values("some_kernel")
        assert a > 0 and b > 0
        a2, b2 = magic_values("other_kernel")
        assert (a, b) != (a2, b2)


class TestOps:
    def test_all_ops_registered(self):
        expected = {"embed", "layernorm", "gemm", "gemm_magic", "rotary",
                    "attention", "silu_mul", "residual_add", "copy", "sample"}
        assert expected <= set(OPS)

    def test_gemm(self):
        x, w = _mat(1), _mat(2)
        out = run_op(_spec("gemm"), {"input": x, "weight": w}, {})
        np.testing.assert_allclose(out, x @ w)

    def test_layernorm_rows_are_normalized(self):
        x = _mat(3)
        out = run_op(_spec("layernorm"),
                     {"input": x, "weight": np.ones_like(x)}, {"n": 4})
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)

    def test_copy_is_identity_but_new_array(self):
        x = _mat(4)
        out = run_op(_spec("copy"), {"input": x}, {})
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_residual_add(self):
        a, b = _mat(5), _mat(6)
        out = run_op(_spec("residual_add"), {"input": a, "input_b": b}, {})
        np.testing.assert_allclose(out, a + b)

    def test_sample_is_one_hot(self):
        x = _mat(7)
        out = run_op(_spec("sample"), {"input": x}, {})
        assert np.all(out.sum(axis=-1) == 1.0)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_attention_mutates_kv_in_place(self):
        x, kv = _mat(8), np.zeros((PAYLOAD_DIM, PAYLOAD_DIM))
        run_op(_spec("attention"), {"input": x, "kv": kv}, {})
        assert not np.allclose(kv, 0.0)

    def test_gemm_magic_correct_with_right_magic(self):
        x, w = _mat(9), _mat(10)
        magic = {"magic_a": np.full((1, 1), 7.0),
                 "magic_b": np.full((1, 1), 9.0)}
        out = run_op(_spec("gemm_magic"), {"input": x, "weight": w, **magic},
                     {"magic_a_expected": 7, "magic_b_expected": 9})
        np.testing.assert_allclose(out, x @ w)

    def test_gemm_magic_corrupts_with_wrong_magic(self):
        x, w = _mat(9), _mat(10)
        magic = {"magic_a": np.full((1, 1), 1.0),
                 "magic_b": np.full((1, 1), 9.0)}
        out = run_op(_spec("gemm_magic"), {"input": x, "weight": w, **magic},
                     {"magic_a_expected": 7, "magic_b_expected": 9})
        assert not np.allclose(out, x @ w)

    def test_rotary_deterministic_in_const(self):
        x = _mat(11)
        out1 = run_op(_spec("rotary"), {"input": x}, {"rot_steps": 3})
        out2 = run_op(_spec("rotary"), {"input": x}, {"rot_steps": 3})
        out3 = run_op(_spec("rotary"), {"input": x}, {"rot_steps": 4})
        np.testing.assert_array_equal(out1, out2)
        assert not np.array_equal(out1, out3)

    def test_unknown_op_raises(self):
        with pytest.raises(InvalidValueError):
            run_op(_spec("not_an_op"), {}, {})


def _spec(op: str) -> KernelSpec:
    return KernelSpec(name=f"test_{op}", library="l", module="m", op=op,
                      params=())
