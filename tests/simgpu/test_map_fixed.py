"""Fixed-address mapping tests (the checkpoint-restore primitive)."""

import numpy as np
import pytest

from repro.errors import (
    IllegalMemoryAccessError,
    InvalidValueError,
    OutOfMemoryError,
)
from repro.simgpu.memory import ALIGNMENT, DeviceAllocator

BASE = 0x7F00_0000_0000


def make_allocator(capacity=1 << 20):
    return DeviceAllocator(base=BASE, capacity_bytes=capacity)


class TestMapFixed:
    def test_maps_at_exact_address(self):
        allocator = make_allocator()
        buffer = allocator.map_fixed(BASE + 0x1000, 512, tag="restored")
        assert buffer.address == BASE + 0x1000
        assert allocator.resolve(BASE + 0x1000) is buffer

    def test_payload_restored(self):
        allocator = make_allocator()
        buffer = allocator.map_fixed(BASE, 256, payload=np.ones((2, 2)))
        np.testing.assert_array_equal(buffer.read(), np.ones((2, 2)))

    def test_unaligned_address_rejected(self):
        allocator = make_allocator()
        with pytest.raises(InvalidValueError):
            allocator.map_fixed(BASE + 1, 256)

    def test_overlap_with_live_buffer_rejected(self):
        allocator = make_allocator()
        live = allocator.malloc(1024)
        with pytest.raises(IllegalMemoryAccessError):
            allocator.map_fixed(live.address, 256)
        with pytest.raises(IllegalMemoryAccessError):
            allocator.map_fixed(live.address + ALIGNMENT, 256)

    def test_capacity_enforced(self):
        allocator = make_allocator(capacity=1024)
        with pytest.raises(OutOfMemoryError):
            allocator.map_fixed(BASE, 4096)

    def test_cursor_moves_past_mapping(self):
        """Subsequent bump allocations never collide with mapped regions."""
        allocator = make_allocator()
        mapped = allocator.map_fixed(BASE + 0x2000, 512)
        fresh = allocator.malloc(256)
        assert fresh.address >= mapped.end

    def test_accounting_includes_mapping(self):
        allocator = make_allocator()
        allocator.map_fixed(BASE, 512)
        assert allocator.bytes_in_use == 512


class TestAslrDeterminism:
    def test_library_bases_independent_of_dlopen_order(self, catalog):
        from repro.simgpu.process import CudaProcess
        first = CudaProcess(seed=5, catalog=catalog, name="same")
        second = CudaProcess(seed=5, catalog=catalog, name="same")
        first.driver.dlopen("libtorch_sim")
        first.driver.dlopen("libcublas_sim")
        second.driver.dlopen("libcublas_sim")   # reversed order
        second.driver.dlopen("libtorch_sim")
        for name in ("_Z9layernormPfS_S_i", "_ZN7cublas_sim4gemmEv"):
            assert first.driver.kernel_address(name) == \
                second.driver.kernel_address(name)
