"""Library/module/catalog validation tests."""

import pytest

from repro.errors import InvalidValueError, SymbolNotFoundError
from repro.simgpu.kernels import KernelSpec, ParamKind, ParamSpec
from repro.simgpu.libraries import DynamicLibrary, LibraryCatalog
from repro.simgpu.modules import CudaModule


def spec(name, library="lib", module="mod", hidden=False, host=None):
    return KernelSpec(name=name, library=library, module=module, op="copy",
                      params=(ParamSpec(ParamKind.POINTER, "input"),
                              ParamSpec(ParamKind.POINTER, "output")),
                      hidden=hidden, host_entry=host)


class TestModuleValidation:
    def test_module_rejects_foreign_kernel(self):
        with pytest.raises(InvalidValueError):
            CudaModule("mod_a", "lib", (spec("k", module="mod_b"),))

    def test_module_rejects_wrong_library(self):
        with pytest.raises(InvalidValueError):
            CudaModule("mod", "lib_x", (spec("k", library="lib_y"),))

    def test_find_kernel(self):
        module = CudaModule("mod", "lib", (spec("k1"), spec("k2")))
        assert module.find("k2").name == "k2"
        with pytest.raises(InvalidValueError):
            module.find("k3")

    def test_kernel_names(self):
        module = CudaModule("mod", "lib", (spec("k1"), spec("k2")))
        assert module.kernel_names() == ("k1", "k2")


class TestLibraryValidation:
    def test_duplicate_kernel_rejected(self):
        with pytest.raises(InvalidValueError):
            DynamicLibrary("lib", (
                CudaModule("mod", "lib", (spec("k"), spec("k"))),))

    def test_exported_symbols_exclude_hidden(self):
        library = DynamicLibrary("lib", (
            CudaModule("mod", "lib",
                       (spec("visible"),
                        spec("secret", hidden=True, host="hostfn"))),))
        assert library.exported_symbols() == ("visible",)
        assert library.host_entries() == ("hostfn",)

    def test_module_of(self):
        library = DynamicLibrary("lib", (
            CudaModule("m1", "lib", (spec("a", module="m1"),)),
            CudaModule("m2", "lib", (spec("b", module="m2"),))))
        assert library.module_of("b").name == "m2"
        with pytest.raises(SymbolNotFoundError):
            library.module_of("c")


class TestCatalog:
    def test_duplicate_library_rejected(self):
        library = DynamicLibrary(
            "lib", (CudaModule("m", "lib", (spec("k", module="m"),)),))
        catalog = LibraryCatalog((library,))
        with pytest.raises(InvalidValueError):
            catalog.add(library)

    def test_cross_library_duplicate_kernel_rejected(self):
        a = DynamicLibrary("a", (CudaModule(
            "m", "a", (spec("k", library="a", module="m"),)),))
        b = DynamicLibrary("b", (CudaModule(
            "m", "b", (spec("k", library="b", module="m"),)),))
        catalog = LibraryCatalog((a,))
        with pytest.raises(InvalidValueError):
            catalog.add(b)

    def test_lookup_and_contains(self):
        library = DynamicLibrary(
            "lib", (CudaModule("m", "lib", (spec("k", module="m"),)),))
        catalog = LibraryCatalog((library,))
        assert catalog.kernel("k").name == "k"
        assert "k" in catalog
        assert "z" not in catalog
        with pytest.raises(SymbolNotFoundError):
            catalog.kernel("z")
        with pytest.raises(SymbolNotFoundError):
            catalog.library("nolib")
