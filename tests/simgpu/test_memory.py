"""Unit tests for the simulated device allocator."""

import numpy as np
import pytest

from repro.errors import (
    IllegalMemoryAccessError,
    InvalidValueError,
    OutOfMemoryError,
)
from repro.simgpu.memory import ALIGNMENT, DeviceAllocator


def make_allocator(capacity=1 << 20):
    return DeviceAllocator(base=0x7F00_0000_0000, capacity_bytes=capacity)


class TestMalloc:
    def test_returns_aligned_addresses(self):
        allocator = make_allocator()
        buf = allocator.malloc(100)
        assert buf.address % ALIGNMENT == 0
        assert buf.size == ALIGNMENT  # rounded up

    def test_sequential_allocations_do_not_overlap(self):
        allocator = make_allocator()
        a = allocator.malloc(512)
        b = allocator.malloc(512)
        assert a.end <= b.address or b.end <= a.address

    def test_rejects_non_positive_size(self):
        allocator = make_allocator()
        with pytest.raises(InvalidValueError):
            allocator.malloc(0)
        with pytest.raises(InvalidValueError):
            allocator.malloc(-4)

    def test_oom_when_capacity_exceeded(self):
        allocator = make_allocator(capacity=1024)
        allocator.malloc(512)
        with pytest.raises(OutOfMemoryError):
            allocator.malloc(1024)

    def test_alloc_indices_are_sequential(self):
        allocator = make_allocator()
        buffers = [allocator.malloc(64) for _ in range(5)]
        assert [b.alloc_index for b in buffers] == [0, 1, 2, 3, 4]

    def test_free_bytes_accounting(self):
        allocator = make_allocator(capacity=4096)
        allocator.malloc(1024)
        assert allocator.free_bytes == 4096 - 1024
        allocator.malloc(256)
        assert allocator.free_bytes == 4096 - 1024 - 256


class TestFreeAndReuse:
    def test_lifo_reuse_returns_same_address(self):
        """The aliasing hazard of Figure 6: free then realloc same size."""
        allocator = make_allocator()
        a = allocator.malloc(1024)
        address = a.address
        allocator.free(address)
        b = allocator.malloc(1024)
        assert b.address == address
        assert b.alloc_index != a.alloc_index

    def test_double_free_raises(self):
        allocator = make_allocator()
        buf = allocator.malloc(64)
        allocator.free(buf.address)
        with pytest.raises(IllegalMemoryAccessError):
            allocator.free(buf.address)

    def test_freed_payload_is_poisoned(self):
        allocator = make_allocator()
        buf = allocator.malloc(64, payload=np.ones((4, 4)))
        allocator.free(buf.address)
        assert np.isnan(buf.payload).all()

    def test_read_after_free_raises(self):
        allocator = make_allocator()
        buf = allocator.malloc(64, payload=np.ones((2, 2)))
        allocator.free(buf.address)
        with pytest.raises(IllegalMemoryAccessError):
            buf.read()

    def test_free_records_event_with_original_alloc_index(self):
        allocator = make_allocator()
        buf = allocator.malloc(64)
        allocator.free(buf.address)
        free_events = [e for e in allocator.events if e.kind == "free"]
        assert len(free_events) == 1
        assert free_events[0].alloc_index == buf.alloc_index


class TestResolve:
    def test_resolve_exact_address(self):
        allocator = make_allocator()
        buf = allocator.malloc(256)
        assert allocator.resolve(buf.address) is buf

    def test_resolve_interior_pointer(self):
        """§4.1: pointers may land within a buffer's range."""
        allocator = make_allocator()
        buf = allocator.malloc(1024)
        assert allocator.resolve(buf.address + 512) is buf

    def test_resolve_unknown_address_raises(self):
        allocator = make_allocator()
        with pytest.raises(IllegalMemoryAccessError):
            allocator.resolve(0xDEADBEEF)

    def test_resolve_freed_address_raises(self):
        allocator = make_allocator()
        buf = allocator.malloc(64)
        allocator.free(buf.address)
        with pytest.raises(IllegalMemoryAccessError):
            allocator.resolve(buf.address)

    def test_buffer_by_alloc_index(self):
        allocator = make_allocator()
        first = allocator.malloc(64)
        second = allocator.malloc(128)
        assert allocator.buffer_by_alloc_index(0) is first
        assert allocator.buffer_by_alloc_index(1) is second
        with pytest.raises(InvalidValueError):
            allocator.buffer_by_alloc_index(2)

    def test_history_includes_freed_buffers(self):
        allocator = make_allocator()
        buf = allocator.malloc(64)
        allocator.free(buf.address)
        assert buf in allocator.history
        assert buf not in allocator.live_buffers


class TestEventSequence:
    def test_events_replayable_order(self):
        allocator = make_allocator()
        a = allocator.malloc(64, tag="w")
        b = allocator.malloc(128, tag="x")
        allocator.free(a.address)
        c = allocator.malloc(64, tag="y")
        kinds = [(e.kind, e.size, e.tag) for e in allocator.events]
        assert kinds == [
            ("alloc", 256, "w"), ("alloc", 256, "x"),
            ("free", 0, "w"), ("alloc", 256, "y"),
        ]
        # LIFO reuse: c got a's address, with a fresh alloc index.
        assert c.address == a.address
        assert c.alloc_index == 2
