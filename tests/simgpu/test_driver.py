"""Tests for ASLR, module loading, and symbol resolution (paper §5 hazards)."""

import pytest

from repro.errors import ModuleNotLoadedError, SymbolNotFoundError
from repro.simgpu.process import CudaProcess, ExecutionMode

VISIBLE = "_Z9layernormPfS_S_i"
HIDDEN = "_ZN7cublas_sim4gemmEv"


class TestAslr:
    def test_kernel_addresses_differ_across_processes(self, process_factory):
        p1 = process_factory(seed=1)
        p2 = process_factory(seed=2)
        p1.driver.dlopen("libtorch_sim")
        p2.driver.dlopen("libtorch_sim")
        assert (p1.driver.kernel_address(VISIBLE)
                != p2.driver.kernel_address(VISIBLE))

    def test_same_seed_gives_same_layout(self, process_factory):
        p1 = process_factory(seed=7, name="same")
        p2 = process_factory(seed=7, name="same")
        p1.driver.dlopen("libtorch_sim")
        p2.driver.dlopen("libtorch_sim")
        assert (p1.driver.kernel_address(VISIBLE)
                == p2.driver.kernel_address(VISIBLE))

    def test_heap_bases_differ_across_processes(self, process_factory):
        p1 = process_factory(seed=1)
        p2 = process_factory(seed=2)
        assert p1.allocator.base != p2.allocator.base

    def test_kernels_within_one_library_have_distinct_addresses(self, process):
        library = process.driver.dlopen("libtorch_sim")
        addresses = [process.driver.kernel_address(s.name)
                     for s in library.iter_kernels()]
        assert len(set(addresses)) == len(addresses)


class TestSymbolResolution:
    def test_dlsym_resolves_visible_kernel(self, process):
        symbol = process.driver.dlsym("libtorch_sim", VISIBLE)
        assert symbol.kernel_name == VISIBLE

    def test_dlsym_hidden_kernel_raises(self, process):
        """cuBLAS-style kernels are absent from the export table (§5)."""
        with pytest.raises(SymbolNotFoundError):
            process.driver.dlsym("libcublas_sim", HIDDEN)

    def test_get_func_by_symbol_loads_module(self, process):
        symbol = process.driver.dlsym("libtorch_sim", VISIBLE)
        address = process.driver.cuda_get_func_by_symbol(symbol)
        assert process.driver.module_loaded("libtorch_sim", "mod_norm")
        spec = process.driver.resolve_executable(address)
        assert spec.name == VISIBLE

    def test_unknown_library_raises(self, process):
        with pytest.raises(SymbolNotFoundError):
            process.driver.dlsym("libdoesnotexist", VISIBLE)


class TestModuleEnumeration:
    def test_enumerate_unloaded_module_raises(self, process):
        process.driver.dlopen("libcublas_sim")
        with pytest.raises(ModuleNotLoadedError):
            process.driver.cu_module_enumerate_functions(
                "libcublas_sim", "mod_gemm")

    def test_enumerate_after_trigger_exposes_hidden_kernels(self, process):
        """The triggering-kernels mechanism: loading any kernel of the module
        makes the hidden ones enumerable (§5)."""
        spec = process.catalog.kernel(HIDDEN)
        process.driver.load_module_for(spec)
        addresses = process.driver.cu_module_enumerate_functions(
            "libcublas_sim", "mod_gemm")
        names = {process.driver.cu_func_get_name(a) for a in addresses}
        assert HIDDEN in names
        assert "_ZN7cublas_sim10gemm_plainEv" in names

    def test_resolve_executable_requires_loaded_module(self, process):
        process.driver.dlopen("libtorch_sim")
        address = process.driver.kernel_address(VISIBLE)
        with pytest.raises(ModuleNotLoadedError):
            process.driver.resolve_executable(address)

    def test_cu_func_get_name_unknown_address(self, process):
        from repro.errors import InvalidValueError
        with pytest.raises(InvalidValueError):
            process.driver.cu_func_get_name(0x1234)
