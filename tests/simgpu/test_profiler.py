"""Kernel profiler tests."""

import pytest

from repro.engine import LLMEngine, Strategy
from repro.models.zoo import get_model_config
from repro.simgpu.process import ExecutionMode
from repro.simgpu.profiler import KernelProfiler, profile

from tests.conftest import tiny_cost_model

TINY = get_model_config("Tiny-2L")


class TestKernelProfiler:
    def make_profiled_engine(self, keep_samples=False):
        engine = LLMEngine("Tiny-2L", Strategy.VLLM, seed=44,
                           mode=ExecutionMode.TIMING,
                           cost_model=tiny_cost_model())
        profiler = profile(engine.process, keep_samples=keep_samples)
        engine.cold_start()
        return engine, profiler

    def test_counts_warmups_and_captures(self):
        _engine, profiler = self.make_profiled_engine()
        captured_expected = TINY.total_graph_nodes
        assert profiler.captured_launches == captured_expected
        # warm-ups (one per batch size) plus the profiling forwarding
        assert profiler.eager_launches > captured_expected

    def test_per_library_breakdown(self):
        _engine, profiler = self.make_profiled_engine()
        assert set(profiler.per_library) == {
            "libtorch_sim", "libvllm_sim", "libcublas_sim"}

    def test_top_kernels_sorted(self):
        _engine, profiler = self.make_profiled_engine()
        top = profiler.top_kernels(3)
        counts = [count for _name, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_samples_kept_on_request(self):
        _engine, profiler = self.make_profiled_engine(keep_samples=True)
        assert len(profiler.samples) == profiler.total_launches
        assert all(s.time >= 0 for s in profiler.samples)

    def test_profiler_adds_no_simulated_overhead(self):
        baseline = LLMEngine("Tiny-2L", Strategy.VLLM, seed=44,
                             mode=ExecutionMode.TIMING,
                             cost_model=tiny_cost_model())
        baseline.cold_start()
        profiled, _profiler = self.make_profiled_engine()
        assert profiled.process.clock.now == \
            pytest.approx(baseline.process.clock.now)

    def test_summary_keys(self):
        _engine, profiler = self.make_profiled_engine()
        summary = profiler.summary()
        assert summary["total_launches"] == float(profiler.total_launches)
        assert summary["distinct_kernels"] > 0
