"""ASCII bar rendering tests."""

from repro.reporting import horizontal_bars, stacked_bars


class TestHorizontalBars:
    def test_scales_to_peak(self):
        text = horizontal_bars("T", [("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        bar_a = lines[2].count("█")
        bar_b = lines[3].count("█")
        assert bar_b == 10
        assert bar_a == 5

    def test_zero_value_renders_empty_bar(self):
        text = horizontal_bars("T", [("a", 0.0), ("b", 1.0)])
        assert "a" in text

    def test_empty_entries(self):
        assert "(empty)" in horizontal_bars("T", [])

    def test_values_printed(self):
        text = horizontal_bars("T", [("x", 3.25)])
        assert "3.25s" in text


class TestStackedBars:
    def test_legend_lists_all_segments(self):
        text = stacked_bars("T", ["m1"], {"s1": [1.0], "s2": [2.0]})
        assert "s1" in text and "s2" in text
        assert "legend" in text

    def test_totals_printed(self):
        text = stacked_bars("T", ["m1"], {"s1": [1.0], "s2": [2.0]})
        assert "3s" in text

    def test_segment_proportions(self):
        text = stacked_bars("T", ["m"], {"a": [3.0], "b": [1.0]}, width=40)
        row = text.splitlines()[-1]
        assert row.count("█") == 30
        assert row.count("▓") == 10
