"""Reporting tests: tables and chrome-trace export."""

import json

import pytest

from repro.engine import LLMEngine, Strategy
from repro.reporting import format_series, format_table
from repro.reporting.timeline import export_chrome_trace, to_trace_events

from tests.conftest import tiny_cost_model


class TestFormatTable:
    def test_alignment_and_structure(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["xyz", 10000.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_float_rendering(self):
        text = format_table("T", ["v"], [[0.123456], [12.3456], [12345.6]])
        assert "0.123" in text
        assert "12.35" in text
        assert "12,346" in text

    def test_zero_renders_plainly(self):
        assert "0" in format_table("T", ["v"], [[0.0]])

    def test_format_series(self):
        text = format_series("S", {"a": [1, 2], "b": [3, 4]},
                             x_label="x", x_values=[10, 20])
        lines = text.splitlines()
        assert "x" in lines[2] and "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6


class TestChromeTrace:
    @pytest.fixture
    def report(self):
        engine = LLMEngine("Tiny-2L", Strategy.VLLM_ASYNC, seed=91,
                           cost_model=tiny_cost_model())
        return engine.cold_start()

    def test_events_cover_all_stages(self, report):
        events = to_trace_events(report)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "structure_init" in names
        assert "capture" in names

    def test_events_are_microseconds(self, report):
        events = [e for e in to_trace_events(report) if e["ph"] == "X"]
        structure = next(e for e in events if e["name"] == "structure_init")
        assert structure["dur"] == pytest.approx(
            report.stage_durations["structure_init"] * 1e6)

    def test_async_stages_overlap_in_trace(self, report):
        events = [e for e in to_trace_events(report) if e["ph"] == "X"]
        weights = next(e for e in events if e["name"] == "load_weights")
        tokenizer = next(e for e in events if e["name"] == "load_tokenizer")
        assert weights["ts"] == tokenizer["ts"]     # overlapped branches
        assert weights["tid"] != tokenizer["tid"]   # different resources

    def test_export_is_valid_json(self, report):
        payload = json.loads(export_chrome_trace([report, report]))
        assert "traceEvents" in payload
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {0, 1}
