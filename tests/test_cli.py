"""CLI tests (driving tiny models through the public command surface)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_models_command(self):
        args = build_parser().parse_args(["models"])
        assert args.command == "models"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["coldstart", "--model", "X", "--strategy", "warp-drive"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_lists_ten(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        assert "Qwen1.5-4B" in output
        assert "16150" in output   # Table 1 node count

    def test_coldstart_tiny(self, capsys):
        assert main(["coldstart", "--model", "Tiny-2L",
                     "--strategy", "vllm"]) == 0
        output = capsys.readouterr().out
        assert "capture" in output
        assert "loading phase" in output

    def test_coldstart_medusa_requires_artifact(self, capsys):
        assert main(["coldstart", "--model", "Tiny-2L",
                     "--strategy", "medusa"]) == 2
        assert "requires --artifact" in capsys.readouterr().err

    def test_offline_restore_roundtrip(self, tmp_path, capsys):
        artifact_path = str(tmp_path / "tiny.medusa.json")
        assert main(["offline", "--model", "Tiny-2L",
                     "--output", artifact_path]) == 0
        assert "materialized" in capsys.readouterr().out
        assert main(["restore", "--model", "Tiny-2L",
                     "--artifact", artifact_path]) == 0
        output = capsys.readouterr().out
        assert "medusa_restore" in output

    def test_restore_with_validation(self, tmp_path, capsys):
        artifact_path = str(tmp_path / "tiny.medusa.json")
        main(["offline", "--model", "Tiny-2L", "--output", artifact_path])
        capsys.readouterr()
        assert main(["restore", "--model", "Tiny-2L",
                     "--artifact", artifact_path, "--validate"]) == 0
        assert "validation: PASSED" in capsys.readouterr().out

    def test_simulate_tiny_run(self, capsys):
        assert main(["simulate", "--model", "Llama2-7B", "--rps", "1",
                     "--duration", "20", "--gpus", "1",
                     "--strategy", "no-cuda-graph"]) == 0
        output = capsys.readouterr().out
        assert "ttft_p99" in output


class TestSimulateStrategies:
    def test_simulate_deferred_strategy(self, capsys):
        from repro.cli import main
        assert main(["simulate", "--model", "Qwen1.5-0.5B", "--rps", "1",
                     "--duration", "15", "--gpus", "1",
                     "--strategy", "deferred"]) == 0
        output = capsys.readouterr().out
        assert "Deferred capture" in output
        assert "cold_starts" in output
