"""CLI tests (driving tiny models through the public command surface)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def tiny_artifact_path(tmp_path_factory):
    """A materialized Tiny-2L artifact shared by the lint/validate tests."""
    path = str(tmp_path_factory.mktemp("cli") / "tiny.medusa.json")
    assert main(["offline", "--model", "Tiny-2L", "--output", path]) == 0
    return path


class TestParser:
    def test_models_command(self):
        args = build_parser().parse_args(["models"])
        assert args.command == "models"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["coldstart", "--model", "X", "--strategy", "warp-drive"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_lists_ten(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        assert "Qwen1.5-4B" in output
        assert "16150" in output   # Table 1 node count

    def test_coldstart_tiny(self, capsys):
        assert main(["coldstart", "--model", "Tiny-2L",
                     "--strategy", "vllm"]) == 0
        output = capsys.readouterr().out
        assert "capture" in output
        assert "loading phase" in output

    def test_coldstart_medusa_requires_artifact(self, capsys):
        assert main(["coldstart", "--model", "Tiny-2L",
                     "--strategy", "medusa"]) == 2
        assert "requires --artifact" in capsys.readouterr().err

    def test_offline_restore_roundtrip(self, tmp_path, capsys):
        artifact_path = str(tmp_path / "tiny.medusa.json")
        assert main(["offline", "--model", "Tiny-2L",
                     "--output", artifact_path]) == 0
        assert "materialized" in capsys.readouterr().out
        assert main(["restore", "--model", "Tiny-2L",
                     "--artifact", artifact_path]) == 0
        output = capsys.readouterr().out
        assert "medusa_restore" in output

    def test_restore_with_validation(self, tmp_path, capsys):
        artifact_path = str(tmp_path / "tiny.medusa.json")
        main(["offline", "--model", "Tiny-2L", "--output", artifact_path])
        capsys.readouterr()
        assert main(["restore", "--model", "Tiny-2L",
                     "--artifact", artifact_path, "--validate"]) == 0
        assert "validation: PASSED" in capsys.readouterr().out

    def test_simulate_tiny_run(self, capsys):
        assert main(["simulate", "--model", "Llama2-7B", "--rps", "1",
                     "--duration", "20", "--gpus", "1",
                     "--strategy", "no-cuda-graph"]) == 0
        output = capsys.readouterr().out
        assert "ttft_p99" in output


class TestLintCommand:
    def test_clean_artifact_exits_zero(self, tiny_artifact_path, capsys):
        assert main(["lint", tiny_artifact_path]) == 0
        output = capsys.readouterr().out
        assert "artifact is clean" in output
        assert "0 error(s)" in output

    def test_json_output(self, tiny_artifact_path, capsys):
        assert main(["lint", tiny_artifact_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["diagnostics"] == []
        assert "liveness" in payload["passes"]

    def test_diagnostics_exit_one(self, tiny_artifact_path, tmp_path, capsys):
        payload = json.loads(open(tiny_artifact_path).read())
        payload["capture_marker"] = -5
        bad = tmp_path / "bad.medusa.json"
        bad.write_text(json.dumps(payload))
        assert main(["lint", str(bad)]) == 1
        assert "MED044" in capsys.readouterr().out

    def test_diagnostics_exit_one_as_json(self, tiny_artifact_path,
                                          tmp_path, capsys):
        payload = json.loads(open(tiny_artifact_path).read())
        payload["replay_events"].append(
            {"kind": "free", "alloc_index": 999999, "size": 0, "tag": "",
             "pooled": False, "pool": "default"})
        bad = tmp_path / "bad.medusa.json"
        bad.write_text(json.dumps(payload))
        assert main(["lint", str(bad), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        assert report["diagnostics"][0]["code"] == "MED002"

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreadable_payload_exits_two(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["lint", str(garbage)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stale_version_is_a_diagnostic_not_a_crash(
            self, tiny_artifact_path, tmp_path, capsys):
        payload = json.loads(open(tiny_artifact_path).read())
        payload["format_version"] = 1
        stale = tmp_path / "stale.medusa.json"
        stale.write_text(json.dumps(payload))
        assert main(["lint", str(stale)]) == 1
        assert "MED040" in capsys.readouterr().out


class TestValidateCommand:
    def test_clean_artifact_passes(self, tiny_artifact_path, capsys):
        assert main(["validate", "--artifact", tiny_artifact_path]) == 0
        assert "validation: PASSED" in capsys.readouterr().out

    def test_json_output(self, tiny_artifact_path, capsys):
        assert main(["validate", "--artifact", tiny_artifact_path,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["model"] == "Tiny-2L"
        assert payload["diagnostics"] == []

    def test_lint_errors_fail_before_any_restore(self, tiny_artifact_path,
                                                 tmp_path, capsys):
        payload = json.loads(open(tiny_artifact_path).read())
        payload["first_layer_nodes"] = 10**4
        bad = tmp_path / "bad.medusa.json"
        bad.write_text(json.dumps(payload))
        assert main(["validate", "--artifact", str(bad)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_missing_artifact_exits_two(self, tmp_path, capsys):
        assert main(["validate", "--artifact",
                     str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestValidateDegradedExitCode:
    """Exit 3 = degraded but serving; 1 stays a hard failure (exit codes
    must let CI tell "we limped home" apart from "we crashed")."""

    @pytest.fixture()
    def corrupt_artifact_path(self, tiny_artifact_path, tmp_path):
        from repro.faults import corrupt_graph_payload
        payload = json.loads(open(tiny_artifact_path).read())
        corrupt_graph_payload(payload)
        bad = tmp_path / "corrupt.medusa.json"
        bad.write_text(json.dumps(payload))
        return str(bad)

    def test_degraded_ok_exits_three(self, corrupt_artifact_path, capsys):
        assert main(["validate", "--artifact", corrupt_artifact_path,
                     "--degraded-ok"]) == 3
        output = capsys.readouterr().out
        assert "validation: PASSED" in output
        assert "rung" in output
        assert "MED011" in output

    def test_same_artifact_without_flag_exits_one(self,
                                                  corrupt_artifact_path,
                                                  capsys):
        assert main(["validate", "--artifact", corrupt_artifact_path]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_clean_artifact_with_flag_exits_zero(self, tiny_artifact_path,
                                                 capsys):
        assert main(["validate", "--artifact", tiny_artifact_path,
                     "--degraded-ok"]) == 0
        assert "rung" not in capsys.readouterr().out

    def test_hard_failure_still_exits_one(self, tiny_artifact_path, capsys):
        # A model mismatch is not a restore fault the ladder can absorb.
        assert main(["validate", "--artifact", tiny_artifact_path,
                     "--model", "Tiny-4L", "--degraded-ok"]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_degraded_json_carries_the_ladder(self, corrupt_artifact_path,
                                              capsys):
        assert main(["validate", "--artifact", corrupt_artifact_path,
                     "--degraded-ok", "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["degradation"]["rung"] == "partial"
        assert payload["degradation"]["degraded"] is True


class TestSimulateStrategies:
    def test_simulate_deferred_strategy(self, capsys):
        from repro.cli import main
        assert main(["simulate", "--model", "Qwen1.5-0.5B", "--rps", "1",
                     "--duration", "15", "--gpus", "1",
                     "--strategy", "deferred"]) == 0
        output = capsys.readouterr().out
        assert "Deferred capture" in output
        assert "cold_starts" in output
