"""Tensor-parallel (multi-GPU) tests — the §8 future-work extension."""

import pytest

from repro.engine import Strategy
from repro.errors import InvalidValueError, RestorationError
from repro.multigpu import (
    TensorParallelEngine,
    TensorParallelMedusa,
    rank_config,
)
from repro.multigpu.tp import DIST_INIT_TIME, allreduce_time
from repro.models.zoo import get_model_config
from repro.simgpu.process import ExecutionMode

from tests.conftest import tiny_cost_model


class TestRankConfig:
    def test_shards_weight_bytes(self):
        config = get_model_config("Llama2-13B")
        shard = rank_config(config, 4, 0)
        assert shard.param_bytes == config.param_bytes // 4
        assert shard.num_layers == config.num_layers
        assert shard.total_graph_nodes == config.total_graph_nodes

    def test_tp1_is_identity(self):
        config = get_model_config("Tiny-2L")
        assert rank_config(config, 1, 0) is config

    def test_rank_names_distinct(self):
        config = get_model_config("Tiny-2L")
        names = {rank_config(config, 2, r).name for r in range(2)}
        assert len(names) == 2

    def test_validation(self):
        config = get_model_config("Tiny-2L")
        with pytest.raises(InvalidValueError):
            rank_config(config, 0, 0)
        with pytest.raises(InvalidValueError):
            rank_config(config, 2, 2)


class TestAllreduceModel:
    def test_tp1_costs_nothing(self):
        assert allreduce_time(4096, 8, 1) == 0.0

    def test_grows_with_batch_and_degree(self):
        small = allreduce_time(4096, 1, 2)
        bigger_batch = allreduce_time(4096, 64, 2)
        more_ranks = allreduce_time(4096, 1, 8)
        assert bigger_batch > small
        assert more_ranks > small


class TestTensorParallelEngine:
    def test_tp_cold_start_has_barrier_and_dist_init(self):
        tp = TensorParallelEngine("Tiny-4L", tp_degree=2, seed=3,
                                  cost_model=tiny_cost_model())
        report = tp.cold_start()
        slowest = max(r.loading_time for r in report.rank_reports)
        assert report.loading_time == pytest.approx(
            slowest + DIST_INIT_TIME)
        assert len(report.rank_reports) == 2

    def test_tp_shards_cut_weight_load_time(self):
        single = TensorParallelEngine("Qwen1.5-7B", 1, seed=4).cold_start()
        sharded = TensorParallelEngine("Qwen1.5-7B", 4, seed=4).cold_start()
        single_weights = single.rank_reports[0].stage_durations["load_weights"]
        shard_weights = sharded.rank_reports[0].stage_durations["load_weights"]
        assert shard_weights == pytest.approx(single_weights / 4, rel=0.01)

    def test_decode_step_includes_allreduce(self):
        tp = TensorParallelEngine("Tiny-2L", 2, seed=5,
                                  cost_model=tiny_cost_model())
        tp.cold_start()
        single = TensorParallelEngine("Tiny-2L", 1, seed=5,
                                      cost_model=tiny_cost_model())
        single.cold_start()
        assert tp.decode_step(4) > 0
        # TP pays the collective; with equal shards it cannot be cheaper
        # than a single small-rank step by more than the allreduce.
        assert tp.decode_step(4) >= max(
            e.decode_step(4) for e in tp.engines)


class TestTensorParallelMedusa:
    @pytest.fixture(scope="class")
    def tp_artifacts(self):
        medusa = TensorParallelMedusa("Tiny-2L", tp_degree=2, seed=6,
                                      mode=ExecutionMode.COMPUTE,
                                      cost_model=tiny_cost_model())
        artifacts, reports = medusa.run_offline()
        return medusa, artifacts, reports

    def test_per_rank_artifacts(self, tp_artifacts):
        _medusa, artifacts, reports = tp_artifacts
        assert len(artifacts) == 2
        assert artifacts[0].model_name != artifacts[1].model_name
        assert artifacts[0].total_nodes == artifacts[1].total_nodes

    def test_rank_consistency_check_catches_divergence(self, tp_artifacts):
        medusa, artifacts, _ = tp_artifacts
        import copy
        broken = [artifacts[0], copy.deepcopy(artifacts[1])]
        broken[1].graphs[1].nodes.pop()
        with pytest.raises(RestorationError):
            medusa._verify_rank_consistency(broken)

    def test_online_restores_every_rank(self, tp_artifacts):
        medusa, artifacts, _ = tp_artifacts
        engine, report = medusa.cold_start(artifacts, seed=7)
        assert len(report.rank_reports) == 2
        for rank_engine in engine.engines:
            assert rank_engine.capture_artifacts is not None
            assert set(rank_engine.capture_artifacts.execs) == \
                set(get_model_config("Tiny-2L").capture_batch_sizes)

    def test_medusa_tp_beats_vanilla_tp(self, tp_artifacts):
        medusa, artifacts, _ = tp_artifacts
        _engine, medusa_report = medusa.cold_start(artifacts, seed=8)
        vanilla = TensorParallelEngine(
            "Tiny-2L", 2, Strategy.VLLM, seed=8,
            mode=ExecutionMode.COMPUTE,
            cost_model=tiny_cost_model()).cold_start()
        medusa_kv = max(r.stage_durations["kv_init"]
                        for r in medusa_report.rank_reports)
        vanilla_kv = max(r.stage_durations["kv_init"]
                         for r in vanilla.rank_reports)
        assert medusa_kv < vanilla_kv

    def test_wrong_artifact_count_rejected(self, tp_artifacts):
        medusa, artifacts, _ = tp_artifacts
        with pytest.raises(RestorationError):
            medusa.cold_start(artifacts[:1])
