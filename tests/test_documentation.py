"""Meta tests: the documentation deliverable is enforced, not aspirational."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO = pathlib.Path(repro.__file__).resolve().parent.parent.parent


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue   # importing it runs the CLI
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__)
    def test_every_module_has_a_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_every_public_class_documented(self):
        undocumented = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue   # re-export
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_every_public_function_documented(self):
        undocumented = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented


class TestProjectDocs:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/MECHANISM.md", "docs/COSTMODEL.md", "docs/API.md",
    ])
    def test_document_exists_and_is_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, f"{name} looks like a stub"

    def test_experiments_covers_every_figure_and_table(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for item in ("Table 1", "Figure 1", "Figure 2", "Figure 3",
                     "Figure 7", "Figure 8", "Figure 9", "Figure 10",
                     "Figure 11"):
            assert item in text, item

    def test_readme_quickstart_names_real_api(self):
        text = (REPO / "README.md").read_text()
        for symbol in ("run_offline", "medusa_cold_start", "LLMEngine",
                       "Strategy"):
            assert symbol in text
            assert hasattr(repro, symbol)
