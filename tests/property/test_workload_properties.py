"""Property-based tests of RateSchedule arrival generation.

The shaped workload generator is an exact inhomogeneous-Poisson sampler
over a piecewise-constant :class:`repro.serverless.RateSchedule`; these
properties pin the statistical and structural contracts the autoscale
benchmarks depend on: arrival counts concentrate around the integrated
rate, traces are deterministic per seed and sorted, composition is
exactly associative (tuple concatenation, not float re-summation), and
the default Poisson path — plus the default keep-alive policy — replays
the pre-policy golden snapshots bit for bit.
"""

import json
import math
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.serverless import (
    ClusterSimulator,
    RateSchedule,
    RateSegment,
    ServingCostModel,
    ShareGPTWorkload,
    SimulationConfig,
    make_schedule,
    shape_names,
)
from repro.utils.rng import SeedSequence

segment = st.builds(
    RateSegment,
    start=st.floats(0.0, 50.0),
    end=st.floats(51.0, 120.0),
    rate=st.floats(0.0, 6.0),
)
schedule = st.builds(
    RateSchedule,
    segments=st.tuples(segment) | st.tuples(segment, segment)
    | st.tuples(segment, segment, segment),
)


class TestArrivalStatistics:
    @settings(max_examples=25, deadline=None)
    @given(sched=schedule, seed=st.integers(0, 10_000))
    def test_counts_concentrate_around_integrated_rate(self, sched, seed):
        """len(trace) ~ Poisson(integral): within 6 sigma + slack."""
        rng = SeedSequence(seed).child("prop").generator("arrivals")
        times = sched.arrival_times(rng)
        expected = sched.integral(0.0, sched.duration)
        slack = 6.0 * math.sqrt(expected) + 10.0
        assert abs(len(times) - expected) <= slack

    @settings(max_examples=25, deadline=None)
    @given(sched=schedule, seed=st.integers(0, 10_000))
    def test_traces_sorted_and_in_range(self, sched, seed):
        """Arrivals are strictly increasing and inside [0, duration)."""
        rng = SeedSequence(seed).child("prop").generator("arrivals")
        times = sched.arrival_times(rng)
        assert all(a < b for a, b in zip(times, times[1:]))
        assert all(0.0 <= t < sched.duration for t in times)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           shape=st.sampled_from(sorted(set(shape_names()) - {"poisson"})),
           rps=st.floats(0.5, 4.0))
    def test_shaped_workloads_deterministic_per_seed(self, seed, shape,
                                                     rps):
        """Same seed + same shape => identical request traces."""
        make = lambda: ShareGPTWorkload(  # noqa: E731
            rps=rps, duration=80.0, seed=seed, shape=shape).generate()
        assert make() == make()


class TestComposition:
    @settings(max_examples=25, deadline=None)
    @given(a=schedule, b=schedule, c=schedule, seed=st.integers(0, 10_000))
    def test_composition_is_exactly_associative(self, a, b, c, seed):
        """(a+b)+c and a+(b+c) are the same schedule AND the same trace."""
        left = (a + b) + c
        right = a + (b + c)
        assert left == right
        rng_l = SeedSequence(seed).child("prop").generator("arrivals")
        rng_r = SeedSequence(seed).child("prop").generator("arrivals")
        assert left.arrival_times(rng_l) == right.arrival_times(rng_r)

    @settings(max_examples=25, deadline=None)
    @given(a=schedule, b=schedule, t0=st.floats(0.0, 60.0),
           width=st.floats(1.0, 60.0))
    def test_composed_integral_is_the_sum_of_integrals(self, a, b, t0,
                                                       width):
        """Superposed rates integrate additively (up to float assoc.)."""
        composed = a + b
        expected = a.integral(t0, t0 + width) + b.integral(t0, t0 + width)
        assert math.isclose(composed.integral(t0, t0 + width), expected,
                            rel_tol=1e-12, abs_tol=1e-12)

    def test_named_shapes_average_near_nominal_rate(self):
        """Every named shape integrates to ~rps * duration (+-40%)."""
        for shape in shape_names():
            sched = make_schedule(shape, 2.0, 240.0)
            total = sched.integral(0.0, 240.0)
            assert 0.6 * 480.0 <= total <= 1.4 * 480.0, shape


class TestKeepAliveGoldenReplay:
    """The default policy + default shape replay the pre-policy goldens.

    The 8 snapshots in ``tests/serverless/golden_sim_metrics.json`` were
    recorded before the autoscale layer existed; under
    ``autoscale="keep-alive"`` (the default) and the legacy Poisson
    generator they must still reproduce bit for bit — the policy layer's
    compatibility contract, stated as a test that runs with this suite.
    """

    def test_keep_alive_policy_replays_every_single_model_golden(self):
        from tests.serverless.test_golden_equivalence import (
            SINGLE_SCENARIOS,
            assert_matches,
        )
        golden_path = Path(__file__).parent.parent / "serverless" \
            / "golden_sim_metrics.json"
        with open(golden_path) as handle:
            golden = json.load(handle)
        for name, scenario in sorted(SINGLE_SCENARIOS.items()):
            workload = ShareGPTWorkload(rps=scenario["rps"],
                                        duration=scenario["duration"],
                                        seed=scenario["seed"])
            simulator = ClusterSimulator(
                ServingCostModel(scenario["model"]),
                SimulationConfig(autoscale="keep-alive",
                                 **scenario["config"]))
            metrics = simulator.run(workload.generate(),
                                    horizon=scenario["duration"])
            assert_matches(golden["single"][name], metrics, name)
            assert metrics.autoscale_decisions.get("idle_tick_armed",
                                                   0) == 0, name

    def test_keep_alive_policy_replays_every_multi_model_golden(self):
        from tests.serverless.test_golden_equivalence import (
            MULTI_SCENARIOS,
            _deployments,
            _multi_workloads,
            assert_matches,
        )
        from repro.serverless import MultiModelCluster, tag_workloads
        golden_path = Path(__file__).parent.parent / "serverless" \
            / "golden_sim_metrics.json"
        with open(golden_path) as handle:
            golden = json.load(handle)
        for name, rps in sorted(MULTI_SCENARIOS.items()):
            cluster = MultiModelCluster(_deployments(), num_gpus=4,
                                        autoscale="keep-alive")
            per_model = cluster.run(tag_workloads(_multi_workloads(rps)),
                                    horizon=60.0)
            for model in ("a", "b"):
                assert_matches(golden["multi"][name][model],
                               per_model[model], f"{name}/{model}")
