"""Property: the binary format round-trips any well-formed artifact.

For a randomly shaped model, ``save_binary`` followed by a lazy open and
full materialization must reproduce byte-for-byte what the eager
``load_binary`` path sees — the lazy fast path may defer I/O but never
change what it reads (DESIGN.md §6 extended to the on-disk format).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.binfmt import LazyArtifact, load_binary, save_binary
from repro.core.offline import OfflinePhase
from repro.simgpu.process import ExecutionMode

from tests.property.test_end_to_end_properties import (
    _cost_model,
    model_configs,
)


class TestBinaryRoundTripProperty:
    @settings(max_examples=5, deadline=None)
    @given(config=model_configs(), seed=st.integers(0, 10**6))
    def test_lazy_materialization_matches_eager_load(self, config, seed,
                                                     tmp_path_factory):
        artifact, _report = OfflinePhase(
            config, seed=seed, mode=ExecutionMode.COMPUTE,
            cost_model=_cost_model()).run()
        path = tmp_path_factory.mktemp("binfmt") / f"{config.name}.npz"
        save_binary(artifact, path)

        eager = load_binary(path)
        lazy = LazyArtifact(path)
        # The lazy view's metadata mirrors the eager artifact...
        assert lazy.model_name == eager.model_name
        assert lazy.graphs == {b: len(g.nodes)
                               for b, g in eager.graphs.items()}
        assert lazy.batches == sorted(eager.graphs)
        # ...and a full materialization is byte-identical to the eager
        # load, which is itself semantically equal to the original.
        assert lazy.materialize().to_json() == eager.to_json()
        assert json.loads(eager.to_json()) == json.loads(artifact.to_json())
