"""Property: the event kernel never delivers events out of timestamp order.

Whatever order events are scheduled in — including follow-ups scheduled
from inside handlers — dispatch times are non-decreasing, ties resolve by
handler priority then insertion sequence, and cancelled events never
fire.  This is the determinism contract every simulator built on
:mod:`repro.sim` inherits (MECHANISM.md "Event kernel").
"""

from hypothesis import given, settings, strategies as st

from repro.sim import EventLoop

# A schedule is a list of (time, kind-index, cancel?) triples; times are
# coarse multiples so ties actually occur.
_schedules = st.lists(
    st.tuples(
        st.integers(0, 20).map(lambda n: n * 0.5),
        st.integers(0, 2),
        st.booleans(),
    ),
    max_size=80,
)

_KINDS = ("arrival", "ready", "step_done")


def _build(schedule):
    """Run a schedule; returns the dispatch log and cancelled payloads."""
    log = []
    loop = EventLoop()
    for kind in _KINDS:
        loop.on(kind, lambda e, k=kind: log.append((loop.now, k, e.payload)))
    cancelled = set()
    for payload, (time, kind_idx, cancel) in enumerate(schedule):
        event = loop.schedule(time, _KINDS[kind_idx], payload)
        if cancel:
            loop.cancel(event)
            cancelled.add(payload)
    loop.run()
    return log, cancelled, loop


class TestDispatchOrderProperty:
    @settings(max_examples=200, deadline=None)
    @given(schedule=_schedules)
    def test_timestamps_never_decrease(self, schedule):
        log, cancelled, loop = _build(schedule)
        times = [t for t, _, _ in log]
        assert times == sorted(times)
        assert loop.now == (times[-1] if times else 0.0)

    @settings(max_examples=200, deadline=None)
    @given(schedule=_schedules)
    def test_ties_resolve_by_priority_then_insertion(self, schedule):
        log, _, _ = _build(schedule)
        priority = {k: i for i, k in enumerate(_KINDS)}
        keys = [(t, priority[k], p) for t, k, p in log]
        assert keys == sorted(keys)

    @settings(max_examples=200, deadline=None)
    @given(schedule=_schedules)
    def test_cancelled_events_never_fire_others_all_do(self, schedule):
        log, cancelled, loop = _build(schedule)
        fired = {p for _, _, p in log}
        assert fired.isdisjoint(cancelled)
        assert fired == set(range(len(schedule))) - cancelled
        assert loop.dispatched == len(schedule) - len(cancelled)

    @settings(max_examples=100, deadline=None)
    @given(schedule=_schedules, fanout=st.integers(0, 3))
    def test_handler_scheduled_followups_respect_order(self, schedule,
                                                       fanout):
        log = []
        loop = EventLoop()
        loop.on("seed", lambda e: _spawn(loop, log, e))
        loop.on("child", lambda e: log.append(loop.now))

        def _spawn(lp, out, event):
            out.append(lp.now)
            for i in range(fanout):
                lp.schedule_in(0.25 * (i + 1), "child", None)

        for time, _, _ in schedule:
            loop.schedule(time, "seed", None)
        loop.run()
        assert log == sorted(log)

    @settings(max_examples=100, deadline=None)
    @given(schedule=_schedules)
    def test_identical_schedules_replay_identically(self, schedule):
        assert _build(schedule)[0] == _build(schedule)[0]
