"""Property test: Medusa restores *any* well-formed model bit-exactly.

The strongest invariant in DESIGN.md §6: for a randomly shaped model
(layers, per-layer kernel count, epilogue size, batch-size list) and random
process seeds, the offline→online pipeline yields graphs whose replay
output equals eager forwarding exactly.  Examples are expensive (a full
offline phase plus a fresh-process restore each), so the example budget is
small but the input space is the generator's.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.offline import OfflinePhase
from repro.core.validation import validate_restoration
from repro.models.config import ModelConfig
from repro.simgpu.costmodel import CostModel, GpuProperties
from repro.simgpu.process import ExecutionMode


def _cost_model():
    return CostModel(gpu=GpuProperties(name="Prop-GPU",
                                       total_memory_bytes=256 * 1024**2))


@st.composite
def model_configs(draw):
    num_layers = draw(st.integers(1, 3))
    kernels_per_layer = draw(st.integers(6, 13))
    epilogue_aux = draw(st.integers(0, 3))
    batch_count = draw(st.integers(1, 3))
    batch_sizes = tuple(sorted(draw(st.sets(
        st.sampled_from([1, 2, 4, 8, 16]),
        min_size=batch_count, max_size=batch_count))))
    remainder = draw(st.integers(0, len(batch_sizes) - 1))
    base = num_layers * kernels_per_layer + 4 + epilogue_aux
    seed = draw(st.integers(0, 2**31))
    return ModelConfig(
        name=f"Prop-{num_layers}L{kernels_per_layer}K{epilogue_aux}A"
             f"-{len(batch_sizes)}B{remainder}R",
        family="prop",
        param_bytes=draw(st.integers(1, 32)) * 1024**2,
        num_layers=num_layers,
        hidden_size=64,
        vocab_size=128,
        total_graph_nodes=len(batch_sizes) * base + remainder,
        capture_batch_sizes=batch_sizes,
        checkpoint_seed=seed,
    )


class TestRestorationProperty:
    @settings(max_examples=6, deadline=None)
    @given(config=model_configs(), offline_seed=st.integers(0, 10**6),
           online_seed=st.integers(0, 10**6))
    def test_offline_online_bit_exact(self, config, offline_seed,
                                      online_seed):
        cost_model = _cost_model()
        artifact, _report = OfflinePhase(
            config, seed=offline_seed, mode=ExecutionMode.COMPUTE,
            cost_model=cost_model).run()
        assert artifact.total_nodes == config.total_graph_nodes
        report = validate_restoration(
            config, artifact, batches=list(config.capture_batch_sizes),
            seed=online_seed, cost_model=cost_model)
        assert report.passed
        assert report.max_abs_error == 0.0
