"""Properties of the chunked artifact format (repro.core.chunks).

Three invariants the content-addressed path must hold for any
well-formed artifact:

- Splitting an artifact into chunks and materializing from the manifest
  is byte-identical to the eager ``load_binary`` of the monolithic
  ``.npz`` — for every replay shard size, including degenerate ones
  (one event per shard, everything in one shard).
- Chunk digests are a pure function of chunk *content*: an artifact
  stored under a different model identity shares every chunk byte, so a
  store holding N identical-content identities keeps exactly one copy.
- The manifest round-trips through JSON with no drift, and chunking is
  deterministic (same artifact in, same digests out).
"""

import dataclasses
import json

from hypothesis import given, settings, strategies as st

from repro.core.binfmt import load_binary, save_binary
from repro.core.chunks import (
    ChunkManifest,
    ChunkedLazyArtifact,
    chunk_model,
)
from repro.core.offline import OfflinePhase
from repro.core.store import ArtifactStore
from repro.simgpu.process import ExecutionMode

from tests.property.test_end_to_end_properties import (
    _cost_model,
    model_configs,
)


def _materialized(config, seed):
    artifact, _report = OfflinePhase(
        config, seed=seed, mode=ExecutionMode.COMPUTE,
        cost_model=_cost_model()).run()
    return artifact


class TestChunkRoundTripProperty:
    @settings(max_examples=5, deadline=None)
    @given(config=model_configs(), seed=st.integers(0, 10**6),
           shard_events=st.sampled_from([1, 7, 100, 16384]))
    def test_materialize_matches_monolithic_load(self, config, seed,
                                                 shard_events,
                                                 tmp_path_factory):
        artifact = _materialized(config, seed)
        path = tmp_path_factory.mktemp("chunks") / f"{config.name}.npz"
        save_binary(artifact, path)
        mono = load_binary(path)

        manifest, blobs = chunk_model(
            artifact, replay_shard_events=shard_events)
        lazy = ChunkedLazyArtifact.from_blobs(manifest, blobs)
        # The chunked view's metadata mirrors the monolithic artifact...
        assert lazy.model_name == mono.model_name
        assert lazy.batches == sorted(mono.graphs)
        # ...the manifest accounts for every stored byte exactly...
        assert manifest.total_bytes == sum(len(b) for b in blobs.values())
        # ...and the reassembled artifact is byte-identical to the eager
        # load of the monolithic file.
        assert lazy.materialize().to_json() == mono.to_json()

    @settings(max_examples=5, deadline=None)
    @given(config=model_configs(), seed=st.integers(0, 10**6))
    def test_chunking_is_deterministic(self, config, seed):
        artifact = _materialized(config, seed)
        m1, blobs1 = chunk_model(artifact)
        m2, blobs2 = chunk_model(artifact)
        assert m1.to_json() == m2.to_json()
        assert blobs1 == blobs2

    @settings(max_examples=5, deadline=None)
    @given(config=model_configs(), seed=st.integers(0, 10**6))
    def test_manifest_json_round_trip(self, config, seed):
        artifact = _materialized(config, seed)
        manifest, _blobs = chunk_model(artifact)
        one = manifest.to_json()
        two = ChunkManifest.from_json(one).to_json()
        assert one == two
        assert json.loads(one) == json.loads(two)


class TestChunkDedupProperty:
    @settings(max_examples=4, deadline=None)
    @given(config=model_configs(), seed=st.integers(0, 10**6),
           copies=st.integers(2, 4))
    def test_identical_content_shares_every_chunk(self, config, seed,
                                                  copies,
                                                  tmp_path_factory):
        """N model identities with the same bytes keep one chunk set.

        Chunk digests depend only on the packed member arrays, never on
        the manifest's identity metadata — so a renamed copy of an
        artifact adds manifests, not bytes.
        """
        artifact = _materialized(config, seed)
        store = ArtifactStore(tmp_path_factory.mktemp("store") / "s")
        store.put(artifact)
        baseline = store.stats()
        for i in range(1, copies):
            store.put(dataclasses.replace(
                artifact, model_name=f"{artifact.model_name}-copy{i}"))

        stats = store.stats()
        assert stats["unique_chunks"] == baseline["unique_chunks"]
        assert stats["unique_bytes"] == baseline["unique_bytes"]
        assert stats["total_chunks"] == copies * baseline["total_chunks"]
        assert stats["dedup_ratio"] == float(copies)
        # Every identity still materializes to the same content.
        original = store.get(artifact.gpu_name, artifact.model_name)
        for i in range(1, copies):
            copy = store.get(artifact.gpu_name,
                             f"{artifact.model_name}-copy{i}")
            assert copy.graphs.keys() == original.graphs.keys()
            assert copy.permanent_contents == original.permanent_contents

    @settings(max_examples=4, deadline=None)
    @given(config=model_configs(), seed=st.integers(0, 10**6))
    def test_distinct_seeds_never_corrupt_each_other(self, config, seed,
                                                     tmp_path_factory):
        """Two different-content artifacts in one store stay independent."""
        a = _materialized(config, seed)
        b = dataclasses.replace(_materialized(config, seed + 1),
                                model_name=f"{config.name}-alt")
        store = ArtifactStore(tmp_path_factory.mktemp("store") / "s")
        store.put(a)
        store.put(b)
        got_a = store.get(a.gpu_name, a.model_name)
        got_b = store.get(b.gpu_name, b.model_name)
        assert got_a.to_json() == load_json_normalized(a)
        assert got_b.to_json() == load_json_normalized(b)


def load_json_normalized(artifact):
    """Round-trip through the binary format to normalize dtypes/layout
    exactly the way a store ``get`` does."""
    manifest, blobs = chunk_model(artifact)
    return ChunkedLazyArtifact.from_blobs(manifest,
                                          blobs).materialize().to_json()
