"""Property-based tests of the device allocator (hypothesis).

These pin the invariants DESIGN.md §6 lists: live buffers never overlap,
accounting never exceeds capacity, LIFO reuse, and replaying any recorded
event sequence on a fresh allocator reproduces the same relative layout.
"""

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IllegalMemoryAccessError, OutOfMemoryError
from repro.simgpu.memory import ALIGNMENT, DeviceAllocator

CAPACITY = 1 << 22          # 4 MiB keeps examples fast

# An operation program: alloc(size) | free(k) | pool_free(k) | empty_cache,
# where k picks among currently live allocations.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 8192)),
        st.tuples(st.just("free"), st.integers(0, 30)),
        st.tuples(st.just("pool_free"), st.integers(0, 30)),
        st.tuples(st.just("empty_cache"), st.just(0)),
    ),
    max_size=60,
)


def _run_program(allocator: DeviceAllocator, program) -> List[int]:
    """Apply a program, skipping infeasible steps; returns live addresses."""
    live: List[int] = []
    for op, arg in program:
        if op == "alloc":
            try:
                buffer = allocator.malloc(arg, tag="t")
            except OutOfMemoryError:
                continue
            live.append(buffer.address)
        elif op in ("free", "pool_free") and live:
            address = live.pop(arg % len(live))
            try:
                getattr(allocator, op)(address)
            except IllegalMemoryAccessError:
                pass
        elif op == "empty_cache":
            allocator.empty_cache()
    return live


class TestAllocatorInvariants:
    @settings(max_examples=120, deadline=None)
    @given(program=_ops)
    def test_live_buffers_never_overlap(self, program):
        allocator = DeviceAllocator(base=0x7F00_0000_0000,
                                    capacity_bytes=CAPACITY)
        _run_program(allocator, program)
        spans = sorted((b.address, b.end) for b in allocator.live_buffers)
        for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= start_b

    @settings(max_examples=120, deadline=None)
    @given(program=_ops)
    def test_accounting_within_capacity(self, program):
        allocator = DeviceAllocator(base=0x7F00_0000_0000,
                                    capacity_bytes=CAPACITY)
        _run_program(allocator, program)
        assert 0 <= allocator.bytes_in_use <= CAPACITY
        assert allocator.peak_bytes <= CAPACITY
        assert allocator.bytes_in_use <= allocator.peak_bytes

    @settings(max_examples=120, deadline=None)
    @given(program=_ops)
    def test_alloc_indices_strictly_increase(self, program):
        allocator = DeviceAllocator(base=0x7F00_0000_0000,
                                    capacity_bytes=CAPACITY)
        _run_program(allocator, program)
        indices = [b.alloc_index for b in allocator.history]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    @settings(max_examples=100, deadline=None)
    @given(program=_ops)
    def test_resolve_finds_every_live_buffer(self, program):
        allocator = DeviceAllocator(base=0x7F00_0000_0000,
                                    capacity_bytes=CAPACITY)
        live = _run_program(allocator, program)
        for address in live:
            # Superseded addresses resolve to their newest owner.
            assert allocator.resolve(address).address <= address

    @settings(max_examples=100, deadline=None)
    @given(program=_ops)
    def test_replay_reproduces_relative_layout(self, program):
        """The §4.2 property: replaying the recorded event sequence on a
        fresh allocator (different base) reproduces every address *offset*
        and the same alloc-index aliasing structure."""
        first = DeviceAllocator(base=0x7F00_0000_0000,
                                capacity_bytes=CAPACITY)
        _run_program(first, program)
        second = DeviceAllocator(base=0x7E00_0000_0000,
                                 capacity_bytes=CAPACITY)
        index_to_addr = {}
        for event in first.events:
            if event.kind == "alloc":
                buffer = second.malloc(event.size, tag=event.tag,
                                       pool=event.pool)
                assert buffer.alloc_index == event.alloc_index
                index_to_addr[event.alloc_index] = buffer.address
            elif event.kind == "free":
                address = index_to_addr[event.alloc_index]
                if event.pooled:
                    second.pool_free(address)
                else:
                    second.free(address)
            elif event.kind == "empty_cache":
                second.empty_cache()
        for event in first.events:
            if event.kind == "alloc":
                assert (event.address - first.base
                        == index_to_addr[event.alloc_index] - second.base)


class TestLifoProperty:
    @settings(max_examples=60, deadline=None)
    @given(size=st.integers(1, 4096))
    def test_pool_free_then_alloc_same_size_reuses(self, size):
        allocator = DeviceAllocator(base=0x7F00_0000_0000,
                                    capacity_bytes=CAPACITY)
        first = allocator.malloc(size)
        allocator.pool_free(first.address)
        second = allocator.malloc(size)
        assert second.address == first.address

    @settings(max_examples=60, deadline=None)
    @given(size_a=st.integers(1, 2048), size_b=st.integers(2049, 4096))
    def test_different_bucket_no_reuse(self, size_a, size_b):
        allocator = DeviceAllocator(base=0x7F00_0000_0000,
                                    capacity_bytes=CAPACITY)
        first = allocator.malloc(size_a)
        allocator.pool_free(first.address)
        if (size_a + ALIGNMENT - 1) // ALIGNMENT == \
                (size_b + ALIGNMENT - 1) // ALIGNMENT:
            return   # same bucket after alignment: reuse is legal
        second = allocator.malloc(size_b)
        assert second.address != first.address
