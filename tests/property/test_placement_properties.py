"""Properties of the artifact placement layer (repro.serverless.placement).

Four invariants the cache hierarchy and the policies must hold under
arbitrary admit/hit traffic:

- No cache tier's resident load ever exceeds its declared capacity.
- A hit on an artifact implies it was admitted (or demoted/promoted into
  a tier) earlier with no spill-out of the hierarchy in between — replayed
  straight from the cache's append-only event log.
- Placement is deterministic: the same request trace under the same
  policy produces identical placements, metrics, and cache logs.
- The tier-resolved ``fetch_artifact`` durations are monotone in tier
  coldness: a warmer tier never fetches slower, and the rewrite never
  exceeds the plan's remote baseline.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.engine.loadplan import ScheduledStage, Timeline
from repro.errors import SchedulingError
from repro.serverless import (
    ColdStartProfile,
    ModelDeployment,
    MultiModelCluster,
    NodeCache,
    ServingCostModel,
    TaggedRequest,
    TierSpec,
    make_policy,
)
from repro.serverless.placement import fetch_duration
from repro.serverless.workload import Request

# -- traffic strategies ------------------------------------------------------

#: Artifact keys are a small pool so hits actually happen.
_keys = st.integers(0, 5).map(lambda n: ("model", f"m{n}"))

#: One cache operation: touch the keyed artifact (admit on miss, hit on
#: residency) with a size drawn from a small positive grid.
_ops = st.lists(st.tuples(_keys, st.integers(1, 4).map(lambda n: n / 2)),
                min_size=1, max_size=60)

_tier_ladders = st.sampled_from([
    (TierSpec("gpu", 1.0, 0.0), TierSpec("dram", 2.0, 0.05),
     TierSpec("ssd", 8.0, 0.35), TierSpec("remote", math.inf, 1.0)),
    (TierSpec("dram", 1.5, 0.1), TierSpec("remote", math.inf, 1.0)),
    (TierSpec("gpu", 0.5, 0.0), TierSpec("dram", 1.0, 0.2),
     TierSpec("remote", math.inf, 1.0)),
])


def _drive(cache, ops):
    """Replay one admit-or-hit trace against a node cache."""
    for key, size in ops:
        if cache.tier_of(key) is None:
            cache.admit(key, size)
        else:
            cache.hit(key)


class TestTierCapacityProperty:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops, tiers=_tier_ladders)
    def test_capacity_never_exceeded(self, ops, tiers):
        cache = NodeCache(0, tiers)
        for key, size in ops:
            if cache.tier_of(key) is None:
                cache.admit(key, size)
            else:
                cache.hit(key)
            for tier in tiers[:-1]:
                assert cache.load(tier.name) <= tier.capacity + 1e-12, \
                    tier.name


class TestHitImpliesResidencyProperty:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops, tiers=_tier_ladders)
    def test_every_hit_has_a_prior_placement_without_spill(self, ops,
                                                          tiers):
        cache = NodeCache(0, tiers)
        _drive(cache, ops)
        # Replay the append-only log: a "hit" on a key requires the key
        # to be resident, i.e. placed ("admit"/"demote"/"promote") at
        # some earlier seq with no intervening "evict" (spill-out).
        resident = set()
        for event in cache.events:
            if event.kind in ("admit", "demote", "promote"):
                resident.add(event.key)
            elif event.kind == "evict":
                resident.discard(event.key)
            elif event.kind == "hit":
                assert event.key in resident, event
        # And the log's final residency view matches the cache's own.
        for key in resident:
            assert cache.tier_of(key) is not None
        assert cache.events == sorted(cache.events,
                                      key=lambda e: e.seq)


# -- determinism over whole simulations --------------------------------------

def _profile():
    stages = [
        ScheduledStage("fetch_artifact", 0.0, 1.0, lane="disk"),
        ScheduledStage("restore", 1.0, 1.5, lane="gpu_compute",
                       critical=True),
    ]
    return ColdStartProfile(loading_time=1.5, ready_time=1.5,
                            timeline=Timeline(None, stages))


def _run_cluster(policy, trace):
    profile = _profile()
    deployments = [
        ModelDeployment(name=f"m{i}", costs=ServingCostModel("Qwen1.5-4B"),
                        cold_start_latency=1.5, profile=profile)
        for i in range(3)
    ]
    cluster = MultiModelCluster(deployments, num_gpus=2, placement=policy)
    tagged = [TaggedRequest(f"m{model}", Request(
        request_id=i, arrival_time=round(arrival, 3),
        prompt_tokens=64, output_tokens=8))
        for i, (model, arrival) in enumerate(trace)]
    tagged.sort(key=lambda t: t.request.arrival_time)
    try:
        cluster.run(tagged, horizon=200.0)
    except SchedulingError as exc:
        # Three cold models can exhaust two GPUs with nothing evictable;
        # that refusal must itself reproduce identically.
        return ("exhausted", str(exc))
    agg = cluster.aggregate()
    placements = [(model, inst.node_ids, inst.fetch_tier)
                  for model, pool in cluster.instances.items()
                  for inst in pool]
    return agg.summary(), placements


_traces = st.lists(st.tuples(st.integers(0, 2),
                             st.floats(0.0, 100.0, allow_nan=False)),
                   min_size=1, max_size=30)


class TestPlacementDeterminismProperty:
    @settings(max_examples=25, deadline=None)
    @given(trace=_traces,
           policy=st.sampled_from(["flat", "locality", "affinity"]))
    def test_same_trace_same_placements(self, trace, policy):
        first = _run_cluster(policy, trace)
        second = _run_cluster(policy, trace)
        assert first == second


# -- fetch-cost monotonicity --------------------------------------------------

class TestFetchMonotonicityProperty:
    @settings(max_examples=200, deadline=None)
    @given(tiers=_tier_ladders,
           base=st.floats(0.0, 100.0, allow_nan=False))
    def test_warmer_tiers_never_fetch_slower(self, tiers, base):
        durations = [fetch_duration(tiers, tier.name, base)
                     for tier in tiers]
        assert durations == sorted(durations)
        assert all(d <= base for d in durations)

    @settings(max_examples=100, deadline=None)
    @given(tiers=_tier_ladders, base=st.floats(0.01, 50.0,
                                               allow_nan=False))
    def test_rewritten_profile_ready_monotone_in_tier(self, tiers, base):
        stages = [
            ScheduledStage("fetch_artifact", 0.0, base, lane="disk"),
            ScheduledStage("restore", base, base + 0.5,
                           lane="gpu_compute", critical=True),
        ]
        profile = ColdStartProfile(loading_time=base + 0.5,
                                   ready_time=base + 0.5,
                                   timeline=Timeline(None, stages))
        readiness = [
            profile.with_fetch_duration(
                fetch_duration(tiers, tier.name, base)).serving_ready_time
            for tier in tiers
        ]
        assert readiness == sorted(readiness)
        assert readiness[-1] == profile.serving_ready_time


# -- policy construction ------------------------------------------------------

class TestPolicyFactoryProperty:
    @settings(max_examples=50, deadline=None)
    @given(tiers=_tier_ladders, nodes=st.integers(1, 8))
    def test_fresh_policies_share_no_cache_state(self, tiers, nodes):
        first = make_policy("locality", nodes, tiers)
        second = make_policy("locality", nodes, tiers)
        first.caches[0].admit(("model", "x"), 1.0)
        assert second.caches[0].tier_of(("model", "x")) is None
        assert len(first.caches) == nodes
