"""Property-based tests of the pointer analysis (hypothesis).

The central invariant (DESIGN.md §6): for any allocation/free/launch
program, backward matching binds each launch parameter to the allocation
that was live at launch time — never to a deallocated alias.
"""

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.pointer_analysis import AllocationIndex
from repro.core.trace import (
    AllocTraceEvent,
    FreeTraceEvent,
    LaunchTraceEvent,
    Trace,
)

HEAP = 0x7F00_0000_0000
SIZE = 256

# Programs over a small pool of address slots: each slot can be allocated,
# freed, and re-allocated (aliasing), with launches referencing live slots.
_program = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(0, 5)),
        st.tuples(st.just("free"), st.integers(0, 5)),
        st.tuples(st.just("launch"), st.integers(0, 5)),
    ),
    min_size=1, max_size=50,
)


def _build_trace(program):
    """Interpret the program; returns (trace, ground_truth).

    ground_truth: list of (launch_seq, slot, expected_alloc_index).
    """
    events = []
    seq = 0
    alloc_index = 0
    live = {}      # slot -> alloc_index currently live there
    truth = []
    for op, slot in program:
        address = HEAP + slot * SIZE
        if op == "alloc" and slot not in live:
            events.append(AllocTraceEvent(seq=seq, alloc_index=alloc_index,
                                          address=address, size=SIZE,
                                          tag="t"))
            live[slot] = alloc_index
            alloc_index += 1
            seq += 1
        elif op == "free" and slot in live:
            events.append(FreeTraceEvent(seq=seq,
                                         alloc_index=live.pop(slot),
                                         address=address, pooled=True))
            seq += 1
        elif op == "launch" and slot in live:
            events.append(LaunchTraceEvent(
                seq=seq, kernel_name="k", library="l",
                param_sizes=(8,), param_values=(address,),
                launch_dims=(), captured=True))
            truth.append((seq, slot, live[slot]))
            seq += 1
    return Trace(events=events), truth


class TestBackwardMatchingProperty:
    @settings(max_examples=200, deadline=None)
    @given(program=_program)
    def test_matches_the_live_allocation(self, program):
        trace, truth = _build_trace(program)
        if not truth:
            return   # program produced no launches; vacuously true
        index = AllocationIndex(trace)
        for launch_seq, slot, expected in truth:
            address = HEAP + slot * SIZE
            match = index.backward_match(address, before_seq=launch_seq)
            assert match is not None
            assert match == (expected, 0)

    @settings(max_examples=200, deadline=None)
    @given(program=_program, offset=st.integers(1, SIZE - 1))
    def test_interior_pointers_match_with_offset(self, program, offset):
        trace, truth = _build_trace(program)
        if not truth:
            return
        index = AllocationIndex(trace)
        launch_seq, slot, expected = truth[-1]
        address = HEAP + slot * SIZE + offset
        match = index.backward_match(address, before_seq=launch_seq)
        assert match == (expected, offset)

    @settings(max_examples=100, deadline=None)
    @given(program=_program)
    def test_naive_never_binds_to_later_allocation(self, program):
        """Naive matching errs towards *earlier* allocations, never later
        ones — the direction Figure 6's false positive takes."""
        trace, truth = _build_trace(program)
        if not truth:
            return
        index = AllocationIndex(trace)
        for launch_seq, slot, expected in truth:
            address = HEAP + slot * SIZE
            naive = index.naive_match(address)
            assert naive is not None
            assert naive[0] <= expected
