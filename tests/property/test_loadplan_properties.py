"""Property-based tests of the LoadPlan lane scheduler's invariants.

For every registered plan — and for randomly generated stage DAGs — the
scheduler must produce placements where no stage starts before its
dependencies end, no two stages overlap on one resource lane, and the
critical-path marking traces a zero-slack chain from time zero to the
makespan.  The three paper strategies are additionally checked against the
legacy closed-form composition (the test-local oracle in
``tests.engine.test_loadplan``) on arbitrary durations and on every zoo
model's cost-model-derived durations.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.lanes import Lane
from repro.engine.loadplan import (
    CAPTURE,
    KV_INIT,
    MEDUSA_RESTORE,
    MEDUSA_WARMUP,
    STRUCTURE,
    TOKENIZER,
    WEIGHTS,
    LoadPlan,
    PlanStage,
)
from repro.engine.strategies import Strategy, plan_for, registered_plans
from repro.models.zoo import PAPER_MODELS
from repro.simgpu.costmodel import CostModel

from tests.engine.test_loadplan import oracle_placements, plan_placements

_EPS = 1e-9
_PLAN_KEYS = sorted(registered_plans())

durations_st = st.floats(min_value=0.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False)
penalty_st = st.floats(min_value=0.0, max_value=1.0,
                       allow_nan=False, allow_infinity=False)


def check_invariants(plan: LoadPlan, timeline) -> None:
    """The scheduler invariants every placement must satisfy."""
    stages = {s.name: s for s in timeline.stages}
    assert set(stages) == {s.name for s in plan.stages}

    # 1. No stage starts before time zero or before a dependency ends.
    for declared in plan.stages:
        placed = stages[declared.name]
        assert placed.start >= 0.0
        assert placed.end >= placed.start
        for dep in declared.deps:
            assert stages[dep].end <= placed.start + _EPS, \
                f"{declared.name} started before dependency {dep} ended"

    # 2. Per-lane mutual exclusion: lanes run one stage at a time.
    by_lane = {}
    for declared in plan.stages:
        by_lane.setdefault(declared.lane, []).append(stages[declared.name])
    for lane, lane_stages in by_lane.items():
        lane_stages.sort(key=lambda s: (s.start, s.end))
        for earlier, later in zip(lane_stages, lane_stages[1:]):
            assert earlier.end <= later.start + _EPS, \
                f"lane {lane} overlaps: {earlier.name} / {later.name}"

    # 3. The timeline total is the makespan; ready covers foreground only.
    assert timeline.total == max(s.end for s in timeline.stages)
    foreground = [s for s in timeline.stages if not s.background]
    if foreground:
        assert timeline.ready == max(s.end for s in foreground)

    # 4. Critical marking: every foreground stage ending at the *ready*
    #    instant is critical (background stages never are — they finish
    #    behind serving readiness by design), and every critical stage is
    #    reachable from time zero through a zero-slack chain of critical
    #    stages — so the critical durations along any such chain sum to
    #    the ready makespan.
    critical = [s for s in timeline.stages if s.critical]
    for placed in timeline.stages:
        if placed.background:
            assert not placed.critical, f"{placed.name} is background"
    if foreground:
        assert critical
        for placed in foreground:
            if abs(placed.end - timeline.ready) <= _EPS:
                assert placed.critical, f"{placed.name} ends at ready"
    for placed in critical:
        if placed.start > _EPS:
            assert any(abs(other.end - placed.start) <= _EPS
                       for other in critical if other.name != placed.name), \
                f"critical {placed.name} has no zero-slack predecessor"


class TestRegisteredPlanInvariants:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), penalty=penalty_st)
    def test_every_plan_schedules_validly(self, data, penalty):
        for key in _PLAN_KEYS:
            plan = plan_for(key)
            durations = {stage.name: data.draw(durations_st, label=stage.name)
                         for stage in plan.stages}
            timeline = plan.schedule(
                durations, {"weight_kv_interference": penalty})
            check_invariants(plan, timeline)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), penalty=penalty_st)
    def test_strategies_match_legacy_oracle(self, data, penalty):
        """Arbitrary durations: the plans equal the closed-form math."""
        names = (STRUCTURE, WEIGHTS, TOKENIZER, KV_INIT, CAPTURE,
                 MEDUSA_WARMUP, MEDUSA_RESTORE)
        durations = {name: data.draw(durations_st, label=name)
                     for name in names}
        for strategy in (Strategy.VLLM, Strategy.VLLM_ASYNC,
                         Strategy.MEDUSA, Strategy.NO_CUDA_GRAPH,
                         Strategy.DEFERRED):
            timeline = plan_for(strategy).schedule(
                durations, {"weight_kv_interference": penalty},
                strategy=strategy)
            assert plan_placements(timeline) == \
                oracle_placements(strategy, durations, penalty), strategy


class TestRandomDagInvariants:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_plans_schedule_validly(self, data):
        """Any topologically-declared DAG obeys the scheduler invariants."""
        count = data.draw(st.integers(1, 8), label="count")
        names = [f"s{i}" for i in range(count)]
        stages = []
        for index, name in enumerate(names):
            deps = tuple(data.draw(
                st.sets(st.sampled_from(names[:index])) if index else
                st.just(set()), label=f"deps-{name}"))
            lane = data.draw(st.sampled_from(list(Lane)),
                             label=f"lane-{name}")
            stages.append(PlanStage(name, lane, deps=deps))
        plan = LoadPlan("prop-random", tuple(stages))
        durations = {name: data.draw(durations_st, label=f"dur-{name}")
                     for name in names}
        check_invariants(plan, plan.schedule(durations))


class TestZooModelOracle:
    def test_all_zoo_models_match_legacy_oracle(self):
        """Cost-model-derived durations for every zoo model, all plans."""
        cm = CostModel()
        for config in PAPER_MODELS:
            durations = {
                STRUCTURE: cm.structure_init_time(config.param_bytes),
                WEIGHTS: cm.weight_load_time(config.param_bytes),
                TOKENIZER: cm.tokenizer_load_time(config.vocab_size),
                KV_INIT: cm.kv_profile_time(config.param_bytes)
                         + cm.kv_block_alloc_time,
                CAPTURE: cm.capture_forward_time(config.total_graph_nodes)
                         + cm.instantiate_time(config.total_graph_nodes),
                MEDUSA_WARMUP: cm.capture_forward_time(
                    config.total_graph_nodes // max(1, config.num_layers)),
                MEDUSA_RESTORE: cm.restore_fill_per_node
                                * config.total_graph_nodes,
            }
            medusa_durations = dict(durations, kv_init=cm.kv_restore_time)
            for strategy in (Strategy.VLLM, Strategy.VLLM_ASYNC,
                             Strategy.NO_CUDA_GRAPH, Strategy.DEFERRED):
                timeline = plan_for(strategy).schedule(
                    durations, cm, strategy=strategy)
                assert plan_placements(timeline) == oracle_placements(
                    strategy, durations, cm.weight_kv_interference), \
                    (config.name, strategy)
            timeline = plan_for(Strategy.MEDUSA).schedule(
                medusa_durations, cm, strategy=Strategy.MEDUSA)
            assert plan_placements(timeline) == oracle_placements(
                Strategy.MEDUSA, medusa_durations,
                cm.weight_kv_interference), config.name
