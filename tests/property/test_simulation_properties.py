"""Property-based tests of workload + cluster simulation invariants."""

from hypothesis import given, settings, strategies as st

from repro.serverless import (
    ClusterSimulator,
    ServingCostModel,
    ShareGPTWorkload,
    SimulationConfig,
)
from repro.utils.stats import percentile

_COSTS = ServingCostModel("Qwen1.5-4B")


class TestSimulationInvariants:
    @settings(max_examples=12, deadline=None)
    @given(rps=st.floats(0.5, 6.0), seed=st.integers(0, 10_000),
           cold=st.floats(0.1, 5.0))
    def test_conservation_and_sane_ttfts(self, rps, seed, cold):
        workload = ShareGPTWorkload(rps=rps, duration=40, seed=seed)
        requests = workload.generate()
        simulator = ClusterSimulator(_COSTS, SimulationConfig(
            num_gpus=2, cold_start_latency=cold))
        metrics = simulator.run(requests, horizon=40)
        assert metrics.arrived == len(requests)
        assert len(metrics.ttfts) == len(requests)      # no request lost
        assert len(metrics.latencies) == len(requests)  # all drained
        assert all(t > 0 for t in metrics.ttfts)
        assert all(lat >= 0 for lat in metrics.latencies)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_cold_start_monotonicity(self, seed):
        """A strictly shorter cold start never worsens mean TTFT."""
        workload = ShareGPTWorkload(rps=3, duration=60, seed=seed)
        requests = workload.generate()
        means = []
        for cold in (0.5, 5.0):
            simulator = ClusterSimulator(_COSTS, SimulationConfig(
                num_gpus=2, cold_start_latency=cold))
            means.append(simulator.run(requests, horizon=60).mean_ttft)
        assert means[0] <= means[1] + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_determinism(self, seed):
        workload = ShareGPTWorkload(rps=2, duration=30, seed=seed)
        requests = workload.generate()
        runs = []
        for _ in range(2):
            simulator = ClusterSimulator(_COSTS, SimulationConfig(num_gpus=2))
            runs.append(simulator.run(requests, horizon=30).ttfts)
        assert runs[0] == runs[1]


class TestPercentileProperties:
    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
           q=st.floats(0, 100))
    def test_percentile_bounded_by_extremes(self, values, q):
        result = percentile(values, q)
        slack = 1e-9 * max(abs(v) for v in values)   # interpolation rounding
        assert min(values) - slack <= result <= max(values) + slack

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
           q_low=st.floats(0, 100), q_high=st.floats(0, 100))
    def test_percentile_monotone_in_q(self, values, q_low, q_high):
        if q_low > q_high:
            q_low, q_high = q_high, q_low
        low = percentile(values, q_low)
        high = percentile(values, q_high)
        assert low <= high + 1e-12 * max(abs(low), abs(high))
