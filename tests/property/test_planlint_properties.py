"""Property-based guarantees of the static plan verifier.

Two directions, over randomly generated stage DAGs:

- **No false positives**: every pair the analyzer calls *concurrent* is
  genuinely schedulable in overlap — give the pair unit duration and
  every other stage zero, and the lane scheduler places both at
  ``[0, 1]``.  Conversely, pairs the happens-before closure orders are
  never overlapped by the scheduler, for any durations.  So a reported
  race is never one the scheduler's placements could actually order.
- **No false negatives**: injecting conflicting effects onto any
  concurrent pair always produces the PLN001 diagnostic naming that
  pair, and every reported race anchors to a genuinely concurrent pair.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.analysis.planlint import concurrent_pairs, lint_plan
from repro.engine.lanes import Lane
from repro.engine.loadplan import LoadPlan, PlanStage

_EPS = 1e-9
_RESOURCES = ("r0", "r1", "r2")

durations_st = st.floats(min_value=0.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False)


def draw_plan(data, with_effects=False, with_background=False):
    """A random topologically-declared plan (mirrors the scheduler's
    random-DAG property suite)."""
    count = data.draw(st.integers(2, 8), label="count")
    names = [f"s{i}" for i in range(count)]
    stages = []
    for index, name in enumerate(names):
        deps = tuple(sorted(data.draw(
            st.sets(st.sampled_from(names[:index])) if index else
            st.just(set()), label=f"deps-{name}")))
        lane = data.draw(st.sampled_from(list(Lane)), label=f"lane-{name}")
        reads = writes = ()
        if with_effects:
            reads = tuple(sorted(data.draw(
                st.sets(st.sampled_from(_RESOURCES)),
                label=f"reads-{name}")))
            writes = tuple(sorted(data.draw(
                st.sets(st.sampled_from(_RESOURCES)),
                label=f"writes-{name}")))
        background = with_background and data.draw(
            st.booleans(), label=f"bg-{name}")
        stages.append(PlanStage(name, lane, deps=deps, reads=reads,
                                writes=writes, background=background))
    return LoadPlan("prop-lint", tuple(stages))


def _lint(plan):
    """Suppress binding noise: every stage name is an accepted action."""
    return lint_plan(plan, known_actions=[s.name for s in plan.stages],
                     cost_model={})


def _overlaps(a, b):
    return a.start < b.end - _EPS and b.start < a.end - _EPS


class TestConcurrencyIsExact:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_concurrent_pairs_admit_an_overlap_witness(self, data):
        """Unit duration for the pair, zero elsewhere -> both at [0, 1]."""
        plan = draw_plan(data)
        for first, second in concurrent_pairs(plan):
            durations = {first: 1.0, second: 1.0}
            timeline = plan.schedule(durations)
            a, b = timeline.stage(first), timeline.stage(second)
            assert a.start == 0.0 and b.start == 0.0, (first, second)
            assert _overlaps(a, b), (first, second)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_ordered_pairs_never_overlap(self, data):
        """Pairs outside the concurrent set stay serialized under any
        durations the scheduler is handed."""
        plan = draw_plan(data)
        names = [s.name for s in plan.stages]
        concurrent = set(concurrent_pairs(plan))
        durations = {name: data.draw(durations_st, label=f"dur-{name}")
                     for name in names}
        timeline = plan.schedule(durations)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                if (first, second) in concurrent:
                    continue
                a, b = timeline.stage(first), timeline.stage(second)
                assert not _overlaps(a, b), \
                    f"ordered pair {first}/{second} overlapped"


class TestRacesAreExact:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_injected_conflicting_effects_are_always_flagged(self, data):
        """Mutating any concurrent pair into co-writers trips PLN001
        naming exactly that pair."""
        plan = draw_plan(data)
        pairs = concurrent_pairs(plan)
        assume(pairs)
        first, second = data.draw(st.sampled_from(pairs), label="pair")
        mutated = LoadPlan(plan.name, tuple(
            PlanStage(s.name, s.lane, deps=s.deps, writes=("rx",))
            if s.name in (first, second) else s for s in plan.stages))
        report = _lint(mutated)
        hits = [d for d in report.diagnostics if d.code == "PLN001"]
        assert any(f"{first!r}" in d.message and f"{second!r}" in d.message
                   and "'rx'" in d.message for d in hits), \
            report.format_text()

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_reported_races_anchor_to_concurrent_pairs(self, data):
        """Every PLN001/002/003 names a pair the scheduler can genuinely
        overlap (checked via the unit-duration witness)."""
        plan = draw_plan(data, with_effects=True, with_background=True)
        concurrent = {frozenset(pair) for pair in concurrent_pairs(plan)}
        names = {s.name for s in plan.stages}
        report = _lint(plan)
        for diag in report.diagnostics:
            if diag.code not in ("PLN001", "PLN002", "PLN003"):
                continue
            pair = frozenset(n for n in names if f"{n!r}" in diag.message
                             and n in diag.location)
            assert pair in concurrent, diag.render()
            first, second = sorted(pair)
            timeline = plan.schedule({first: 1.0, second: 1.0})
            assert _overlaps(timeline.stage(first),
                             timeline.stage(second)), diag.render()
