"""Property: capture/replay equals eager execution for random programs.

Random straight-line kernel programs over the small test catalog are run
eagerly, captured, and replayed; the replayed outputs must match the eager
outputs exactly, and the captured node multiset must equal the launch
sequence (DESIGN.md §6's capture invariant).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simgpu.process import CudaProcess, ExecutionMode

from tests.conftest import make_small_catalog
from tests.simgpu.helpers import params_for, rand_payload

#: (kernel name, number of data inputs) — programs pick inputs among the
#: currently available buffers and write a fresh output each step.
_KERNELS = [
    ("_Z9layernormPfS_S_i", 2),          # input, weight
    ("_Z12residual_addPfS_S_", 2),       # input, input_b
    ("_Z11copy_kernelPfS_", 1),          # input
    ("_ZN7cublas_sim4gemmEv", 2),        # input, weight (hidden + magic)
]

_program = st.lists(
    st.tuples(st.integers(0, len(_KERNELS) - 1),   # which kernel
              st.integers(0, 10**6),               # input pick seed
              st.integers(0, 10**6)),              # second pick seed
    min_size=1, max_size=12,
)


def _run_program(process, program, available):
    """Launch the program; returns the list of output buffers in order."""
    outputs = []
    for kernel_index, pick_a, pick_b in program:
        name, arity = _KERNELS[kernel_index]
        spec = process.catalog.kernel(name)
        source_a = available[pick_a % len(available)]
        source_b = available[pick_b % len(available)]
        out = process.malloc(256, tag="act")
        roles = {"input": source_a.address, "output": out.address}
        if arity == 2:
            role = ("weight" if any(p.role == "weight" for p in spec.params)
                    else "input_b")
            roles[role] = source_b.address
        process.launch(spec, params_for(spec, roles))
        available.append(out)
        outputs.append(out)
    return outputs


class TestCaptureReplayProperty:
    @settings(max_examples=40, deadline=None)
    @given(program=_program, seed=st.integers(0, 10**6))
    def test_replay_matches_eager(self, program, seed):
        process = CudaProcess(seed=seed, catalog=make_small_catalog(),
                              mode=ExecutionMode.COMPUTE)
        base = [process.malloc(256, tag="src", payload=rand_payload(i))
                for i in range(3)]

        # Eager pass (also the warm-up the capture needs).
        eager_outputs = _run_program(process, program, list(base))
        expected = [out.read().copy() for out in eager_outputs]

        # Captured pass over the same base buffers.
        process.default_stream.begin_capture()
        captured_outputs = _run_program(process, program, list(base))
        graph = process.default_stream.end_capture()

        assert graph.num_nodes == len(program)
        graph.instantiate(process).replay()
        for buffer, want in zip(captured_outputs, expected):
            np.testing.assert_array_equal(buffer.read(), want)

    @settings(max_examples=40, deadline=None)
    @given(program=_program, seed=st.integers(0, 10**6))
    def test_captured_kernels_equal_launch_sequence(self, program, seed):
        process = CudaProcess(seed=seed, catalog=make_small_catalog(),
                              mode=ExecutionMode.TIMING)
        base = [process.malloc(256, tag="src") for _ in range(3)]
        _run_program(process, program, list(base))          # warm-up
        process.default_stream.begin_capture()
        _run_program(process, program, list(base))
        graph = process.default_stream.end_capture()
        recorded = [process.driver.cu_func_get_name(node.kernel_address)
                    for node in graph.nodes]
        assert recorded == [_KERNELS[k][0] for k, _a, _b in program]
