"""Cross-GPU-type behaviour: artifacts are per <GPU type, model type> (§3)."""

import pytest

from repro.core.offline import run_offline
from repro.core.online import medusa_cold_start
from repro.core.store import ArtifactStore
from repro.engine import LLMEngine, Strategy
from repro.errors import RestorationError
from repro.simgpu.costmodel import A100_40GB, H100_80GB, CostModel


@pytest.fixture(scope="module")
def per_gpu_artifacts():
    artifacts = {}
    for gpu in (A100_40GB, H100_80GB):
        artifact, _report = run_offline(
            "Qwen1.5-4B", seed=88, cost_model=CostModel(gpu=gpu))
        artifacts[gpu.name] = artifact
    return artifacts


class TestPerGpuMaterialization:
    def test_kv_sizes_differ_across_gpus(self, per_gpu_artifacts):
        """The profiled free memory — the §6 materialized value — is a
        per-GPU quantity; an 80 GiB device leaves far more for KV."""
        a100 = per_gpu_artifacts[A100_40GB.name]
        h100 = per_gpu_artifacts[H100_80GB.name]
        assert h100.kv_bytes > 1.5 * a100.kv_bytes
        assert h100.kv_num_blocks >= a100.kv_num_blocks

    def test_graph_structure_is_gpu_independent(self, per_gpu_artifacts):
        a100 = per_gpu_artifacts[A100_40GB.name]
        h100 = per_gpu_artifacts[H100_80GB.name]
        assert a100.total_nodes == h100.total_nodes

    def test_store_keeps_both(self, per_gpu_artifacts, tmp_path):
        store = ArtifactStore(tmp_path)
        for artifact in per_gpu_artifacts.values():
            store.put(artifact)
        assert len(store.list()) == 2
        loaded = store.get(H100_80GB.name, "Qwen1.5-4B")
        assert loaded.gpu_name == H100_80GB.name

    def test_cross_gpu_restore_rejected(self, per_gpu_artifacts):
        a100_artifact = per_gpu_artifacts[A100_40GB.name]
        with pytest.raises(RestorationError):
            medusa_cold_start("Qwen1.5-4B", a100_artifact, seed=89,
                              cost_model=CostModel(gpu=H100_80GB))

    def test_matching_gpu_restores(self, per_gpu_artifacts):
        h100_artifact = per_gpu_artifacts[H100_80GB.name]
        _engine, report = medusa_cold_start(
            "Qwen1.5-4B", h100_artifact, seed=90,
            cost_model=CostModel(gpu=H100_80GB))
        assert report.loading_time > 0

    def test_h100_cold_start_is_faster(self):
        a100 = LLMEngine("Qwen1.5-4B", Strategy.VLLM, seed=91,
                         cost_model=CostModel(gpu=A100_40GB)).cold_start()
        h100 = LLMEngine("Qwen1.5-4B", Strategy.VLLM, seed=92,
                         cost_model=CostModel(gpu=H100_80GB)).cold_start()
        assert h100.loading_time < a100.loading_time
