"""Regression pins: quantities that must not drift silently.

These run the paper-scale offline phase once and pin its aggregate
statistics to bands.  A change to the allocator, capture flow, model
definition, or analysis that alters Medusa-relevant structure shows up
here even if all behavioural tests still pass.
"""

import pytest

from repro.core.offline import run_offline


@pytest.fixture(scope="module")
def qwen_artifact():
    artifact, report = run_offline("Qwen1.5-4B", seed=1234)
    return artifact, report


class TestOfflinePins:
    def test_node_total_is_table1(self, qwen_artifact):
        artifact, _ = qwen_artifact
        assert artifact.total_nodes == 16150

    def test_pointer_constant_split(self, qwen_artifact):
        artifact, _ = qwen_artifact
        stats = artifact.stats
        # ~3 pointers per node on average in this kernel taxonomy.
        assert 2.5 < stats["pointer_params"] / artifact.total_nodes < 4.0
        assert stats["const_params"] > 0

    def test_permanent_fraction_near_paper(self, qwen_artifact):
        artifact, _ = qwen_artifact
        assert 0.06 < artifact.stats["permanent_kernel_fraction"] < 0.12

    def test_interior_pointers_cover_kv_layers(self, qwen_artifact):
        artifact, _ = qwen_artifact
        # 39 interior KV pointers per graph (layer 0 hits the base address).
        expected = 39 * len(artifact.graphs)
        assert artifact.stats["interior_pointers"] == expected

    def test_no_false_positive_demotions_in_standard_models(self,
                                                            qwen_artifact):
        artifact, _ = qwen_artifact
        assert artifact.stats["demoted_false_positives"] == 0

    def test_replay_event_volume(self, qwen_artifact):
        artifact, _ = qwen_artifact
        # Two forwardings per batch size, each allocating/freeing ~a node's
        # worth of transients: tens of thousands of events, not millions.
        assert 20_000 < artifact.total_replay_events < 200_000

    def test_offline_times_in_paper_band(self, qwen_artifact):
        _, report = qwen_artifact
        assert 5.0 < report.capture_stage_time < 20.0    # paper: ~9.7 avg
        assert 20.0 < report.analysis_time < 45.0
        assert report.total_time < 60.0                  # paper: < 1 minute