"""End-to-end scenario regression harness.

Each named scenario in :mod:`tests.integration.scenarios` replays a
fully-pinned simulation (seeds, shapes, policies) and must reproduce the
committed ``golden_scenarios.json`` snapshot *bit-exactly*: JSON
round-trips floats exactly, so ``==`` holds only while event ordering,
policy decisions, and metric accounting are unchanged to the last ulp.

Unlike :mod:`tests.serverless.test_golden_equivalence` (which pins the
*legacy-compatible* keep-alive path), these scenarios deliberately
exercise the new surface: windowed autoscale policies, shaped arrivals,
SLO accounting, chunk warmth, the degradation ladder, and placement.
Refresh a snapshot only with ``scripts/refresh_goldens.py`` (it refuses
dirty working trees, so the golden diff always stands alone).
"""

import pytest

from tests.integration.scenarios import SCENARIOS, load_goldens, run_scenario


@pytest.fixture(scope="module")
def goldens():
    """The committed scenario snapshots."""
    return load_goldens()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_golden_bit_exactly(goldens, name):
    """Every section and every scalar must match the snapshot exactly."""
    assert name in goldens, (
        f"scenario {name!r} has no committed golden; run "
        f"scripts/refresh_goldens.py --scenario {name}")
    fresh = run_scenario(name)
    golden = goldens[name]
    assert sorted(fresh) == sorted(golden), name
    for section in sorted(golden):
        assert fresh[section] == golden[section], (name, section)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_is_deterministic(goldens, name):
    """Two in-process replays must agree with each other exactly."""
    assert run_scenario(name) == run_scenario(name)


def test_goldens_carry_no_stale_scenarios(goldens):
    """Every committed snapshot must correspond to a defined scenario."""
    assert sorted(goldens) == sorted(SCENARIOS)
