"""End-to-end integration: offline -> artifact file -> online -> serving."""

import numpy as np
import pytest

from repro.core.artifact import MaterializedModel
from repro.core.online import medusa_cold_start
from repro.core.validation import make_input_ids, validate_restoration
from repro.engine import LLMEngine, Strategy
from repro.models.zoo import get_model_config
from repro.simgpu.process import ExecutionMode

from tests.conftest import tiny_cost_model


class TestArtifactFileRoundTrip:
    def test_restore_from_saved_file(self, tiny2l_artifact, tmp_path):
        """The artifact survives disk persistence (the SSD path)."""
        artifact, _ = tiny2l_artifact
        path = tmp_path / "tiny2l.medusa.json"
        artifact.save(path)
        loaded = MaterializedModel.load(path)
        report = validate_restoration("Tiny-2L", loaded, batches=[1, 4],
                                      seed=404, cost_model=tiny_cost_model())
        assert report.passed


class TestFullServingFlow:
    def test_medusa_engine_serves_requests(self, tiny2l_artifact):
        artifact, _ = tiny2l_artifact
        engine, report = medusa_cold_start(
            "Tiny-2L", artifact, seed=505, mode=ExecutionMode.COMPUTE,
            cost_model=tiny_cost_model())
        result = engine.generate(prompt_tokens=12, output_tokens=6,
                                 batch_size=2)
        assert result["ttft"] > 0
        assert result["decode"] > 0

    def test_vanilla_and_medusa_serve_identically(self, tiny2l_artifact):
        """Same checkpoint, same inputs: both engines' graph-served decode
        steps produce identical outputs."""
        artifact, _ = tiny2l_artifact
        vanilla = LLMEngine("Tiny-2L", Strategy.VLLM, seed=606,
                            mode=ExecutionMode.COMPUTE,
                            cost_model=tiny_cost_model())
        vanilla.cold_start()
        medusa, _ = medusa_cold_start("Tiny-2L", artifact, seed=607,
                                      mode=ExecutionMode.COMPUTE,
                                      cost_model=tiny_cost_model())
        ids = make_input_ids(seed=9)
        outputs = []
        for engine in (vanilla, medusa):
            ctx = engine.serving_context()
            ctx.input_buffer.write(ids)
            engine.reset_kv_state()
            for _ in range(3):          # multi-step decode, stateful KV
                engine.decode_step(4)
            outputs.append(ctx.output_buffer.read().copy())
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_medusa_graphs_replay_many_times(self, tiny2l_artifact):
        """Restored graphs are reusable, not single-shot."""
        artifact, _ = tiny2l_artifact
        engine, _ = medusa_cold_start("Tiny-2L", artifact, seed=608,
                                      mode=ExecutionMode.COMPUTE,
                                      cost_model=tiny_cost_model())
        ctx = engine.serving_context()
        ctx.input_buffer.write(make_input_ids(seed=1))
        for _ in range(10):
            engine.decode_step(1)
        assert np.all(ctx.output_buffer.read().sum(axis=-1) == 1.0)


class TestTiming:
    def test_medusa_restores_kv_cheaper_than_profiling(self, tiny4l_artifact):
        artifact, _ = tiny4l_artifact
        vanilla = LLMEngine("Tiny-4L", Strategy.VLLM, seed=700,
                            cost_model=tiny_cost_model())
        vanilla_report = vanilla.cold_start()
        _, medusa_report = medusa_cold_start(
            "Tiny-4L", artifact, seed=701, cost_model=tiny_cost_model())
        assert medusa_report.stage_durations["kv_init"] < \
            vanilla_report.stage_durations["kv_init"]

    def test_medusa_skips_most_capture_work_at_paper_scale(self):
        """At real-model scale (where fixed restore costs amortize over
        16k nodes), Medusa's warm-up+restore undercuts vanilla capture —
        the paper's 0.90 s -> 0.57 s claim (§7.3)."""
        from repro.core.offline import run_offline
        vanilla = LLMEngine("Qwen1.5-4B", Strategy.VLLM, seed=720)
        vanilla_report = vanilla.cold_start()
        artifact, _ = run_offline("Qwen1.5-4B", seed=721)
        _, medusa_report = medusa_cold_start("Qwen1.5-4B", artifact, seed=722)
        medusa_capture_cost = (
            medusa_report.stage_durations["medusa_warmup"]
            + medusa_report.stage_durations["medusa_restore"]
            + medusa_report.stage_durations["kv_init"])
        vanilla_cost = (vanilla_report.stage_durations["capture"]
                        + vanilla_report.stage_durations["kv_init"])
        assert medusa_capture_cost < 0.55 * vanilla_cost

    def test_loading_ordering_across_strategies(self, tiny4l_artifact):
        artifact, _ = tiny4l_artifact
        cm = tiny_cost_model()
        vllm = LLMEngine("Tiny-4L", Strategy.VLLM, seed=710,
                         cost_model=cm).cold_start()
        vasync = LLMEngine("Tiny-4L", Strategy.VLLM_ASYNC, seed=711,
                           cost_model=cm).cold_start()
        nograph = LLMEngine("Tiny-4L", Strategy.NO_CUDA_GRAPH, seed=712,
                            cost_model=cm).cold_start()
        _, medusa = medusa_cold_start("Tiny-4L", artifact, seed=713,
                                      cost_model=cm)
        assert medusa.loading_time < vasync.loading_time < vllm.loading_time
        assert medusa.loading_time < nograph.loading_time


class TestCrossModel:
    @pytest.mark.parametrize("model", ["Tiny-2L", "Tiny-4L"])
    def test_both_tiny_models_validate(self, model, tiny2l_artifact,
                                       tiny4l_artifact):
        artifact, _ = tiny2l_artifact if model == "Tiny-2L" \
            else tiny4l_artifact
        config = get_model_config(model)
        report = validate_restoration(model, artifact,
                                      batches=[min(config.capture_batch_sizes),
                                               max(config.capture_batch_sizes)],
                                      seed=800, cost_model=tiny_cost_model())
        assert report.passed
