"""Coherence between the live engine and the analytic serving model.

The serverless simulator uses :class:`ServingCostModel` instead of live
engines; these tests pin the two against each other so the Figure 10/11
results are measurements of the same system the engine implements.
"""

import pytest

from repro.engine import LLMEngine, Strategy
from repro.serverless import ServingCostModel


@pytest.fixture(scope="module")
def live_engine():
    engine = LLMEngine("Llama2-7B", Strategy.VLLM, seed=37)
    engine.cold_start()
    return engine


@pytest.fixture(scope="module")
def analytic():
    return ServingCostModel("Llama2-7B")


class TestDecodeCoherence:
    @pytest.mark.parametrize("batch", [1, 4, 16, 64])
    def test_graph_decode_matches_at_zero_context(self, live_engine,
                                                  analytic, batch):
        """With no KV traffic, the analytic decode step must equal the
        engine's graph replay time exactly."""
        measured = live_engine.decode_step(batch, use_graphs=True)
        predicted = analytic.decode_step_time(
            batch, avg_context=0.0, use_graphs=True)
        assert measured == pytest.approx(predicted, rel=1e-9)

    def test_kv_context_only_adds_time(self, analytic):
        base = analytic.decode_step_time(8, 0.0, use_graphs=True)
        with_context = analytic.decode_step_time(8, 2000.0, use_graphs=True)
        assert with_context >= base

    @pytest.mark.parametrize("batch", [1, 8])
    def test_eager_decode_matches_engine(self, live_engine, analytic, batch):
        measured = live_engine.decode_step(batch, use_graphs=False)
        predicted = analytic.decode_step_time(
            batch, avg_context=0.0, use_graphs=False)
        assert measured == pytest.approx(predicted, rel=1e-9)

    def test_prefill_matches_engine(self, live_engine, analytic):
        measured = live_engine.prefill(161)
        predicted = analytic.prefill_time(161)
        assert measured == pytest.approx(predicted, rel=1e-9)


class TestHeadlineClaimRobustness:
    def test_medusa_beats_vllm_p99_across_seeds(self):
        """Figure 10's conclusion must not hinge on one arrival seed."""
        from repro.serverless import (
            ClusterSimulator,
            ShareGPTWorkload,
            SimulationConfig,
        )
        costs = ServingCostModel("Llama2-7B")
        for seed in (1, 2, 3):
            workload = ShareGPTWorkload(rps=10, duration=180, seed=seed)
            requests = workload.generate()
            p99 = {}
            for label, cold in (("vllm", 3.73), ("medusa", 2.21)):
                simulator = ClusterSimulator(costs, SimulationConfig(
                    num_gpus=4, cold_start_latency=cold))
                p99[label] = simulator.run(requests, horizon=180).p99_ttft
            assert p99["medusa"] < p99["vllm"], f"seed {seed}"