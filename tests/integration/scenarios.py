"""Named end-to-end simulator scenarios with committed golden summaries.

Each scenario is one deterministic, fully-configured simulation run
(fixed seeds, fixed shapes, fixed policies) that exercises a distinct
slice of the serverless stack: bursty single-model autoscaling,
multi-model pool contention, scale-from-zero spikes, chunk-level sibling
warmth, the degradation ladder, and locality-vs-flat placement.  A
scenario returns a dict of named sections, each a metrics ``summary()``
dict; ``tests/integration/golden_scenarios.json`` pins every scalar
bit-exactly (JSON round-trips floats exactly).

The definitions live here — importable by the regression test, the
mutation suite (``tests/serverless/test_autoscale_mutations.py``), and
``scripts/refresh_goldens.py`` — so all three agree on what "the
scenario" is.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict

from repro.engine.loadplan import ScheduledStage, Timeline
from repro.serverless import (
    ClusterSimulator,
    ColdStartProfile,
    ModelDeployment,
    MultiModelCluster,
    ServingCostModel,
    ShareGPTWorkload,
    SimulationConfig,
    tag_workloads,
)

#: Committed golden snapshots for every scenario below.
GOLDEN_PATH = Path(__file__).parent / "golden_scenarios.json"

Summary = Dict[str, float]
Sections = Dict[str, Summary]


class _Chunk:
    """Duck-typed chunk record (repro.core.chunks.ChunkMeta shape)."""

    def __init__(self, digest: str, nbytes: float,
                 foreground: bool = True) -> None:
        self.name = f"chunk-{digest}"
        self.digest = digest
        self.nbytes = nbytes
        self.foreground = foreground


#: Two sibling artifacts sharing 900 of 1000 foreground bytes.
_SIBLING_CHUNKS = (_Chunk("shared-1", 600.0), _Chunk("shared-2", 300.0),
                   _Chunk("own-1", 100.0),
                   _Chunk("tail-1", 400.0, foreground=False))


def _fetch_profile(fetch: float = 2.0,
                   degrade: bool = False) -> ColdStartProfile:
    """A stage-granular profile with a real ``fetch_artifact`` stage.

    ``degrade=True`` appends a degradation-ladder rung (the cold start
    lost its full graph restore and re-captured), tagging the profile so
    the simulator counts it as a degraded cold start.
    """
    stages = [
        ScheduledStage("fetch_artifact", 0.0, fetch, lane="disk"),
        ScheduledStage("replay_alloc", fetch, fetch + 0.2, lane="cpu"),
        ScheduledStage("restore_graph[1]", fetch + 0.2, fetch + 0.8,
                       lane="gpu_compute", critical=True),
    ]
    rung = ""
    total = fetch + 0.8
    if degrade:
        stages.append(ScheduledStage("degrade_recapture", total,
                                     total + 0.6, lane="gpu_compute",
                                     critical=True))
        total += 0.6
        rung = "recapture"
    return ColdStartProfile(loading_time=total, ready_time=total,
                            timeline=Timeline(None, stages),
                            degraded_rung=rung)


def single_model_burst() -> Sections:
    """Bursty traffic on one model under the cold-cost-aware policy.

    10 s bursts at 4x the nominal rate, 30 s quiet gaps: the cold-cost
    window (observed cold cost x 3) expires inside every gap, so the
    policy retires instances between bursts and pays a fresh cold start
    per wave — the GPU-seconds-vs-TTFT trade the autoscale benchmark
    gates.
    """
    workload = ShareGPTWorkload(rps=2.0, duration=160.0, seed=21,
                                shape="burst")
    simulator = ClusterSimulator(
        ServingCostModel("Llama2-7B"),
        SimulationConfig(num_gpus=3, cold_start_latency=2.5,
                         placement="flat", autoscale="cold-cost",
                         slo_ttft=0.8))
    metrics = simulator.run(workload.generate(), horizon=160.0)
    return {"metrics": metrics.summary()}


def multi_model_contention() -> Sections:
    """Two models contending for a shared pool under histogram windows.

    Model ``a`` sees bursts, ``b`` steady Poisson; the per-deployment
    histogram policies learn different idle windows from the observed
    gaps, and the shared pool forces idle-victim eviction when a
    zero-capacity model's wave lands.
    """
    deployments = [
        ModelDeployment(name="a", costs=ServingCostModel("Llama2-7B"),
                        cold_start_latency=3.0),
        ModelDeployment(name="b", costs=ServingCostModel("Qwen1.5-4B"),
                        cold_start_latency=1.5),
    ]
    cluster = MultiModelCluster(deployments, num_gpus=4,
                                placement="flat", autoscale="histogram",
                                slo_ttft=1.0)
    workloads = {
        "a": ShareGPTWorkload(rps=2.5, duration=90.0, seed=31,
                              shape="burst"),
        "b": ShareGPTWorkload(rps=2.5, duration=90.0, seed=32),
    }
    per_model = cluster.run(tag_workloads(workloads), horizon=90.0)
    sections = {model: metrics.summary()
                for model, metrics in sorted(per_model.items())}
    sections["__aggregate__"] = cluster.aggregate().summary()
    return sections


def scale_from_zero_spike() -> Sections:
    """Spike-train arrivals from zero capacity under the queue-SLO policy.

    1 s spikes at 8x the base rate every 30 s hit an empty pool; the
    queue-delay predictor breaches the 0.6 s TTFT budget and launches
    ahead of the backlog, then the enforced keep-alive drains the extra
    capacity between spikes.
    """
    workload = ShareGPTWorkload(rps=2.0, duration=150.0, seed=41,
                                shape="spike_train")
    simulator = ClusterSimulator(
        ServingCostModel("Qwen1.5-4B"),
        SimulationConfig(num_gpus=4, cold_start_latency=2.0,
                         placement="flat", autoscale="queue-slo",
                         slo_ttft=0.6, keep_alive=10.0))
    metrics = simulator.run(workload.generate(), horizon=150.0)
    return {"metrics": metrics.summary()}


def chunk_warm_sibling() -> Sections:
    """Zero keep-alive churn over a chunk-warm locality cache.

    ``keep_alive=0`` retires the instance after every drained queue (the
    only configuration where the legacy fixed-window comparison actually
    fires), so the run cold-starts repeatedly on the same node; the
    chunk-granular cache serves the repeated chunks from warm tiers and
    the summary pins the dedup accounting.
    """
    workload = ShareGPTWorkload(rps=0.8, duration=60.0, seed=51)
    simulator = ClusterSimulator(
        ServingCostModel("Qwen1.5-4B"),
        SimulationConfig(num_gpus=2, profile=_fetch_profile(2.0),
                         cold_start_latency=2.8, placement="locality",
                         chunks=_SIBLING_CHUNKS, keep_alive=0.0,
                         autoscale="keep-alive"))
    metrics = simulator.run(workload.generate(), horizon=60.0)
    return {"metrics": metrics.summary()}


def degraded_ladder() -> Sections:
    """Cold starts landing on a degradation-ladder rung, cost-aware.

    Every cold start executes a ``degrade_recapture`` stage (the full
    restore was lost), lengthening the observed cold cost; the
    cold-cost policy therefore holds instances warm longer than it would
    for a clean Medusa restore — the paper's economics inverted.
    """
    workload = ShareGPTWorkload(rps=1.2, duration=80.0, seed=61,
                                shape="ramp")
    simulator = ClusterSimulator(
        ServingCostModel("Llama2-7B"),
        SimulationConfig(num_gpus=2,
                         profile=_fetch_profile(1.5, degrade=True),
                         cold_start_latency=3.9, placement="flat",
                         autoscale="cold-cost", slo_ttft=1.0))
    metrics = simulator.run(workload.generate(), horizon=80.0)
    return {"metrics": metrics.summary()}


def locality_vs_flat() -> Sections:
    """The same churny run under locality and flat placement.

    Cold-cost retirement forces repeated cold starts; locality placement
    re-lands them on the node caching the artifact and rewrites the
    fetch stage to the warm tier's cost, while flat pays the remote
    fetch every time.  Both summaries are pinned so the placement win
    itself is regression-tested end to end.
    """
    sections: Sections = {}
    for placement in ("locality", "flat"):
        workload = ShareGPTWorkload(rps=1.0, duration=90.0, seed=71,
                                    shape="burst")
        simulator = ClusterSimulator(
            ServingCostModel("Qwen1.5-4B"),
            SimulationConfig(num_gpus=2, profile=_fetch_profile(2.5),
                             cold_start_latency=3.3,
                             placement=placement, autoscale="cold-cost"))
        metrics = simulator.run(workload.generate(), horizon=90.0)
        sections[placement] = metrics.summary()
    return sections


#: Every named scenario, in documentation order.
SCENARIOS: Dict[str, Callable[[], Sections]] = {
    "single_model_burst": single_model_burst,
    "multi_model_contention": multi_model_contention,
    "scale_from_zero_spike": scale_from_zero_spike,
    "chunk_warm_sibling": chunk_warm_sibling,
    "degraded_ladder": degraded_ladder,
    "locality_vs_flat": locality_vs_flat,
}


def run_scenario(name: str) -> Sections:
    """Execute one named scenario and return its summary sections."""
    return SCENARIOS[name]()


def load_goldens() -> Dict[str, Sections]:
    """The committed golden snapshots for every scenario."""
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)
