"""Paper-claim checks at paper scale (slower; run the real engine).

Each test pins one quantitative claim from the paper to a tolerance band,
so a regression in the substrate, engine, or cost model that changes the
*shape* of a result fails loudly.
"""

import pytest

from repro.engine import LLMEngine, Strategy
from repro.models.zoo import paper_model_names


@pytest.fixture(scope="module")
def vanilla_reports():
    """One vanilla cold start per paper model (shared across this module)."""
    reports = {}
    for index, name in enumerate(paper_model_names()):
        engine = LLMEngine(name, Strategy.VLLM, seed=900 + index)
        reports[name] = engine.cold_start()
    return reports


class TestFigure2Claims:
    def test_kv_and_capture_dominate_loading(self, vanilla_reports):
        """§2.1: the two dynamic stages account for ~47% of loading."""
        shares = []
        for report in vanilla_reports.values():
            dynamic = (report.stage_durations["kv_init"]
                       + report.stage_durations["capture"])
            shares.append(dynamic / report.loading_time)
        average = sum(shares) / len(shares)
        assert 0.40 < average < 0.55

    def test_majority_of_models_have_async_bubbles(self):
        """§7.3: '6 out of 10 models have such bubbles' — the weights stage
        cannot cover the tokenizer + KV-init branch."""
        bubbled = 0
        for index, name in enumerate(paper_model_names()):
            engine = LLMEngine(name, Strategy.VLLM_ASYNC, seed=950 + index)
            report = engine.cold_start()
            if report.timeline.bubble() > 1e-9:
                bubbled += 1
        assert bubbled >= 5

    def test_loading_dominates_cold_start(self, vanilla_reports):
        """Figure 1: the loading phase is ~76% of the cold start."""
        for report in vanilla_reports.values():
            share = report.loading_time / report.cold_start_time
            assert 0.55 < share < 0.90


class TestTable1Claims:
    def test_total_graph_nodes_across_models(self, vanilla_reports):
        """§1: 'a total number of CUDA graph nodes of 139364'."""
        # Table 1 node counts are validated per model elsewhere; this pins
        # the paper's headline sum.
        from repro.models.zoo import PAPER_MODELS
        assert sum(c.total_graph_nodes for c in PAPER_MODELS) == 139364


class TestFigure3Claims:
    def test_speedup_band_and_argmax(self):
        speedups = {}
        for index, name in enumerate(("Llama2-7B", "Llama2-13B",
                                      "Qwen1.5-4B", "Yi-6B")):
            engine = LLMEngine(name, Strategy.VLLM, seed=970 + index)
            engine.cold_start()
            prefill = engine.prefill(161)
            graph_step = engine.decode_step(1, use_graphs=True)
            eager_step = engine.decode_step(1, use_graphs=False)
            speedups[name] = ((prefill + 337 * eager_step)
                              / (prefill + 337 * graph_step))
        assert 2.0 < max(speedups.values()) < 2.6    # paper: up to 2.4x
        assert max(speedups, key=speedups.get) == "Qwen1.5-4B"
