"""Hot spares / deferred capture / checkpoint baseline tests (§2.4, §9)."""

import pytest

from repro.core.baselines import CheckpointRestoreBaseline
from repro.errors import InvalidValueError
from repro.serverless import (
    ClusterSimulator,
    ServingCostModel,
    ShareGPTWorkload,
    SimulationConfig,
)


@pytest.fixture
def costs():
    return ServingCostModel("Llama2-7B")


def simulate(costs, seed=9, rps=2.0, duration=90.0, **kwargs):
    workload = ShareGPTWorkload(rps=rps, duration=duration, seed=seed)
    simulator = ClusterSimulator(costs, SimulationConfig(
        num_gpus=4, cold_start_latency=3.5, **kwargs))
    return simulator.run(workload.generate(), horizon=duration)


class TestHotSpares:
    def test_hot_spares_cut_tail_latency(self, costs):
        base = simulate(costs)
        spared = simulate(costs, hot_spares=2)
        assert spared.p99_ttft < base.p99_ttft

    def test_hot_spares_waste_gpu_time_at_low_rates(self, costs):
        """§2.4: 'resource wastage during periods of low request rates'."""
        base = simulate(costs, rps=1.0)
        spared = simulate(costs, rps=1.0, hot_spares=3)
        assert spared.wasted_gpu_seconds > 2 * base.wasted_gpu_seconds
        assert spared.gpu_utilization < base.gpu_utilization

    def test_hot_spares_never_retire(self, costs):
        workload = ShareGPTWorkload(rps=0.2, duration=120, seed=3)
        simulator = ClusterSimulator(costs, SimulationConfig(
            num_gpus=2, cold_start_latency=1.0, hot_spares=2,
            keep_alive=5.0))
        simulator.run(workload.generate(), horizon=120)
        spares = [i for i in simulator.instances
                  if getattr(i, "hot_spare", False)]
        assert len(spares) == 2
        assert not any(i.retired for i in spares)

    def test_spares_plus_initial_bounded_by_gpus(self):
        with pytest.raises(InvalidValueError):
            SimulationConfig(num_gpus=2, initial_instances=1, hot_spares=2)


class TestDeferredCaptureInSim:
    def test_deferred_disperses_latency_into_serving(self, costs):
        """§2.4: same arrival trace, deferred pays capture while serving."""
        normal = simulate(costs, rps=4.0, duration=120)
        deferred = simulate(costs, rps=4.0, duration=120,
                            deferred_capture=True)
        assert deferred.mean_ttft > normal.mean_ttft

    def test_capture_penalty_positive_and_one_off(self, costs):
        penalty = costs.deferred_capture_penalty(8)
        assert penalty > costs.decode_step_time(8, 200, use_graphs=True)


class TestCheckpointBaseline:
    def test_checkpoint_dwarfs_medusa_artifact(self, tiny2l_artifact):
        artifact, _ = tiny2l_artifact
        baseline = CheckpointRestoreBaseline("Tiny-2L")
        comparison = baseline.compare_with_artifact(artifact)
        assert comparison["size_ratio"] > 100
        assert comparison["checkpoint_restore_time"] > 0

    def test_checkpoint_scales_with_model(self):
        small = CheckpointRestoreBaseline("Qwen1.5-0.5B")
        large = CheckpointRestoreBaseline("Qwen1.5-14B")
        kv = 4 * 1024**3
        assert large.checkpoint_bytes(kv) > small.checkpoint_bytes(kv)
        assert large.restore_time(kv) > small.restore_time(kv)
