"""Golden-metric equivalence of the kernel-based simulators.

``golden_sim_metrics.json`` was recorded from the pre-refactor simulators
(the ones with private heapq loops) at fixed seeds.  Re-running the same
scenarios on the :mod:`repro.sim` kernel must reproduce every scalar
*bit-exactly* — not approximately: JSON round-trips floats exactly, so
``==`` holds only if the refactor preserved event order, tie-breaking,
and accounting to the last ulp.  Scalar-mode cold starts (no
``ColdStartProfile``) are the compatibility surface; the stage-granular
path is new behaviour and covered elsewhere.
"""

import json
from pathlib import Path

import pytest

from repro.serverless import (
    ClusterSimulator,
    ModelDeployment,
    MultiModelCluster,
    ServingCostModel,
    ShareGPTWorkload,
    SimulationConfig,
    tag_workloads,
)

GOLDEN_PATH = Path(__file__).parent / "golden_sim_metrics.json"

#: Same-seed scenarios the goldens were recorded from (pre-refactor).
SINGLE_SCENARIOS = {
    "baseline": dict(rps=2.0, duration=60.0, seed=1, model="Llama2-7B",
                     config=dict(cold_start_latency=3.0)),
    "hot_burst": dict(rps=6.0, duration=120.0, seed=5, model="Llama2-7B",
                      config=dict(cold_start_latency=4.0, num_gpus=2)),
    "warm_floor": dict(rps=1.0, duration=30.0, seed=3, model="Qwen1.5-4B",
                       config=dict(cold_start_latency=5.0,
                                   initial_instances=1, hot_spares=1)),
    "no_drain": dict(rps=3.0, duration=45.0, seed=9, model="Qwen1.5-4B",
                     config=dict(cold_start_latency=2.0, drain=False)),
    "eager_serving": dict(rps=4.0, duration=90.0, seed=7,
                          model="Llama2-7B",
                          config=dict(cold_start_latency=1.5,
                                      use_cuda_graphs=False)),
    "deferred_capture": dict(rps=4.0, duration=90.0, seed=7,
                             model="Llama2-7B",
                             config=dict(cold_start_latency=1.5,
                                         deferred_capture=True)),
}

MULTI_SCENARIOS = {"light": 1.0, "heavy": 4.0}


@pytest.fixture(scope="module")
def golden():
    """The recorded pre-refactor metric snapshots."""
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def assert_matches(snap, metrics, context):
    """Every golden scalar must equal the fresh run's, bit for bit.

    The comparison iterates the *golden's* keys: the refactor may add new
    summary counters (stage breakdowns, p90) but must not change any
    recorded one.
    """
    summary = metrics.summary()
    for key, value in snap["summary"].items():
        assert summary[key] == value, (context, key)
    assert metrics.provisioned_gpu_seconds == snap[
        "provisioned_gpu_seconds"], context
    assert metrics.busy_gpu_seconds == snap["busy_gpu_seconds"], context
    assert sum(metrics.ttfts) == snap["ttft_sum"], context
    assert sum(metrics.latencies) == snap["latency_sum"], context


class TestSingleModelGoldens:
    @pytest.mark.parametrize("name", sorted(SINGLE_SCENARIOS))
    def test_scenario_matches_pre_refactor_metrics(self, golden, name):
        scenario = SINGLE_SCENARIOS[name]
        workload = ShareGPTWorkload(rps=scenario["rps"],
                                    duration=scenario["duration"],
                                    seed=scenario["seed"])
        simulator = ClusterSimulator(ServingCostModel(scenario["model"]),
                                     SimulationConfig(**scenario["config"]))
        metrics = simulator.run(workload.generate(),
                                horizon=scenario["duration"])
        assert_matches(golden["single"][name], metrics, name)


def _deployments():
    return [
        ModelDeployment(name="a", costs=ServingCostModel("Llama2-7B"),
                        cold_start_latency=3.0),
        ModelDeployment(name="b", costs=ServingCostModel("Qwen1.5-4B"),
                        cold_start_latency=1.5, hot_spares=1),
    ]


def _multi_workloads(rps):
    return {"a": ShareGPTWorkload(rps=rps, duration=60.0, seed=11),
            "b": ShareGPTWorkload(rps=rps, duration=60.0, seed=12)}


class TestMultiModelGoldens:
    @pytest.mark.parametrize("name", sorted(MULTI_SCENARIOS))
    def test_scenario_matches_pre_refactor_metrics(self, golden, name):
        cluster = MultiModelCluster(_deployments(), num_gpus=4)
        per_model = cluster.run(
            tag_workloads(_multi_workloads(MULTI_SCENARIOS[name])),
            horizon=60.0)
        for model in ("a", "b"):
            assert_matches(golden["multi"][name][model], per_model[model],
                           f"{name}/{model}")
        assert_matches(golden["multi"][name]["__aggregate__"],
                       cluster.aggregate(), f"{name}/aggregate")


class TestFlatPlacementGoldens:
    """``placement="flat"`` is the pre-placement simulator, bit for bit.

    The placement layer added node identity, per-node caches, and
    fetch-stage rewriting; the flat policy must disable all of it.  Every
    golden snapshot — recorded long before the layer existed — has to
    reproduce exactly under ``placement="flat"``, and the run must record
    zero placement traffic.
    """

    @pytest.mark.parametrize("name", sorted(SINGLE_SCENARIOS))
    def test_single_model_flat_matches_goldens(self, golden, name):
        scenario = SINGLE_SCENARIOS[name]
        workload = ShareGPTWorkload(rps=scenario["rps"],
                                    duration=scenario["duration"],
                                    seed=scenario["seed"])
        simulator = ClusterSimulator(
            ServingCostModel(scenario["model"]),
            SimulationConfig(placement="flat", **scenario["config"]))
        metrics = simulator.run(workload.generate(),
                                horizon=scenario["duration"])
        assert_matches(golden["single"][name], metrics, name)
        assert_no_placement_traffic(metrics, name)

    @pytest.mark.parametrize("name", sorted(MULTI_SCENARIOS))
    def test_multi_model_flat_matches_goldens(self, golden, name):
        cluster = MultiModelCluster(_deployments(), num_gpus=4,
                                    placement="flat")
        per_model = cluster.run(
            tag_workloads(_multi_workloads(MULTI_SCENARIOS[name])),
            horizon=60.0)
        for model in ("a", "b"):
            assert_matches(golden["multi"][name][model], per_model[model],
                           f"{name}/{model}")
        aggregate = cluster.aggregate()
        assert_matches(golden["multi"][name]["__aggregate__"],
                       aggregate, f"{name}/aggregate")
        assert_no_placement_traffic(aggregate, name)


def assert_no_placement_traffic(metrics, context):
    """Flat runs must leave every placement counter untouched."""
    assert metrics.tier_hits == {}, context
    assert metrics.tier_misses == 0, context
    assert metrics.tier_evictions == {}, context
    assert metrics.tier_promotions == {}, context
    assert metrics.fetch_seconds_saved == 0.0, context
